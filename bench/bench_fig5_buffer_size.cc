// Figure 5: effect of the memory buffer size (5%..25%) on the elapsed
// time of the five disk-based methods, single-threaded. Paper shape:
// slow group (GraphChi-Tri, CC-Seq, CC-DS) degrades sharply at small
// buffers because it rewrites remaining edges every iteration; fast
// group (MGT, OPT_serial) stays flat, with OPT_serial always fastest.
#include "bench_common.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Figure 5",
                "Elapsed time (s) vs memory buffer size, single thread "
                "(TWITTER and UK stand-ins)");

  auto specs = PaperDatasets(ctx.scale_shift);
  const Method methods[] = {Method::kGraphChiTriSerial, Method::kCcSeq,
                            Method::kCcDs, Method::kMgt,
                            Method::kOptSerial};
  for (size_t d : {2u, 3u}) {  // TWITTER, UK
    auto store = MaterializeDataset(specs[d], ctx.get_env(), ctx.work_dir,
                                    bench::kPageSize);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s (%u pages)\n", specs[d].name.c_str(),
                (*store)->num_pages());
    TablePrinter table({"buffer %", "GraphChi-Tri", "CC-Seq", "CC-DS",
                        "MGT", "OPT_serial"});
    uint64_t expected = 0;
    for (double percent : {5.0, 10.0, 15.0, 20.0, 25.0}) {
      std::vector<std::string> row{TablePrinter::Fmt(percent, 0)};
      for (Method method : methods) {
        MethodConfig config;
        config.memory_pages = PagesForBufferPercent(**store, percent);
        config.num_threads = 1;
        config.temp_dir = ctx.work_dir;
        auto result = RunMethod(method, store->get(), ctx.get_env(), config);
        if (!result.ok()) {
          std::fprintf(stderr, "%s: %s\n", MethodName(method),
                       result.status().ToString().c_str());
          return 1;
        }
        if (expected == 0) expected = result->triangles;
        if (result->triangles != expected) {
          std::fprintf(stderr, "COUNT MISMATCH for %s\n",
                       MethodName(method));
          return 1;
        }
        row.push_back(bench::Secs(result->seconds));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf("Expected shape (paper Fig. 5): slow group (GraphChi/CC-*) "
              "2-10x slower and buffer-sensitive; fast group (MGT, "
              "OPT_serial) flat; OPT_serial lowest everywhere.\n");
  return 0;
}
