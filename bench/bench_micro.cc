// Micro-benchmarks (google-benchmark): intersection kernels (one
// benchmark per kernel variant, with elements/sec and bytes/sec from
// the per-kernel dispatch counters), page codec, CRC, buffer pool,
// async engine — the substrate costs behind the macro experiments.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "gen/erdos_renyi.h"
#include "graph/intersect.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/crc32.h"
#include "util/random.h"

namespace opt {
namespace {

std::vector<VertexId> MakeSorted(size_t n, uint64_t seed) {
  Random64 rng(seed);
  std::vector<VertexId> out;
  out.reserve(n);
  VertexId v = 0;
  for (size_t i = 0; i < n; ++i) {
    v += 1 + static_cast<VertexId>(rng.Uniform(8));
    out.push_back(v);
  }
  return out;
}

/// Sets elements/sec and bytes/sec on `state` from the per-kernel
/// dispatch counters (not wall-clock math), so `--benchmark_format=json`
/// output (BENCH_*.json) carries directly comparable kernel throughput.
void ReportFromCounters(benchmark::State& state,
                        const IntersectCounters& before) {
  const IntersectCounters delta =
      IntersectCounters::Delta(SnapshotIntersectCounters(), before);
  state.SetItemsProcessed(static_cast<int64_t>(delta.TotalElements()));
  state.SetBytesProcessed(
      static_cast<int64_t>(delta.TotalElements() * sizeof(VertexId)));
  state.counters["intersect_calls"] = benchmark::Counter(
      static_cast<double>(delta.TotalCalls()), benchmark::Counter::kIsRate);
}

void BM_IntersectMergeKernel(benchmark::State& state, IntersectKernel kernel,
                             size_t len_a, size_t len_b) {
  auto a = MakeSorted(len_a, 1);
  auto b = MakeSorted(len_b, 2);
  const IntersectCounters before = SnapshotIntersectCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCountMergeWith(kernel, a, b));
  }
  ReportFromCounters(state, before);
}

void BM_IntersectGallopingKernel(benchmark::State& state,
                                 IntersectKernel kernel, size_t len_a,
                                 size_t len_b) {
  auto a = MakeSorted(len_a, 1);
  auto b = MakeSorted(len_b, 2);
  const IntersectCounters before = SnapshotIntersectCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCountGallopingWith(kernel, a, b));
  }
  ReportFromCounters(state, before);
}

void BM_IntersectHash(benchmark::State& state) {
  auto a = MakeSorted(static_cast<size_t>(state.range(0)), 1);
  auto b = MakeSorted(static_cast<size_t>(state.range(1)), 2);
  const IntersectCounters before = SnapshotIntersectCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCountHash(a, b));
  }
  ReportFromCounters(state, before);
}
BENCHMARK(BM_IntersectHash)->Args({64, 64})->Args({64, 4096})
    ->Args({1024, 1024});

void BM_IntersectAdaptive(benchmark::State& state) {
  auto a = MakeSorted(static_cast<size_t>(state.range(0)), 1);
  auto b = MakeSorted(static_cast<size_t>(state.range(1)), 2);
  const IntersectCounters before = SnapshotIntersectCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCount(a, b));
  }
  ReportFromCounters(state, before);
}
BENCHMARK(BM_IntersectAdaptive)->Args({64, 64})->Args({64, 4096})
    ->Args({1024, 1024});

/// Registers merge/galloping benchmarks for every kernel the host CPU
/// supports — unsupported kernels are omitted rather than silently
/// falling back, so each reported row really measured its kernel.
void RegisterIntersectKernelBenchmarks() {
  static const std::pair<size_t, size_t> kSizes[] = {
      {64, 64}, {64, 4096}, {1024, 1024}};
  for (IntersectKernel kernel :
       {IntersectKernel::kScalar, IntersectKernel::kSse,
        IntersectKernel::kAvx2}) {
    if (!IntersectKernelSupported(kernel)) continue;
    for (const auto& [len_a, len_b] : kSizes) {
      const std::string suffix = std::string("<") +
                                 IntersectKernelName(kernel) + ">/" +
                                 std::to_string(len_a) + "x" +
                                 std::to_string(len_b);
      benchmark::RegisterBenchmark(
          ("BM_IntersectMerge" + suffix).c_str(),
          [kernel, la = len_a, lb = len_b](benchmark::State& state) {
            BM_IntersectMergeKernel(state, kernel, la, lb);
          });
      benchmark::RegisterBenchmark(
          ("BM_IntersectGalloping" + suffix).c_str(),
          [kernel, la = len_a, lb = len_b](benchmark::State& state) {
            BM_IntersectGallopingKernel(state, kernel, la, lb);
          });
    }
  }
}

void BM_Crc32c(benchmark::State& state) {
  std::vector<char> data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void BM_PageBuild(benchmark::State& state) {
  std::vector<char> buffer(4096);
  std::vector<VertexId> neighbors(64);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    neighbors[i] = static_cast<VertexId>(i * 3);
  }
  for (auto _ : state) {
    PageBuilder builder(buffer.data(), 4096, 1);
    while (builder.FreeNeighborCapacity() >= neighbors.size()) {
      builder.AddSegment(7, 64, 0, neighbors);
    }
    builder.Finish();
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_PageBuild);

void BM_PageParse(benchmark::State& state) {
  std::vector<char> buffer(4096);
  std::vector<VertexId> neighbors(64);
  PageBuilder builder(buffer.data(), 4096, 1);
  while (builder.FreeNeighborCapacity() >= neighbors.size()) {
    builder.AddSegment(7, 64, 0, neighbors);
  }
  builder.Finish();
  for (auto _ : state) {
    PageView view(buffer.data(), 4096);
    uint64_t total = 0;
    for (uint32_t s = 0; s < view.num_slots(); ++s) {
      total += view.GetSegment(s).neighbors.size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PageParse);

void BM_BufferPoolLookup(benchmark::State& state) {
  BufferPool pool(4096, 256);
  for (uint32_t pid = 0; pid < 128; ++pid) {
    auto frame = pool.AllocateForRead(pid);
    pool.MarkValid(*frame);
    pool.Unpin(*frame);
  }
  uint32_t pid = 0;
  for (auto _ : state) {
    Frame* f = pool.LookupAndPin(pid % 128);
    pool.Unpin(f);
    ++pid;
  }
}
BENCHMARK(BM_BufferPoolLookup);

void BM_DegreeOrderedEdgeIteratorWork(benchmark::State& state) {
  CSRGraph g = GenerateErdosRenyi(1u << 12, 1u << 16, 3);
  for (auto _ : state) {
    uint64_t triangles = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto succ_u = g.Successors(u);
      for (VertexId v : succ_u) {
        triangles += IntersectCount(succ_u, g.Successors(v));
      }
    }
    benchmark::DoNotOptimize(triangles);
  }
}
BENCHMARK(BM_DegreeOrderedEdgeIteratorWork);

}  // namespace
}  // namespace opt

int main(int argc, char** argv) {
  opt::RegisterIntersectKernelBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
