// Micro-benchmarks (google-benchmark): intersection kernels (one
// benchmark per kernel variant, with elements/sec and bytes/sec from
// the per-kernel dispatch counters), the hub-split sweep for the bitmap
// hybrid (BM_HybridTriangles — run with --benchmark_filter=BM_Hybrid
// --benchmark_format=json for the CI artifact), page codec, CRC, buffer
// pool, async engine — the substrate costs behind the macro experiments.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "graph/hub_bitmap.h"
#include "graph/intersect.h"
#include "obs/perf_counters.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/crc32.h"
#include "util/random.h"

namespace opt {
namespace {

std::vector<VertexId> MakeSorted(size_t n, uint64_t seed) {
  Random64 rng(seed);
  std::vector<VertexId> out;
  out.reserve(n);
  VertexId v = 0;
  for (size_t i = 0; i < n; ++i) {
    v += 1 + static_cast<VertexId>(rng.Uniform(8));
    out.push_back(v);
  }
  return out;
}

/// Sets elements/sec and bytes/sec on `state` from the per-kernel
/// dispatch counters (not wall-clock math), so `--benchmark_format=json`
/// output (BENCH_*.json) carries directly comparable kernel throughput.
/// The PMU delta adds the per-element hardware view (cycles, LLC misses)
/// that distinguishes a memory-bound merge from a cache-resident bitmap
/// probe — columns appear only when the backend delivers the event, so
/// a missing llc_miss_per_elem means "no PMU", not "no misses".
void ReportFromCounters(benchmark::State& state,
                        const IntersectCounters& before,
                        const PerfReading& perf_before) {
  const IntersectCounters delta =
      IntersectCounters::Delta(SnapshotIntersectCounters(), before);
  const PerfReading perf =
      PerfReading::Delta(ReadThreadPerfCounters(), perf_before);
  state.SetItemsProcessed(static_cast<int64_t>(delta.TotalElements()));
  state.SetBytesProcessed(
      static_cast<int64_t>(delta.TotalElements() * sizeof(VertexId)));
  state.counters["intersect_calls"] = benchmark::Counter(
      static_cast<double>(delta.TotalCalls()), benchmark::Counter::kIsRate);
  const double elems = static_cast<double>(delta.TotalElements());
  if (perf.task_clock_ns > 0) {
    state.counters["task_clock_ms"] =
        benchmark::Counter(static_cast<double>(perf.task_clock_ns) * 1e-6);
  }
  if (perf.cycles > 0 && elems > 0) {
    state.counters["cycles_per_elem"] =
        benchmark::Counter(static_cast<double>(perf.cycles) / elems);
    state.counters["ipc"] = benchmark::Counter(perf.Ipc());
  }
  if (perf.llc_loads > 0 && elems > 0) {
    state.counters["llc_miss_per_elem"] =
        benchmark::Counter(static_cast<double>(perf.llc_misses) / elems);
    state.counters["llc_miss_rate"] = benchmark::Counter(perf.LlcMissRate());
  }
  if (perf.time_enabled_ns > 0) {
    state.counters["perf_mux"] = benchmark::Counter(perf.MultiplexRatio());
  }
}

void BM_IntersectMergeKernel(benchmark::State& state, IntersectKernel kernel,
                             size_t len_a, size_t len_b) {
  auto a = MakeSorted(len_a, 1);
  auto b = MakeSorted(len_b, 2);
  const IntersectCounters before = SnapshotIntersectCounters();
  const PerfReading perf_before = ReadThreadPerfCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCountMergeWith(kernel, a, b));
  }
  ReportFromCounters(state, before, perf_before);
}

void BM_IntersectGallopingKernel(benchmark::State& state,
                                 IntersectKernel kernel, size_t len_a,
                                 size_t len_b) {
  auto a = MakeSorted(len_a, 1);
  auto b = MakeSorted(len_b, 2);
  const IntersectCounters before = SnapshotIntersectCounters();
  const PerfReading perf_before = ReadThreadPerfCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCountGallopingWith(kernel, a, b));
  }
  ReportFromCounters(state, before, perf_before);
}

void BM_IntersectHash(benchmark::State& state) {
  auto a = MakeSorted(static_cast<size_t>(state.range(0)), 1);
  auto b = MakeSorted(static_cast<size_t>(state.range(1)), 2);
  const IntersectCounters before = SnapshotIntersectCounters();
  const PerfReading perf_before = ReadThreadPerfCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCountHash(a, b));
  }
  ReportFromCounters(state, before, perf_before);
}
BENCHMARK(BM_IntersectHash)->Args({64, 64})->Args({64, 4096})
    ->Args({1024, 1024});

void BM_IntersectAdaptive(benchmark::State& state) {
  auto a = MakeSorted(static_cast<size_t>(state.range(0)), 1);
  auto b = MakeSorted(static_cast<size_t>(state.range(1)), 2);
  const IntersectCounters before = SnapshotIntersectCounters();
  const PerfReading perf_before = ReadThreadPerfCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCount(a, b));
  }
  ReportFromCounters(state, before, perf_before);
}
BENCHMARK(BM_IntersectAdaptive)->Args({64, 64})->Args({64, 4096})
    ->Args({1024, 1024});

void BM_IntersectBitmapSparseKernel(benchmark::State& state,
                                    IntersectKernel kernel, size_t sparse_len,
                                    size_t dense_len);
void BM_IntersectBitmapDenseKernel(benchmark::State& state,
                                   IntersectKernel kernel, size_t len_a,
                                   size_t len_b);

/// Registers merge/galloping benchmarks for every kernel the host CPU
/// supports — unsupported kernels are omitted rather than silently
/// falling back, so each reported row really measured its kernel.
void RegisterIntersectKernelBenchmarks() {
  static const std::pair<size_t, size_t> kSizes[] = {
      {64, 64}, {64, 4096}, {1024, 1024}};
  for (IntersectKernel kernel :
       {IntersectKernel::kScalar, IntersectKernel::kSse,
        IntersectKernel::kAvx2}) {
    if (!IntersectKernelSupported(kernel)) continue;
    for (const auto& [len_a, len_b] : kSizes) {
      const std::string suffix = std::string("<") +
                                 IntersectKernelName(kernel) + ">/" +
                                 std::to_string(len_a) + "x" +
                                 std::to_string(len_b);
      benchmark::RegisterBenchmark(
          ("BM_IntersectMerge" + suffix).c_str(),
          [kernel, la = len_a, lb = len_b](benchmark::State& state) {
            BM_IntersectMergeKernel(state, kernel, la, lb);
          });
      benchmark::RegisterBenchmark(
          ("BM_IntersectGalloping" + suffix).c_str(),
          [kernel, la = len_a, lb = len_b](benchmark::State& state) {
            BM_IntersectGallopingKernel(state, kernel, la, lb);
          });
    }
  }
  // Bitmap kernels: sparse probe at skewed ratios, dense × dense at
  // hub-like sizes.
  for (IntersectKernel kernel :
       {IntersectKernel::kBitmapScalar, IntersectKernel::kBitmap}) {
    if (!IntersectKernelSupported(kernel)) continue;
    const std::string name = IntersectKernelName(kernel);
    for (const auto& [len_a, len_b] : kSizes) {
      benchmark::RegisterBenchmark(
          ("BM_IntersectBitmapSparse<" + name + ">/" +
           std::to_string(len_a) + "x" + std::to_string(len_b))
              .c_str(),
          [kernel, la = len_a, lb = len_b](benchmark::State& state) {
            BM_IntersectBitmapSparseKernel(state, kernel, la, lb);
          });
    }
    for (size_t len : {size_t{1024}, size_t{16384}}) {
      benchmark::RegisterBenchmark(
          ("BM_IntersectBitmapDense<" + name + ">/" + std::to_string(len) +
           "x" + std::to_string(len))
              .c_str(),
          [kernel, len](benchmark::State& state) {
            BM_IntersectBitmapDenseKernel(state, kernel, len, len);
          });
    }
  }
}

void BM_IntersectBitmapSparseKernel(benchmark::State& state,
                                    IntersectKernel kernel, size_t sparse_len,
                                    size_t dense_len) {
  auto sparse = MakeSorted(sparse_len, 1);
  auto dense_ids = MakeSorted(dense_len, 2);
  DenseBitmap dense(std::max(sparse.back(), dense_ids.back()) + 1);
  dense.SetFrom(dense_ids);
  const IntersectCounters before = SnapshotIntersectCounters();
  const PerfReading perf_before = ReadThreadPerfCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IntersectCountBitmapSparseWith(kernel, sparse, dense));
  }
  ReportFromCounters(state, before, perf_before);
}

void BM_IntersectBitmapDenseKernel(benchmark::State& state,
                                   IntersectKernel kernel, size_t len_a,
                                   size_t len_b) {
  auto ids_a = MakeSorted(len_a, 1);
  auto ids_b = MakeSorted(len_b, 2);
  const VertexId universe = std::max(ids_a.back(), ids_b.back()) + 1;
  DenseBitmap a(universe), b(universe);
  a.SetFrom(ids_a);
  b.SetFrom(ids_b);
  const IntersectCounters before = SnapshotIntersectCounters();
  const PerfReading perf_before = ReadThreadPerfCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IntersectCountBitmapDenseWith(kernel, a, b, 0, universe - 1));
  }
  ReportFromCounters(state, before, perf_before);
}

/// Hub-split sweep on skewed synthetic graphs: a full edge-iterator
/// triangle count through the *routed* entry points, one benchmark per
/// (graph, kernel, split). The equal-count check against the scalar
/// merge oracle runs every iteration — a mismatch fails the row.
uint64_t CountAllRouted(const CSRGraph& g) {
  uint64_t triangles = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto succ_u = g.Successors(u);
    for (VertexId v : succ_u) {
      triangles += IntersectCount(u, v, succ_u, g.Successors(v));
    }
  }
  return triangles;
}

void BM_HybridTriangles(benchmark::State& state, const CSRGraph* g,
                        IntersectKernel kernel, const std::string& split_text,
                        uint64_t expected) {
  if (Status s = SetIntersectKernel(kernel); !s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  HubBitmapIndex index;
  if (IsBitmapKernel(kernel)) {
    auto split = HubSplitSpec::Parse(split_text);
    if (!split.ok()) {
      state.SkipWithError(split.status().ToString().c_str());
      return;
    }
    index = HubBitmapIndex::Build(*g, *split);
  }
  HubRoutingScope scope(index.num_hubs() > 0 ? &index : nullptr);
  const IntersectCounters before = SnapshotIntersectCounters();
  const PerfReading perf_before = ReadThreadPerfCounters();
  for (auto _ : state) {
    const uint64_t triangles = CountAllRouted(*g);
    if (triangles != expected) {
      state.SkipWithError("triangle count mismatch vs merge oracle");
      break;
    }
    benchmark::DoNotOptimize(triangles);
  }
  ReportFromCounters(state, before, perf_before);
  state.counters["hubs"] =
      benchmark::Counter(static_cast<double>(index.num_hubs()));
  state.counters["hub_threshold"] = benchmark::Counter(
      index.num_hubs() > 0 ? static_cast<double>(index.degree_threshold())
                           : 0.0);
  state.counters["bitmap_bytes"] =
      benchmark::Counter(static_cast<double>(index.memory_bytes()));
  (void)SetIntersectKernel(IntersectKernel::kAuto);
}

void RegisterHybridHubSweepBenchmarks() {
  struct SweepGraph {
    std::string name;
    CSRGraph graph;
    uint64_t expected = 0;
  };
  // Leaked: registered lambdas reference these for the process lifetime.
  auto* graphs = new std::vector<SweepGraph>();
  {
    RmatOptions rmat;
    rmat.scale = 12;
    rmat.edge_factor = 16;
    rmat.seed = 7;
    graphs->push_back({"rmat12", GenerateRmat(rmat), 0});
    HolmeKimOptions hk;
    hk.num_vertices = 1u << 12;
    hk.edges_per_vertex = 8;
    hk.seed = 7;
    graphs->push_back({"holme_kim12", GenerateHolmeKim(hk), 0});
  }
  for (auto& sweep : *graphs) {
    const CSRGraph& g = sweep.graph;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto succ_u = g.Successors(u);
      for (VertexId v : succ_u) {
        sweep.expected +=
            IntersectCountMergeWith(IntersectKernel::kScalar, succ_u,
                                    g.Successors(v));
      }
    }
  }
  for (const auto& sweep : *graphs) {
    const CSRGraph* g = &sweep.graph;
    const uint64_t expected = sweep.expected;
    // Merge baseline the hybrid rows are compared against.
    benchmark::RegisterBenchmark(
        ("BM_HybridTriangles<" + sweep.name + ">/merge").c_str(),
        [g, expected](benchmark::State& state) {
          BM_HybridTriangles(state, g, IntersectKernel::kAuto, "off",
                             expected);
        });
    for (IntersectKernel kernel :
         {IntersectKernel::kBitmapScalar, IntersectKernel::kBitmap}) {
      if (!IntersectKernelSupported(kernel)) continue;
      for (const char* split : {"off", "p90", "p99", "auto", "0"}) {
        benchmark::RegisterBenchmark(
            ("BM_HybridTriangles<" + sweep.name + ">/" +
             IntersectKernelName(kernel) + "/" + split)
                .c_str(),
            [g, kernel, split, expected](benchmark::State& state) {
              BM_HybridTriangles(state, g, kernel, split, expected);
            });
      }
    }
  }
}

void BM_Crc32c(benchmark::State& state) {
  std::vector<char> data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void BM_PageBuild(benchmark::State& state) {
  std::vector<char> buffer(4096);
  std::vector<VertexId> neighbors(64);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    neighbors[i] = static_cast<VertexId>(i * 3);
  }
  for (auto _ : state) {
    PageBuilder builder(buffer.data(), 4096, 1);
    while (builder.FreeNeighborCapacity() >= neighbors.size()) {
      builder.AddSegment(7, 64, 0, neighbors);
    }
    builder.Finish();
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_PageBuild);

void BM_PageParse(benchmark::State& state) {
  std::vector<char> buffer(4096);
  std::vector<VertexId> neighbors(64);
  PageBuilder builder(buffer.data(), 4096, 1);
  while (builder.FreeNeighborCapacity() >= neighbors.size()) {
    builder.AddSegment(7, 64, 0, neighbors);
  }
  builder.Finish();
  for (auto _ : state) {
    PageView view(buffer.data(), 4096);
    uint64_t total = 0;
    for (uint32_t s = 0; s < view.num_slots(); ++s) {
      total += view.GetSegment(s).neighbors.size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PageParse);

void BM_BufferPoolLookup(benchmark::State& state) {
  BufferPool pool(4096, 256);
  for (uint32_t pid = 0; pid < 128; ++pid) {
    auto frame = pool.AllocateForRead(pid);
    pool.MarkValid(*frame);
    pool.Unpin(*frame);
  }
  uint32_t pid = 0;
  for (auto _ : state) {
    Frame* f = pool.LookupAndPin(pid % 128);
    pool.Unpin(f);
    ++pid;
  }
}
BENCHMARK(BM_BufferPoolLookup);

void BM_DegreeOrderedEdgeIteratorWork(benchmark::State& state) {
  CSRGraph g = GenerateErdosRenyi(1u << 12, 1u << 16, 3);
  for (auto _ : state) {
    uint64_t triangles = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto succ_u = g.Successors(u);
      for (VertexId v : succ_u) {
        triangles += IntersectCount(succ_u, g.Successors(v));
      }
    }
    benchmark::DoNotOptimize(triangles);
  }
}
BENCHMARK(BM_DegreeOrderedEdgeIteratorWork);

}  // namespace
}  // namespace opt

int main(int argc, char** argv) {
  opt::RegisterIntersectKernelBenchmarks();
  opt::RegisterHybridHubSweepBenchmarks();
  benchmark::Initialize(&argc, argv);
  // Which rung produced the PMU columns (the JSON context block carries
  // it, so baselines record whether cycles/LLC data was real hardware).
  benchmark::AddCustomContext("perf_backend",
                              opt::PerfBackendName(opt::ActivePerfBackend()));
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
