// Shared plumbing for the experiment binaries (one per paper table or
// figure). Every binary accepts:
//   --scale_shift N   shrink datasets by 2^N (default kDefaultShift —
//                     sized so each binary finishes in seconds on CI)
//   --read_us  N      emulated FlashSSD per-page read latency (µs)
//   --write_us N      emulated per-page write latency (µs)
//   --threads  N      worker threads for parallel methods
//   --work_dir PATH   where graph stores are materialized
//   --kernel   K      intersection kernel: scalar|sse|avx2|bitmap|
//                     bitmap_scalar|auto (default: leave the
//                     auto-selected kernel in place)
//   --hub_split S     hub/tail degree split for the bitmap kernels:
//                     off|auto|pNN|<degree> (default auto; only
//                     consulted under a bitmap kernel)
// The latency injection stands in for the paper's direct-I/O FlashSSD:
// it makes I/O cost proportional to pages touched even when the OS page
// cache would otherwise hide it (DESIGN.md §3).
#ifndef OPT_BENCH_BENCH_COMMON_H_
#define OPT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <sys/stat.h>
#include <sys/utsname.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "graph/hub_bitmap.h"
#include "graph/intersect.h"
#include "harness/datasets.h"
#include "harness/methods.h"
#include "obs/perf_counters.h"
#include "storage/env.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace opt {
namespace bench {

inline constexpr int kDefaultShift = 2;
inline constexpr uint32_t kDefaultReadMicros = 30;
inline constexpr uint32_t kDefaultWriteMicros = 60;
inline constexpr uint32_t kPageSize = 4096;

struct BenchContext {
  std::unique_ptr<ThrottledEnv> env;
  std::string work_dir;
  int scale_shift = kDefaultShift;
  uint32_t threads = 2;
  /// Set when --kernel was passed; already installed process-wide.
  std::optional<IntersectKernel> kernel;
  /// Set when --hub_split was passed; already installed as the
  /// process-wide default split.
  std::optional<HubSplitSpec> hub_split;
  /// --json_out PATH: where the unified bench report goes ("" = none).
  std::string json_out;

  Env* get_env() { return env.get(); }
};

inline BenchContext MakeContext(int argc, char** argv) {
  InitLogLevelFromEnv();
  BenchContext ctx;
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    std::exit(2);
  }
  ctx.scale_shift =
      static_cast<int>(cl->GetInt("scale_shift", kDefaultShift));
  const auto read_us = static_cast<uint32_t>(
      cl->GetInt("read_us", kDefaultReadMicros));
  const auto write_us = static_cast<uint32_t>(
      cl->GetInt("write_us", kDefaultWriteMicros));
  ctx.threads = static_cast<uint32_t>(cl->GetInt("threads", 2));
  ctx.work_dir = cl->GetString("work_dir", "/tmp/opt_bench");
  ctx.json_out = cl->GetString("json_out", "");
  ::mkdir(ctx.work_dir.c_str(), 0755);
  ctx.env = std::make_unique<ThrottledEnv>(Env::Default(), read_us,
                                           write_us);
  if (cl->Has("kernel")) {
    auto choice = cl->GetChoice(
        "kernel", {"scalar", "sse", "avx2", "bitmap", "bitmap_scalar", "auto"},
        "auto");
    if (!choice.ok()) {
      std::fprintf(stderr, "%s\n", choice.status().ToString().c_str());
      std::exit(2);
    }
    auto kernel = ParseIntersectKernel(*choice);
    if (Status s = SetIntersectKernel(*kernel); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(2);
    }
    ctx.kernel = *kernel;
  }
  if (cl->Has("hub_split")) {
    auto split = HubSplitSpec::Parse(cl->GetString("hub_split", "auto"));
    if (!split.ok()) {
      std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
      std::exit(2);
    }
    SetDefaultHubSplit(*split);
    ctx.hub_split = *split;
  }
  return ctx;
}

/// Prints per-kernel intersection throughput from a counter delta — the
/// kernel-level view the SIMD ablation reads (`--kernel` to force one).
inline void PrintKernelCounters(const char* tag,
                                const IntersectCounters& delta,
                                double seconds) {
  for (int k = 0; k < kNumIntersectKernels; ++k) {
    if (delta.calls[k] == 0) continue;
    const double elems = static_cast<double>(delta.elements[k]);
    std::printf(
        "  [%s] kernel=%s calls=%llu elements=%llu (%.1f Melem/s, "
        "%.1f MB/s)\n",
        tag, IntersectKernelName(static_cast<IntersectKernel>(k)),
        static_cast<unsigned long long>(delta.calls[k]),
        static_cast<unsigned long long>(delta.elements[k]),
        seconds > 0 ? elems / seconds * 1e-6 : 0.0,
        seconds > 0 ? elems * sizeof(VertexId) / seconds * 1e-6 : 0.0);
  }
}

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("=== %s ===\n%s\n", experiment, description);
}

inline std::string Secs(double s) { return TablePrinter::Fmt(s, 3); }

// ---------------------------------------------------------------------
// Unified bench JSON (DESIGN.md §13). Every bench that honors
// --json_out emits the same versioned envelope so tools/bench_check can
// diff any fresh run against any committed BENCH_*.json baseline:
//   { "schema_version": 1, "experiment": "...",
//     "host": {hostname, nproc, machine, kernel},
//     "perf_backend": "...", "rows": [ {...}, ... ] }
// Bump kBenchSchemaVersion on any incompatible envelope change.
// ---------------------------------------------------------------------

inline constexpr int kBenchSchemaVersion = 1;

/// Insertion-ordered JSON object builder (keys are trusted literals;
/// string *values* are escaped).
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, const std::string& v) {
    Key(key);
    body_ += '"';
    for (char c : v) {
      switch (c) {
        case '"': body_ += "\\\""; break;
        case '\\': body_ += "\\\\"; break;
        case '\n': body_ += "\\n"; break;
        case '\t': body_ += "\\t"; break;
        case '\r': body_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            body_ += buf;
          } else {
            body_ += c;
          }
      }
    }
    body_ += '"';
    return *this;
  }
  JsonObject& Add(const std::string& key, const char* v) {
    return Add(key, std::string(v));
  }
  JsonObject& Add(const std::string& key, double v, int precision = 6) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    Key(key);
    body_ += buf;
    return *this;
  }
  JsonObject& Add(const std::string& key, uint64_t v) {
    Key(key);
    body_ += std::to_string(v);
    return *this;
  }
  JsonObject& Add(const std::string& key, int64_t v) {
    Key(key);
    body_ += std::to_string(v);
    return *this;
  }
  JsonObject& Add(const std::string& key, uint32_t v) {
    return Add(key, static_cast<uint64_t>(v));
  }
  JsonObject& Add(const std::string& key, int v) {
    return Add(key, static_cast<int64_t>(v));
  }
  JsonObject& Add(const std::string& key, bool v) {
    Key(key);
    body_ += v ? "true" : "false";
    return *this;
  }
  /// Pre-rendered JSON (nested objects/arrays).
  JsonObject& AddRaw(const std::string& key, const std::string& json) {
    Key(key);
    body_ += json;
    return *this;
  }
  std::string Render() const { return "{" + body_ + "}"; }

 private:
  void Key(const std::string& key) {
    if (!body_.empty()) body_ += ",";
    body_ += '"';
    body_ += key;
    body_ += "\":";
  }
  std::string body_;
};

/// The fingerprint bench_check uses to decide whether host-dependent
/// metrics (seconds, qps) may gate or are informational only.
inline JsonObject HostInfoJson() {
  JsonObject host;
  char hostname[256] = {0};
  if (::gethostname(hostname, sizeof(hostname) - 1) != 0) hostname[0] = '\0';
  host.Add("hostname", hostname);
  host.Add("nproc",
           static_cast<uint64_t>(std::thread::hardware_concurrency()));
  utsname u{};
  if (::uname(&u) == 0) {
    host.Add("machine", u.machine);
    host.Add("kernel", u.release);
  }
  return host;
}

/// Adds the PMU columns to a bench row when the active backend delivers
/// them — absent columns mean "not counted here", never "zero cost".
inline void AddPerfColumns(JsonObject* row, const PerfReading& d) {
  if (ActivePerfBackend() == PerfBackend::kNone) return;
  row->Add("task_clock_ms",
           static_cast<double>(d.task_clock_ns) * 1e-6, 3);
  if (d.cycles > 0) {
    row->Add("cycles", d.cycles);
    row->Add("ipc", d.Ipc(), 3);
  }
  if (d.instructions > 0) row->Add("instructions", d.instructions);
  if (d.llc_loads > 0) {
    row->Add("llc_loads", d.llc_loads);
    row->Add("llc_misses", d.llc_misses);
  }
  if (d.branch_misses > 0) row->Add("branch_misses", d.branch_misses);
  if (d.time_enabled_ns > 0) {
    row->Add("perf_multiplex", d.MultiplexRatio(), 4);
  }
}

class BenchReport {
 public:
  explicit BenchReport(std::string experiment)
      : experiment_(std::move(experiment)) {}

  void AddRow(const JsonObject& row) { rows_.push_back(row.Render()); }
  size_t num_rows() const { return rows_.size(); }

  std::string Render() const {
    std::string out = "{\n";
    out += "  \"schema_version\": " + std::to_string(kBenchSchemaVersion) +
           ",\n";
    out += "  \"experiment\": \"" + experiment_ + "\",\n";
    out += "  \"host\": " + HostInfoJson().Render() + ",\n";
    out += "  \"perf_backend\": \"";
    out += PerfBackendName(ActivePerfBackend());
    out += "\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "    " + rows_[i];
      if (i + 1 < rows_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  bool WriteTo(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    out << Render();
    std::printf("wrote %s (%zu rows, experiment=%s)\n", path.c_str(),
                rows_.size(), experiment_.c_str());
    return true;
  }

  /// Honors BenchContext::json_out; true unless a requested write failed.
  bool MaybeWrite(const BenchContext& ctx) const {
    return ctx.json_out.empty() ? true : WriteTo(ctx.json_out);
  }

 private:
  std::string experiment_;
  std::vector<std::string> rows_;
};

}  // namespace bench
}  // namespace opt

#endif  // OPT_BENCH_BENCH_COMMON_H_
