// Shared plumbing for the experiment binaries (one per paper table or
// figure). Every binary accepts:
//   --scale_shift N   shrink datasets by 2^N (default kDefaultShift —
//                     sized so each binary finishes in seconds on CI)
//   --read_us  N      emulated FlashSSD per-page read latency (µs)
//   --write_us N      emulated per-page write latency (µs)
//   --threads  N      worker threads for parallel methods
//   --work_dir PATH   where graph stores are materialized
//   --kernel   K      intersection kernel: scalar|sse|avx2|bitmap|
//                     bitmap_scalar|auto (default: leave the
//                     auto-selected kernel in place)
//   --hub_split S     hub/tail degree split for the bitmap kernels:
//                     off|auto|pNN|<degree> (default auto; only
//                     consulted under a bitmap kernel)
// The latency injection stands in for the paper's direct-I/O FlashSSD:
// it makes I/O cost proportional to pages touched even when the OS page
// cache would otherwise hide it (DESIGN.md §3).
#ifndef OPT_BENCH_BENCH_COMMON_H_
#define OPT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <sys/stat.h>

#include "graph/hub_bitmap.h"
#include "graph/intersect.h"
#include "harness/datasets.h"
#include "harness/methods.h"
#include "storage/env.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace opt {
namespace bench {

inline constexpr int kDefaultShift = 2;
inline constexpr uint32_t kDefaultReadMicros = 30;
inline constexpr uint32_t kDefaultWriteMicros = 60;
inline constexpr uint32_t kPageSize = 4096;

struct BenchContext {
  std::unique_ptr<ThrottledEnv> env;
  std::string work_dir;
  int scale_shift = kDefaultShift;
  uint32_t threads = 2;
  /// Set when --kernel was passed; already installed process-wide.
  std::optional<IntersectKernel> kernel;
  /// Set when --hub_split was passed; already installed as the
  /// process-wide default split.
  std::optional<HubSplitSpec> hub_split;

  Env* get_env() { return env.get(); }
};

inline BenchContext MakeContext(int argc, char** argv) {
  InitLogLevelFromEnv();
  BenchContext ctx;
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    std::exit(2);
  }
  ctx.scale_shift =
      static_cast<int>(cl->GetInt("scale_shift", kDefaultShift));
  const auto read_us = static_cast<uint32_t>(
      cl->GetInt("read_us", kDefaultReadMicros));
  const auto write_us = static_cast<uint32_t>(
      cl->GetInt("write_us", kDefaultWriteMicros));
  ctx.threads = static_cast<uint32_t>(cl->GetInt("threads", 2));
  ctx.work_dir = cl->GetString("work_dir", "/tmp/opt_bench");
  ::mkdir(ctx.work_dir.c_str(), 0755);
  ctx.env = std::make_unique<ThrottledEnv>(Env::Default(), read_us,
                                           write_us);
  if (cl->Has("kernel")) {
    auto choice = cl->GetChoice(
        "kernel", {"scalar", "sse", "avx2", "bitmap", "bitmap_scalar", "auto"},
        "auto");
    if (!choice.ok()) {
      std::fprintf(stderr, "%s\n", choice.status().ToString().c_str());
      std::exit(2);
    }
    auto kernel = ParseIntersectKernel(*choice);
    if (Status s = SetIntersectKernel(*kernel); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(2);
    }
    ctx.kernel = *kernel;
  }
  if (cl->Has("hub_split")) {
    auto split = HubSplitSpec::Parse(cl->GetString("hub_split", "auto"));
    if (!split.ok()) {
      std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
      std::exit(2);
    }
    SetDefaultHubSplit(*split);
    ctx.hub_split = *split;
  }
  return ctx;
}

/// Prints per-kernel intersection throughput from a counter delta — the
/// kernel-level view the SIMD ablation reads (`--kernel` to force one).
inline void PrintKernelCounters(const char* tag,
                                const IntersectCounters& delta,
                                double seconds) {
  for (int k = 0; k < kNumIntersectKernels; ++k) {
    if (delta.calls[k] == 0) continue;
    const double elems = static_cast<double>(delta.elements[k]);
    std::printf(
        "  [%s] kernel=%s calls=%llu elements=%llu (%.1f Melem/s, "
        "%.1f MB/s)\n",
        tag, IntersectKernelName(static_cast<IntersectKernel>(k)),
        static_cast<unsigned long long>(delta.calls[k]),
        static_cast<unsigned long long>(delta.elements[k]),
        seconds > 0 ? elems / seconds * 1e-6 : 0.0,
        seconds > 0 ? elems * sizeof(VertexId) / seconds * 1e-6 : 0.0);
  }
}

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("=== %s ===\n%s\n", experiment, description);
}

inline std::string Secs(double s) { return TablePrinter::Fmt(s, 3); }

}  // namespace bench
}  // namespace opt

#endif  // OPT_BENCH_BENCH_COMMON_H_
