// Ablation: the Schank–Wagner degree-ordering heuristic (§2.2). The
// paper credits it with order-of-magnitude gains on power-law graphs
// because high ids on high-degree vertices shrink |n_succ(v)| and thus
// every intersection. This bench measures the ordered edge-iterator
// under natural, random, and degree orderings, plus the Eq. 3 work
// bound sum min(|n_succ(u)|, |n_succ(v)|).
#include "bench_common.h"

#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "gen/rmat.h"
#include "graph/reorder.h"
#include "util/stopwatch.h"

using namespace opt;

namespace {

uint64_t SuccWorkBound(const CSRGraph& g) {
  uint64_t total = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto succ_u = g.Successors(u);
    for (VertexId v : succ_u) {
      total += std::min(succ_u.size(), g.Successors(v).size());
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Ablation: vertex ordering",
                "Ordered edge-iterator under different id assignments "
                "(R-MAT power-law graph)");

  RmatOptions gen;
  gen.scale = static_cast<uint32_t>(std::max(8, 15 - ctx.scale_shift));
  gen.edge_factor = 16;
  // Heavy skew: the heuristic's payoff grows with hub sizes.
  gen.a = 0.60;
  gen.b = 0.18;
  gen.c = 0.18;
  gen.d = 0.04;
  gen.seed = 3;
  CSRGraph natural = GenerateRmat(gen);

  TablePrinter table({"ordering", "work bound Σmin|succ|",
                      "elapsed (s)", "triangles"});
  struct Variant {
    const char* name;
    CSRGraph graph;
  };
  uint32_t degeneracy = 0;
  Variant variants[] = {
      {"natural (generator ids)", natural},
      {"random permutation", RandomOrder(natural, 7).graph},
      {"degree heuristic", DegreeOrder(natural).graph},
      {"degeneracy order", DegeneracyOrder(natural, &degeneracy).graph},
  };
  for (auto& variant : variants) {
    CountingSink sink;
    Stopwatch watch;
    EdgeIteratorInMemory(variant.graph, &sink);
    table.AddRow({variant.name, TablePrinter::Fmt(SuccWorkBound(variant.graph)),
                  bench::Secs(watch.ElapsedSeconds()),
                  TablePrinter::Fmt(sink.count())});
  }
  table.Print();
  std::printf("graph degeneracy: %u\n", degeneracy);
  std::printf("Expected shape (§2.2): degree heuristic minimizes the work "
              "bound and the elapsed time; random/natural orders are "
              "several times worse on skewed graphs.\n");
  return 0;
}
