// Table 7: one-PC OPT vs distributed triangulation on a 31-node
// cluster (SV on Hadoop, AKM on MPI, PowerGraph). The distributed
// methods run as exact simulations: their real computation executes
// locally and their true communication volumes are charged to a
// network model; Hadoop's per-round job overhead dominates SV exactly
// as in the paper's measurements.
#include "bench_common.h"

#include "distsim/distributed.h"
#include "harness/datasets.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Table 7",
                "OPT (1 node) vs simulated distributed methods (31 "
                "nodes) on the TWITTER stand-in");

  auto specs = PaperDatasets(ctx.scale_shift);
  CSRGraph graph;
  auto store = MaterializeDataset(specs[2] /*TWITTER*/, ctx.get_env(),
                                  ctx.work_dir, bench::kPageSize, &graph);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }

  // OPT on one "node".
  MethodConfig config;
  config.memory_pages = PagesForBufferPercent(**store, 15.0);
  config.num_threads = ctx.threads;
  config.temp_dir = ctx.work_dir;
  auto opt = RunMethod(Method::kOpt, store->get(), ctx.get_env(), config);
  if (!opt.ok()) {
    std::fprintf(stderr, "%s\n", opt.status().ToString().c_str());
    return 1;
  }

  DistSimOptions dist;
  dist.nodes = 31;
  dist.cores_per_node = 12;
  // Hadoop job rounds carry tens of seconds of scheduling and HDFS
  // materialization overhead; MPI rounds are cheap barriers. Scaled to
  // this harness's graph sizes.
  DistSimOptions sv_options = dist;
  sv_options.network.round_latency_sec = 5.0;   // Hadoop job overhead
  sv_options.network.bandwidth_bytes_per_sec = 1.0e8;  // incl. HDFS I/O
  DistSimOptions mpi_options = dist;
  mpi_options.network.round_latency_sec = 0.05;
  mpi_options.network.bandwidth_bytes_per_sec = 2.0e9;

  auto sv = SimulateSV(graph, sv_options);
  auto akm = SimulateAKM(graph, mpi_options);
  auto pg = SimulatePowerGraph(graph, mpi_options);
  if (!sv.ok() || !akm.ok() || !pg.ok()) {
    std::fprintf(stderr, "simulation failed\n");
    return 1;
  }
  for (const auto* r : {&*sv, &*akm, &*pg}) {
    if (r->triangles != opt->triangles) {
      std::fprintf(stderr, "COUNT MISMATCH: %llu vs %llu\n",
                   static_cast<unsigned long long>(r->triangles),
                   static_cast<unsigned long long>(opt->triangles));
      return 1;
    }
  }

  TablePrinter table({"method", "framework", "nodes", "elapsed (s)",
                      "shuffle MB", "relative perf per node vs OPT"});
  auto add = [&](const char* name, const char* framework,
                 const DistSimResult& r) {
    // Relative performance = (elapsed * nodes) / (opt elapsed * 1).
    const double rel = (r.elapsed_seconds * r.nodes) / opt->seconds;
    table.AddRow({name, framework, TablePrinter::Fmt(uint64_t{r.nodes}),
                  bench::Secs(r.elapsed_seconds),
                  TablePrinter::Fmt(r.shuffle_bytes / 1048576.0, 2),
                  TablePrinter::Fmt(rel, 1)});
  };
  table.AddRow({"OPT", "this work", "1", bench::Secs(opt->seconds), "0.00",
                "1.0"});
  add("SV", "Hadoop", *sv);
  add("AKM", "MPI", *akm);
  add("PowerGraph", "MPI", *pg);
  table.Print();
  std::printf("Expected shape (paper Table 7): SV slowest by far (Hadoop "
              "rounds + shuffle duplication); AKM slightly slower than "
              "OPT; PowerGraph competitive in wall time but ~24x worse "
              "per node.\n");
  return 0;
}
