// Service-layer throughput: closed-loop clients issuing COUNT queries
// through the QueryScheduler (in process — no socket overhead, so the
// numbers isolate scheduling + shared-pool behavior) while the worker
// count sweeps {1, 2, 4, 8}.
//
// Reported per worker count: queries/sec, mean and p50/p95/p99 latency
// (per-client histograms merged after the wave), shared-pool hit rate,
// and how many queries were answered without a fresh run (coalesced /
// cached). One query per wave (client 0's first) runs with the overlap
// profiler on, so each JSON line also carries the micro/macro overlap
// fractions and the §3.3 cost-model residual observed while the wave
// contends for the shared pool. One JSON line per configuration on
// stdout (prefix "JSON ") for trend tracking; see EXPERIMENTS.md.
//
//   bench_service_throughput [--clients N] [--queries_per_client N]
//       [--pages N] [--no_cache] + the common flags (bench_common.h)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/erdos_renyi.h"
#include "obs/overlap_profiler.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "storage/buffer_pool.h"
#include "storage/graph_store.h"
#include "util/histogram.h"
#include "util/table_printer.h"

using namespace opt;
using namespace opt::bench;

namespace {

struct RunResult {
  double seconds = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  double total_latency = 0;  // summed per-query wall time
  HistogramSnapshot latency_us;  // per-query wall time, microseconds
  SchedulerStats stats;
  PoolStatsSnapshot pool;
  // From the wave's single profiled query (client 0's first).
  bool profiled = false;
  OverlapReport overlap;
};

RunResult RunWave(Env* env, const std::vector<std::string>& store_paths,
                  uint32_t workers, int clients, int queries_per_client,
                  uint32_t pages, bool enable_cache) {
  GraphRegistry registry(env);
  SchedulerOptions options;
  options.workers = workers;
  options.max_queue = static_cast<uint32_t>(clients * queries_per_client);
  options.default_memory_pages = pages;
  options.enable_result_cache = enable_cache;
  QueryScheduler scheduler(&registry, options);
  std::vector<std::string> names;
  for (size_t i = 0; i < store_paths.size(); ++i) {
    names.push_back("g" + std::to_string(i));
    Status s = scheduler.LoadGraph(names.back(), store_paths[i]);
    if (!s.ok()) {
      std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  const PoolStatsSnapshot pool_before =
      registry.pool()->stats().Snapshot();

  RunResult result;
  std::atomic<uint64_t> errors{0};
  std::vector<double> latencies(clients, 0.0);
  // One histogram per client thread, merged after the join — no
  // cross-thread synchronization on the hot path.
  std::vector<Histogram> client_hists(clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int q = 0; q < queries_per_client; ++q) {
        QuerySpec spec;
        // Clients pair up (0&1, 2&3, ...): both members issue identical
        // query streams, so half the load is duplicates that can
        // coalesce or hit the cache while the rest are distinct runs.
        spec.graph = names[(c / 2 + q) % names.size()];
        spec.memory_pages = pages + (c / 2) * queries_per_client + q;
        // One profiled query per wave: it executes fresh (profiled
        // queries never coalesce or hit the cache) while the other
        // clients load the shared pool, so its overlap report reflects
        // the contended configuration.
        const bool profile_this = c == 0 && q == 0;
        spec.profile = profile_this;
        const auto q0 = std::chrono::steady_clock::now();
        const QueryResult answer = scheduler.Run(spec);
        const auto q1 = std::chrono::steady_clock::now();
        if (profile_this && answer.profiled) {
          result.profiled = true;  // only client 0 writes these
          result.overlap = answer.overlap;
        }
        const double query_seconds =
            std::chrono::duration<double>(q1 - q0).count();
        latencies[c] += query_seconds;
        client_hists[c].Add(static_cast<uint64_t>(query_seconds * 1e6));
        if (!answer.status.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.queries =
      static_cast<uint64_t>(clients) * queries_per_client;
  result.errors = errors.load();
  for (double latency : latencies) result.total_latency += latency;
  for (const Histogram& hist : client_hists) {
    result.latency_us.Merge(hist.Snapshot());
  }
  result.stats = scheduler.stats();
  result.pool = PoolStatsSnapshot::Delta(
      registry.pool()->stats().Snapshot(), pool_before);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = MakeContext(argc, argv);
  auto cl = CommandLine::Parse(argc, argv);
  const int clients = static_cast<int>(cl->GetInt("clients", 8));
  const int queries_per_client =
      static_cast<int>(cl->GetInt("queries_per_client", 8));
  const uint32_t pages =
      static_cast<uint32_t>(cl->GetInt("pages", 128));
  const bool enable_cache = !cl->GetBool("no_cache", false);

  Banner("service_throughput",
         "Closed-loop COUNT clients against the query service; worker "
         "sweep with a shared buffer pool across two graphs.");

  // Two mid-sized graphs so queries contend for the shared pool.
  const uint64_t scale = 1ull << ctx.scale_shift;
  std::vector<std::string> store_paths;
  for (int i = 0; i < 2; ++i) {
    CSRGraph g = GenerateErdosRenyi(
        static_cast<VertexId>(4000 / scale),
        static_cast<uint64_t>(60000 / scale), 97 + i);
    const std::string base =
        ctx.work_dir + "/svc_bench_g" + std::to_string(i);
    GraphStoreOptions options;
    options.page_size = kPageSize;
    if (Status s = GraphStore::Create(g, ctx.get_env(), base, options);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    store_paths.push_back(base);
  }

  TablePrinter table({"workers", "qps", "mean_lat_ms", "p50_ms", "p95_ms",
                      "p99_ms", "pool_hit_rate", "executed", "coalesced",
                      "cache_hits", "errors"});
  bench::BenchReport report_out("service_throughput");
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    const RunResult r =
        RunWave(ctx.get_env(), store_paths, workers, clients,
                queries_per_client, pages, enable_cache);
    const double qps = r.seconds > 0 ? r.queries / r.seconds : 0.0;
    const double mean_latency_ms =
        r.queries > 0 ? r.total_latency / r.queries * 1e3 : 0.0;
    const double p50_ms = r.latency_us.P50() / 1e3;
    const double p95_ms = r.latency_us.P95() / 1e3;
    const double p99_ms = r.latency_us.P99() / 1e3;
    const double hit_rate =
        r.pool.lookups > 0
            ? static_cast<double>(r.pool.hits) / r.pool.lookups
            : 0.0;
    table.AddRow({std::to_string(workers), TablePrinter::Fmt(qps, 1),
                  TablePrinter::Fmt(mean_latency_ms, 2),
                  TablePrinter::Fmt(p50_ms, 2),
                  TablePrinter::Fmt(p95_ms, 2),
                  TablePrinter::Fmt(p99_ms, 2),
                  TablePrinter::Fmt(hit_rate, 3),
                  std::to_string(r.stats.executed),
                  std::to_string(r.stats.coalesced),
                  std::to_string(r.stats.cache_hits),
                  std::to_string(r.errors)});
    bench::JsonObject row;
    row.Add("experiment", "service_throughput")
        .Add("workers", workers)
        .Add("clients", clients)
        .Add("queries", r.queries)
        .Add("qps", qps, 2)
        .Add("mean_latency_ms", mean_latency_ms, 3)
        .Add("p50_latency_ms", p50_ms, 3)
        .Add("p95_latency_ms", p95_ms, 3)
        .Add("p99_latency_ms", p99_ms, 3)
        .Add("pool_hit_rate", hit_rate, 4)
        .Add("executed", r.stats.executed)
        .Add("coalesced", r.stats.coalesced)
        .Add("cache_hits", r.stats.cache_hits)
        .Add("errors", r.errors)
        .Add("profiled", r.profiled)
        .Add("micro_overlap", r.overlap.MicroOverlapFraction(), 4)
        .Add("macro_overlap", r.overlap.MacroOverlapFraction(), 4)
        .Add("overlap_samples", r.overlap.samples)
        .Add("morph_events", r.overlap.morph_events)
        .Add("cost_residual_seconds", r.overlap.cost.residual_seconds);
    std::printf("JSON %s\n", row.Render().c_str());
    report_out.AddRow(row);
    if (r.errors != 0) return 1;
  }
  table.Print();
  // --json_out: unified envelope, same rows as the per-line JSON above.
  return report_out.MaybeWrite(ctx) ? 0 : 1;
}
