// Ablation: exact listing vs approximate counting (the related-work
// family the paper argues against for general triangulation, §1/§4).
// Shows the accuracy/cost trade-off of Doulion and wedge sampling
// against the exact edge-iterator.
#include "bench_common.h"

#include "baselines/approx.h"
#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "gen/rmat.h"
#include "graph/reorder.h"
#include "util/stopwatch.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Ablation: exact vs approximate counting",
                "Doulion sparsification and wedge sampling against the "
                "exact ordered edge-iterator (R-MAT)");

  RmatOptions gen;
  gen.scale = static_cast<uint32_t>(std::max(8, 15 - ctx.scale_shift));
  gen.edge_factor = 16;
  gen.seed = 19;
  CSRGraph g = DegreeOrder(GenerateRmat(gen)).graph;

  CountingSink exact_sink;
  Stopwatch exact_watch;
  EdgeIteratorInMemory(g, &exact_sink);
  const double exact_seconds = exact_watch.ElapsedSeconds();
  const double exact = static_cast<double>(exact_sink.count());

  TablePrinter table({"method", "parameter", "estimate", "mean |err| %",
                      "elapsed (s)", "lists triangles?"});
  table.AddRow({"EdgeIterator (exact)", "-", TablePrinter::Fmt(exact, 0),
                "0.0", bench::Secs(exact_seconds), "yes"});
  constexpr int kSeeds = 5;  // mean absolute error over seeds
  for (double p : {0.1, 0.3, 0.5}) {
    double err = 0, secs = 0, last = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      ApproxResult result = DoulionEstimate(g, p, 50 + seed);
      err += std::abs(result.estimate - exact) / exact;
      secs += result.elapsed_seconds;
      last = result.estimate;
    }
    table.AddRow({"Doulion", "p=" + TablePrinter::Fmt(p, 1),
                  TablePrinter::Fmt(last, 0),
                  TablePrinter::Fmt(100.0 * err / kSeeds, 1),
                  bench::Secs(secs / kSeeds), "no"});
  }
  for (uint64_t samples : {1000ull, 10000ull, 100000ull}) {
    double err = 0, secs = 0, last = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      ApproxResult result = WedgeSamplingEstimate(g, samples, 50 + seed);
      err += std::abs(result.estimate - exact) / exact;
      secs += result.elapsed_seconds;
      last = result.estimate;
    }
    table.AddRow({"Wedge sampling", "k=" + TablePrinter::Fmt(samples),
                  TablePrinter::Fmt(last, 0),
                  TablePrinter::Fmt(100.0 * err / kSeeds, 1),
                  bench::Secs(secs / kSeeds), "no"});
  }
  table.Print();
  std::printf("Expected shape: error shrinks with p / samples; neither "
              "method yields the triangle *listing* that the paper's "
              "applications require.\n");
  return 0;
}
