// Figure 7c: elapsed time vs clustering coefficient on Holme–Kim
// graphs with fixed |V| and average degree. Paper shape: elapsed time
// of OPT/OPT_serial/MGT stays ~constant as clustering rises, because
// the intersection work depends on degrees, not on how many
// intersections succeed.
#include "bench_common.h"

#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "gen/holme_kim.h"
#include "graph/reorder.h"
#include "graph/stats.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Figure 7c",
                "Elapsed time (s) vs clustering coefficient (Holme-Kim "
                "generator, fixed |V| and average degree 10)");

  const auto num_vertices = static_cast<VertexId>(
      1u << std::max(8, 15 - ctx.scale_shift));
  TablePrinter table({"target CC", "measured CC", "triangles",
                      "OPT_serial", "MGT", "OPT"});
  for (double target : {0.10, 0.15, 0.20, 0.25, 0.30}) {
    HolmeKimOptions gen;
    gen.num_vertices = num_vertices;
    gen.edges_per_vertex = 5;  // average degree ~10 as in the paper
    gen.triad_probability = TriadProbabilityForClustering(target, 5);
    gen.seed = 23;
    CSRGraph raw = GenerateHolmeKim(gen);
    // Measure the realized clustering coefficient.
    PerVertexCountSink per_vertex(raw.num_vertices());
    EdgeIteratorInMemory(raw, &per_vertex);
    const double measured =
        AverageClusteringCoefficient(raw, per_vertex.Counts());
    CSRGraph graph = DegreeOrder(raw).graph;

    GraphStoreOptions gso;
    gso.page_size = bench::kPageSize;
    const std::string base = ctx.work_dir + "/fig7c";
    if (Status s = GraphStore::Create(graph, ctx.get_env(), base, gso);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    auto store = GraphStore::Open(ctx.get_env(), base);
    if (!store.ok()) return 1;

    std::vector<std::string> row{TablePrinter::Fmt(target, 2),
                                 TablePrinter::Fmt(measured, 3), ""};
    uint64_t triangles = 0;
    for (Method method :
         {Method::kOptSerial, Method::kMgt, Method::kOpt}) {
      MethodConfig config;
      config.memory_pages = PagesForBufferPercent(**store, 15.0);
      config.num_threads = ctx.threads;
      config.temp_dir = ctx.work_dir;
      auto result = RunMethod(method, store->get(), ctx.get_env(), config);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      triangles = result->triangles;
      row.push_back(bench::Secs(result->seconds));
    }
    row[2] = TablePrinter::Fmt(triangles);
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("Expected shape (paper Fig. 7c): elapsed times flat across "
              "the clustering sweep; triangle count rises with CC.\n");
  return 0;
}
