// Figure 6 + Table 5: speed-up of OPT and GraphChi-Tri as CPU threads
// grow, with the measured Amdahl parallel fraction p and the resulting
// upper bound ub^c = 1/((1-p) + p/c). Paper shape: OPT has p > 0.95 and
// scales nearly linearly; GraphChi-Tri saturates below 2.5x.
#include "bench_common.h"

#include "harness/amdahl.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Figure 6 / Table 5",
                "Speed-up vs threads, measured parallel fraction p, and "
                "the Amdahl upper bound");

  auto specs = PaperDatasets(ctx.scale_shift);
  bench::BenchReport report_out("fig6_table5_speedup");
  for (size_t d : {2u, 3u}) {  // TWITTER, UK (the figure's datasets)
    auto store = MaterializeDataset(specs[d], ctx.get_env(), ctx.work_dir,
                                    bench::kPageSize);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s\n", specs[d].name.c_str());
    TablePrinter table({"threads", "OPT (s)", "OPT speedup", "OPT ub",
                        "GraphChi (s)", "GraphChi speedup", "GraphChi ub"});
    double opt_base = 0, chi_base = 0, opt_p = 0, chi_p = 0;
    for (uint32_t threads : {1u, 2u, 3u, 4u, 6u}) {
      MethodConfig config;
      config.memory_pages = PagesForBufferPercent(**store, 15.0);
      config.num_threads = threads;
      config.temp_dir = ctx.work_dir;
      auto opt = RunMethod(threads == 1 ? Method::kOptSerial : Method::kOpt,
                           store->get(), ctx.get_env(), config);
      auto chi = RunMethod(threads == 1 ? Method::kGraphChiTriSerial
                                        : Method::kGraphChiTri,
                           store->get(), ctx.get_env(), config);
      if (!opt.ok() || !chi.ok()) {
        std::fprintf(stderr, "run failed\n");
        return 1;
      }
      if (threads == 1) {
        opt_base = opt->seconds;
        chi_base = chi->seconds;
        opt_p = opt->parallel_fraction;
        chi_p = chi->parallel_fraction;
      }
      table.AddRow({TablePrinter::Fmt(uint64_t{threads}),
                    bench::Secs(opt->seconds),
                    TablePrinter::Fmt(opt_base / opt->seconds, 2),
                    TablePrinter::Fmt(AmdahlUpperBound(opt_p, threads), 2),
                    bench::Secs(chi->seconds),
                    TablePrinter::Fmt(chi_base / chi->seconds, 2),
                    TablePrinter::Fmt(AmdahlUpperBound(chi_p, threads), 2)});
      for (const MethodResult* run : {&*opt, &*chi}) {
        const bool is_opt = run == &*opt;
        bench::JsonObject row;
        row.Add("config", specs[d].name + "/" + run->method + "/t" +
                              std::to_string(threads))
            .Add("seconds", run->seconds)
            .Add("speedup", (is_opt ? opt_base : chi_base) / run->seconds, 3)
            .Add("amdahl_ub",
                 AmdahlUpperBound(is_opt ? opt_p : chi_p, threads), 3);
        report_out.AddRow(std::move(row));
      }
    }
    table.Print();
    std::printf("measured parallel fraction p: OPT=%.3f GraphChi=%.3f\n",
                opt_p, chi_p);
  }
  std::printf("Expected shape (paper Fig. 6/Table 5): OPT p>0.95, near-"
              "linear speedup; GraphChi p<0.75, saturating below 2.5x.\n"
              "(Real CPU speedups require a multi-core host; on 1-core CI "
              "only the I/O-overlap component shows.)\n");

  // Hub-split sweep (DODG bitmap hybrid): OPT on the skewed TWITTER
  // stand-in under the bitmap kernel at each split point, against the
  // merge-kernel baseline. Counts must match exactly; the bitmap.*
  // counters show how much work the hub path absorbed.
  {
    const IntersectKernel bitmap_kernel =
        IntersectKernelSupported(IntersectKernel::kBitmap)
            ? IntersectKernel::kBitmap
            : IntersectKernel::kBitmapScalar;
    auto store = MaterializeDataset(specs[2], ctx.get_env(), ctx.work_dir,
                                    bench::kPageSize);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    std::printf("\nHub-split sweep: %s, OPT, kernel=%s vs merge baseline\n",
                specs[2].name.c_str(), IntersectKernelName(bitmap_kernel));
    MethodConfig config;
    config.memory_pages = PagesForBufferPercent(**store, 15.0);
    config.num_threads = std::max(2u, ctx.threads);
    config.temp_dir = ctx.work_dir;
    auto baseline = RunMethod(Method::kOpt, store->get(), ctx.get_env(),
                              config);
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
      return 1;
    }
    TablePrinter table({"hub_split", "threshold", "hubs", "seconds",
                        "speedup vs merge", "bitmap calls"});
    table.AddRow({"merge", "-", "-", bench::Secs(baseline->seconds),
                  TablePrinter::Fmt(1.0, 2), "0"});
    {
      bench::JsonObject row;
      row.Add("config", "hub_sweep/merge")
          .Add("seconds", baseline->seconds)
          .Add("speedup_vs_merge", 1.0, 3);
      report_out.AddRow(std::move(row));
    }
    for (const char* split_text : {"off", "p90", "p99", "auto", "0"}) {
      MethodConfig sweep = config;
      sweep.kernel = bitmap_kernel;
      sweep.hub_split = *HubSplitSpec::Parse(split_text);
      auto result = RunMethod(Method::kOpt, store->get(), ctx.get_env(),
                              sweep);
      if (Status s = SetIntersectKernel(IntersectKernel::kAuto); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      if (result->triangles != baseline->triangles) {
        std::fprintf(stderr,
                     "hub_split=%s triangle mismatch: %llu vs %llu\n",
                     split_text,
                     static_cast<unsigned long long>(result->triangles),
                     static_cast<unsigned long long>(baseline->triangles));
        return 1;
      }
      const uint64_t bitmap_calls =
          result->intersect
              .calls[static_cast<int>(IntersectKernel::kBitmap)] +
          result->intersect
              .calls[static_cast<int>(IntersectKernel::kBitmapScalar)];
      table.AddRow(
          {split_text,
           result->hub_bitmaps_built > 0
               ? TablePrinter::Fmt(uint64_t{result->hub_degree_threshold})
               : "-",
           TablePrinter::Fmt(result->hub_bitmaps_built),
           bench::Secs(result->seconds),
           TablePrinter::Fmt(baseline->seconds / result->seconds, 2),
           TablePrinter::Fmt(bitmap_calls)});
      bench::PrintKernelCounters(split_text, result->intersect,
                                 result->seconds);
      bench::JsonObject row;
      row.Add("config", std::string("hub_sweep/") + split_text)
          .Add("seconds", result->seconds)
          .Add("speedup_vs_merge", baseline->seconds / result->seconds, 3)
          .Add("bitmap_calls", bitmap_calls)
          .Add("hub_bitmaps_built", result->hub_bitmaps_built)
          .Add("hub_degree_threshold",
               uint64_t{result->hub_degree_threshold});
      report_out.AddRow(std::move(row));
    }
    table.Print();
    std::printf("Counts verified equal across every split point.\n");
  }
  std::printf("\nJSON:\n%s", report_out.Render().c_str());
  return report_out.MaybeWrite(ctx) ? 0 : 1;
}
