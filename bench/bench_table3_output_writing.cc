// Table 3: output writing times of triangulation methods (sec). Runs
// OPT_serial, MGT, and CC-Seq in full *listing* mode with the nested
// representation streamed through the asynchronous ListingSink, and
// reports the elapsed-time delta versus counting-only runs — the
// output-writing cost the paper isolates in §5.2.
#include "bench_common.h"

#include "baselines/cc.h"
#include "baselines/mgt.h"
#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "util/stopwatch.h"

using namespace opt;

namespace {

struct ListingRun {
  double counting_seconds = 0;
  double listing_seconds = 0;
  uint64_t bytes = 0;
  uint64_t triangles = 0;
};

template <typename RunFn>
ListingRun Measure(Env* env, const std::string& out_path, bool async_write,
                   RunFn&& run) {
  ListingRun result;
  {
    CountingSink counter;
    Stopwatch watch;
    run(&counter);
    result.counting_seconds = watch.ElapsedSeconds();
    result.triangles = counter.count();
  }
  {
    // OPT overlaps output writing (async sink); the competitors use the
    // synchronous bulk-write path, exactly as the paper's §5.2 setup.
    ListingSink listing(env, out_path, /*flush_threshold=*/64 << 10,
                        async_write);
    Stopwatch watch;
    run(&listing);
    Status s = listing.Finish();
    if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
    result.listing_seconds = watch.ElapsedSeconds();
    result.bytes = listing.bytes_written();
  }
  (void)env->DeleteFile(out_path);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Table 3",
                "Output writing times (sec): full triangle listing with "
                "the nested representation; delta = listing - counting");

  TablePrinter table({"method", "dataset", "count-only (s)",
                      "with output (s)", "write delta (s)", "output MB"});
  auto specs = PaperDatasets(ctx.scale_shift);
  // LJ/ORKUT/TWITTER/UK as in the paper (YAHOO excluded there too).
  for (size_t d = 0; d < 4; ++d) {
    auto store = MaterializeDataset(specs[d], ctx.get_env(), ctx.work_dir,
                                    bench::kPageSize);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    const uint32_t buffer = PagesForBufferPercent(**store, 15.0);
    const std::string out = ctx.work_dir + "/triangles.out";

    // OPT_serial.
    {
      OptOptions options;
      options.m_in = std::max(buffer / 2, (*store)->MaxRecordPages());
      options.m_ex = std::max(1u, buffer / 2);
      options.macro_overlap = false;
      options.thread_morphing = false;
      EdgeIteratorModel model;
      auto run = Measure(ctx.get_env(), out, /*async_write=*/true, [&](TriangleSink* sink) {
        OptRunner runner(store->get(), &model, options);
        Status s = runner.Run(sink, nullptr);
        if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
      });
      table.AddRow({"OPT_serial", specs[d].paper_name,
                    bench::Secs(run.counting_seconds),
                    bench::Secs(run.listing_seconds),
                    bench::Secs(run.listing_seconds - run.counting_seconds),
                    TablePrinter::Fmt(run.bytes / 1048576.0, 2)});
    }
    // MGT.
    {
      MgtOptions options;
      options.memory_pages = std::max(buffer, (*store)->MaxRecordPages());
      auto run = Measure(ctx.get_env(), out, /*async_write=*/false, [&](TriangleSink* sink) {
        Status s = RunMgt(store->get(), sink, options, nullptr);
        if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
      });
      table.AddRow({"MGT", specs[d].paper_name,
                    bench::Secs(run.counting_seconds),
                    bench::Secs(run.listing_seconds),
                    bench::Secs(run.listing_seconds - run.counting_seconds),
                    TablePrinter::Fmt(run.bytes / 1048576.0, 2)});
    }
    // CC-Seq.
    {
      CcOptions options;
      options.memory_pages = std::max(buffer, (*store)->MaxRecordPages());
      options.temp_dir = ctx.work_dir;
      auto run = Measure(ctx.get_env(), out, /*async_write=*/false, [&](TriangleSink* sink) {
        Status s =
            RunChuCheng(store->get(), ctx.get_env(), sink, options, nullptr);
        if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
      });
      table.AddRow({"CC-Seq", specs[d].paper_name,
                    bench::Secs(run.counting_seconds),
                    bench::Secs(run.listing_seconds),
                    bench::Secs(run.listing_seconds - run.counting_seconds),
                    TablePrinter::Fmt(run.bytes / 1048576.0, 2)});
    }
  }
  table.Print();
  std::printf("Expected shape (paper Table 3): OPT_serial writes fastest "
              "(overlapped async writes), MGT next, CC-Seq slowest.\n");
  return 0;
}
