// Figure 7b: elapsed time on R-MAT graphs as density |E|/|V| sweeps
// {4, 8, 16, 32} at fixed |V|. Paper shape: all methods grow with
// density; OPT_serial 1.3-2x faster than MGT; OPT's speed-up improves
// with density (more CPU work to overlap).
#include "bench_common.h"

#include "gen/rmat.h"
#include "graph/reorder.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Figure 7b",
                "Elapsed time (s) vs density |E|/|V| (R-MAT, fixed |V|)");

  const uint32_t scale =
      static_cast<uint32_t>(std::max(8, 14 - ctx.scale_shift));
  TablePrinter table({"|E|/|V|", "OPT_serial", "MGT",
                      "GraphChi-Tri_serial", "OPT", "GraphChi-Tri"});
  for (uint32_t density : {4u, 8u, 16u, 32u}) {
    RmatOptions gen;
    gen.scale = scale;
    gen.edge_factor = density;
    gen.seed = 11;
    CSRGraph graph = DegreeOrder(GenerateRmat(gen)).graph;
    GraphStoreOptions gso;
    gso.page_size = bench::kPageSize;
    const std::string base = ctx.work_dir + "/fig7b";
    if (Status s = GraphStore::Create(graph, ctx.get_env(), base, gso);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    auto store = GraphStore::Open(ctx.get_env(), base);
    if (!store.ok()) return 1;

    std::vector<std::string> row{TablePrinter::Fmt(uint64_t{density})};
    uint64_t expected = 0;
    for (Method method :
         {Method::kOptSerial, Method::kMgt, Method::kGraphChiTriSerial,
          Method::kOpt, Method::kGraphChiTri}) {
      MethodConfig config;
      config.memory_pages = PagesForBufferPercent(**store, 15.0);
      config.num_threads = ctx.threads;
      config.temp_dir = ctx.work_dir;
      auto result = RunMethod(method, store->get(), ctx.get_env(), config);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      if (expected == 0) expected = result->triangles;
      if (result->triangles != expected) {
        std::fprintf(stderr, "COUNT MISMATCH for %s\n", MethodName(method));
        return 1;
      }
      row.push_back(bench::Secs(result->seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("Expected shape (paper Fig. 7b): OPT_serial 1.3-2x faster "
              "than MGT at every density; OPT fastest.\n");
  return 0;
}
