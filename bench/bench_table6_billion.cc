// Table 6: elapsed time on the billion-vertex YAHOO graph. The YAHOO
// stand-in is the largest, sparsest dataset in the suite (DESIGN.md §3);
// --scale_shift 0 makes it the biggest graph this harness generates.
// Paper shape: OPT_serial ~2x faster than MGT and ~5x faster than
// GraphChi-Tri_serial; parallel OPT widens the gap (~31x vs GraphChi).
#include "bench_common.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Table 6",
                "Elapsed time (s) on the YAHOO stand-in (largest, "
                "sparsest dataset; buffer = 10% of graph)");

  auto specs = PaperDatasets(ctx.scale_shift);
  auto store = MaterializeDataset(specs[4] /*YAHOO*/, ctx.get_env(),
                                  ctx.work_dir, bench::kPageSize);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %u pages, %u vertices, %llu directed edges\n",
              (*store)->num_pages(), (*store)->num_vertices(),
              static_cast<unsigned long long>(
                  (*store)->num_directed_edges()));

  TablePrinter table({"method", "elapsed (s)", "triangles", "pages read"});
  const Method methods[] = {Method::kOptSerial, Method::kMgt,
                            Method::kGraphChiTriSerial, Method::kOpt,
                            Method::kGraphChiTri};
  uint64_t expected = 0;
  for (Method method : methods) {
    MethodConfig config;
    config.memory_pages = PagesForBufferPercent(**store, 10.0);
    config.num_threads = ctx.threads;
    config.temp_dir = ctx.work_dir;
    auto result = RunMethod(method, store->get(), ctx.get_env(), config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", MethodName(method),
                   result.status().ToString().c_str());
      return 1;
    }
    if (expected == 0) expected = result->triangles;
    if (result->triangles != expected) {
      std::fprintf(stderr, "COUNT MISMATCH for %s\n", MethodName(method));
      return 1;
    }
    table.AddRow({result->method, bench::Secs(result->seconds),
                  TablePrinter::Fmt(result->triangles),
                  TablePrinter::Fmt(result->pages_read)});
  }
  table.Print();
  std::printf("Expected shape (paper Table 6): OPT_serial ~2x faster than "
              "MGT, ~5x faster than GraphChi-Tri_serial; OPT fastest.\n");
  return 0;
}
