// Sharded-serving throughput: closed-loop clients issuing COUNT queries
// through opt_router's fan-out path while the shard count sweeps
// {1, 2, 4} and the router's worker pool sweeps {4, 8}. Every shard is
// a real spawned process (this binary re-execs itself as the server
// child, like tests/test_shard.cc) serving its partition slice under a
// ThrottledEnv, so page reads cost emulated FlashSSD latency and the
// external-memory cost model decides the outcome: a COUNT over P pages
// with an m-page budget costs ~P^2/m page reads, so four shards of
// ~P/4 pages each fan out to ~P^2/4m reads total — and the throttled
// sleeps overlap across the shard processes, which is where the
// multi-process speedup comes from even on one core.
//
// Every merged answer is checked against the in-memory truth and must
// arrive with partial_shards == 0; any mismatch or error fails the run.
// One JSON line per configuration on stdout (prefix "JSON ") with
// speedup_vs_single relative to the 1-shard row at the same router
// worker count; --json_out writes the same objects as a JSON array for
// CI artifacts (committed snapshot: BENCH_shard.json).
//
//   bench_shard_throughput [--clients N] [--queries_per_client N]
//       [--pages N] [--shard_page_size N] [--json_out PATH]
//       + the common flags (bench_common.h)
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "baselines/inmemory.h"
#include "gen/rmat.h"
#include "service/client.h"
#include "service/graph_registry.h"
#include "service/query_scheduler.h"
#include "service/server.h"
#include "shard/router.h"
#include "shard/shard_plan.h"
#include "shard/shard_set.h"
#include "util/histogram.h"
#include "util/stopwatch.h"

using namespace opt;
using namespace opt::bench;

namespace {

std::string SelfExe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  buf[n > 0 ? n : 0] = '\0';
  return buf;
}

/// Minimal opt_server clone run when this binary re-execs itself as a
/// shard child (same recipe as tests/test_shard.cc, plus a ThrottledEnv
/// so the child's page reads cost the emulated FlashSSD latency).
int RunShardServerChild(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }
  static ThrottledEnv env(
      Env::Default(),
      static_cast<uint32_t>(cl->GetInt("read_us", kDefaultReadMicros)),
      static_cast<uint32_t>(cl->GetInt("write_us", kDefaultWriteMicros)));
  RegistryOptions registry_options;
  // A pool smaller than the store keeps reads going to the throttled
  // env instead of being absorbed by page caching — the whole point of
  // the bench is the external-memory pass cost.
  registry_options.min_pool_frames =
      static_cast<uint32_t>(cl->GetInt("pool_frames", 64));
  GraphRegistry registry(&env, registry_options);
  SchedulerOptions scheduler_options;
  scheduler_options.workers =
      static_cast<uint32_t>(cl->GetInt("workers", 2));
  scheduler_options.default_memory_pages =
      static_cast<uint32_t>(cl->GetInt("default_pages", 64));
  scheduler_options.enable_result_cache = !cl->GetBool("no_cache", false);
  QueryScheduler scheduler(&registry, scheduler_options);
  const std::string spec = cl->GetString("graph");
  const size_t eq = spec.find('=');
  if (eq == std::string::npos) {
    std::fprintf(stderr, "need --graph name=/path\n");
    return 2;
  }
  if (Status s =
          scheduler.LoadGraph(spec.substr(0, eq), spec.substr(eq + 1));
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  OptServer server(&scheduler);
  Status status =
      server.ListenTcp(static_cast<uint16_t>(cl->GetInt("port", 0)));
  if (status.ok()) status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", server.bound_port());
  std::fflush(stdout);
  for (;;) ::pause();  // the supervisor's SIGTERM ends us
}

struct RunResult {
  double seconds = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t partials = 0;
  double total_latency = 0;
  HistogramSnapshot latency_us;
  uint64_t replicated_bytes = 0;
  uint64_t ghost_triangles = 0;
  uint32_t max_shard_pages = 0;
};

RunResult RunConfig(const CSRGraph& g, uint64_t truth,
                    const std::string& prefix, uint32_t shards,
                    uint32_t router_workers, int clients,
                    int queries_per_client, uint32_t pages,
                    uint32_t shard_page_size, uint32_t read_us,
                    uint32_t write_us) {
  RunResult result;
  ShardPlanOptions plan_options;
  plan_options.num_shards = shards;
  plan_options.page_size = shard_page_size;
  auto manifest = PartitionGraph(g, Env::Default(), "g", prefix,
                                 plan_options);
  if (!manifest.ok()) {
    std::fprintf(stderr, "partition: %s\n",
                 manifest.status().ToString().c_str());
    std::exit(1);
  }
  result.replicated_bytes = manifest->replicated_bytes();
  result.ghost_triangles = manifest->ghost_triangles_total();
  for (const ShardInfo& shard : manifest->shards) {
    result.max_shard_pages =
        std::max(result.max_shard_pages, shard.num_pages);
  }

  ShardSetOptions set_options;
  set_options.command = {SelfExe(), "--shard-server-child"};
  set_options.extra_args = {
      "--no_cache",         "--workers",
      "2",                  "--default_pages",
      std::to_string(pages + 8),
      "--pool_frames",      std::to_string(pages * 3),
      "--read_us",          std::to_string(read_us),
      "--write_us",         std::to_string(write_us)};
  ShardSet shard_set(*manifest, set_options);
  if (Status s = shard_set.Spawn(); !s.ok()) {
    std::fprintf(stderr, "spawn: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  if (!shard_set.WaitHealthy(20000)) {
    std::fprintf(stderr, "shards never became healthy\n");
    std::exit(1);
  }
  RouterOptions router_options;
  router_options.workers = router_workers;
  router_options.shard_deadline_ms = 60000;
  QueryRouter router(&shard_set, router_options);
  Status status = router.ListenTcp(0);
  if (status.ok()) status = router.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "router: %s\n", status.ToString().c_str());
    std::exit(1);
  }

  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> partials{0};
  std::vector<double> latencies(clients, 0.0);
  std::vector<Histogram> client_hists(clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      OptClient client;
      if (!client.ConnectTcp("127.0.0.1", router.bound_port()).ok()) {
        errors.fetch_add(static_cast<uint64_t>(queries_per_client));
        return;
      }
      for (int q = 0; q < queries_per_client; ++q) {
        ClientQueryOptions options;
        // Nudge the budget per query so concurrent COUNTs never
        // coalesce server-side — every query pays the full pass cost.
        options.memory_pages =
            pages + static_cast<uint32_t>((c * queries_per_client + q) % 4);
        const auto q0 = std::chrono::steady_clock::now();
        auto answer = client.Count("g", options);
        const auto q1 = std::chrono::steady_clock::now();
        const double query_seconds =
            std::chrono::duration<double>(q1 - q0).count();
        latencies[c] += query_seconds;
        client_hists[c].Add(static_cast<uint64_t>(query_seconds * 1e6));
        if (!answer.ok() || answer->triangles != truth) {
          errors.fetch_add(1);
        } else if (answer->partial_shards != 0) {
          partials.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  router.Stop();
  shard_set.Stop();

  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.queries = static_cast<uint64_t>(clients) * queries_per_client;
  result.errors = errors.load();
  result.partials = partials.load();
  for (double latency : latencies) result.total_latency += latency;
  for (const Histogram& hist : client_hists) {
    result.latency_us.Merge(hist.Snapshot());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--shard-server-child") == 0) {
    return RunShardServerChild(argc, argv);
  }
  BenchContext ctx = MakeContext(argc, argv);
  auto cl = CommandLine::Parse(argc, argv);
  const int clients = static_cast<int>(cl->GetInt("clients", 2));
  const int queries_per_client =
      static_cast<int>(cl->GetInt("queries_per_client", 12));
  const uint32_t pages = static_cast<uint32_t>(cl->GetInt("pages", 8));
  const uint32_t shard_page_size =
      static_cast<uint32_t>(cl->GetInt("shard_page_size", 512));
  // Much higher default than the common 30µs: on a small CI machine the
  // serialized CPU work would otherwise swamp the overlapped I/O sleeps
  // that the multi-process speedup comes from (the emulated device is a
  // slow disk rather than the FlashSSD the other benches model).
  const uint32_t read_us =
      static_cast<uint32_t>(cl->GetInt("read_us", 500));
  const uint32_t write_us = static_cast<uint32_t>(
      cl->GetInt("write_us", kDefaultWriteMicros));

  Banner("shard_throughput",
         "Closed-loop COUNT clients against opt_router fanning out over "
         "{1,2,4} spawned shard servers; every merged answer checked "
         "against the in-memory truth.");

  RmatOptions rmat;
  rmat.scale = 12 - std::min(ctx.scale_shift, 3);
  rmat.edge_factor = 8;
  rmat.seed = 77;
  const CSRGraph g = GenerateRmat(rmat);
  const uint64_t truth = BruteForceTriangleCount(g);
  std::printf("graph: %u vertices, %llu edges, %llu triangles\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(truth));

  TablePrinter table({"shards", "workers", "qps", "mean_lat_ms", "p50_ms",
                      "p95_ms", "p99_ms", "speedup", "max_pages",
                      "repl_bytes", "ghosts", "errors"});
  bench::BenchReport report_out("shard_throughput");
  bool ok = true;
  int config = 0;
  double single_qps[2] = {0.0, 0.0};  // per router-worker column
  for (uint32_t shards : {1u, 2u, 4u}) {
    int column = 0;
    for (uint32_t workers : {4u, 8u}) {
      const std::string prefix = ctx.work_dir + "/shard_bench_" +
                                 std::to_string(config++);
      const RunResult r =
          RunConfig(g, truth, prefix, shards, workers, clients,
                    queries_per_client, pages, shard_page_size, read_us,
                    write_us);
      const double qps = r.seconds > 0 ? r.queries / r.seconds : 0.0;
      if (shards == 1) single_qps[column] = qps;
      const double speedup =
          single_qps[column] > 0 ? qps / single_qps[column] : 0.0;
      const double mean_latency_ms =
          r.queries > 0 ? r.total_latency / r.queries * 1e3 : 0.0;
      table.AddRow({std::to_string(shards), std::to_string(workers),
                    TablePrinter::Fmt(qps, 1),
                    TablePrinter::Fmt(mean_latency_ms, 2),
                    TablePrinter::Fmt(r.latency_us.P50() / 1e3, 2),
                    TablePrinter::Fmt(r.latency_us.P95() / 1e3, 2),
                    TablePrinter::Fmt(r.latency_us.P99() / 1e3, 2),
                    TablePrinter::Fmt(speedup, 2),
                    TablePrinter::Fmt(uint64_t{r.max_shard_pages}),
                    TablePrinter::Fmt(r.replicated_bytes),
                    TablePrinter::Fmt(r.ghost_triangles),
                    std::to_string(r.errors)});
      bench::JsonObject row;
      row.Add("experiment", "shard_throughput")
          .Add("shards", shards)
          .Add("router_workers", workers)
          .Add("clients", clients)
          .Add("queries", r.queries)
          .Add("qps", qps, 2)
          .Add("mean_latency_ms", mean_latency_ms, 3)
          .Add("p50_latency_ms", r.latency_us.P50() / 1e3, 3)
          .Add("p95_latency_ms", r.latency_us.P95() / 1e3, 3)
          .Add("p99_latency_ms", r.latency_us.P99() / 1e3, 3)
          .Add("speedup_vs_single", speedup, 3)
          .Add("max_shard_pages", r.max_shard_pages)
          .Add("replicated_bytes", r.replicated_bytes)
          .Add("ghost_triangles", r.ghost_triangles)
          .Add("partials", r.partials)
          .Add("errors", r.errors);
      std::printf("JSON %s\n", row.Render().c_str());
      report_out.AddRow(row);
      if (r.errors != 0 || r.partials != 0) ok = false;
      ++column;
    }
  }
  table.Print();

  // Unified envelope (schema_version + host fingerprint) — the format
  // tools/bench_check gates on.
  if (!report_out.MaybeWrite(ctx)) ok = false;
  return ok ? 0 : 1;
}
