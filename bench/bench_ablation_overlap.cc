// Ablation: the two-level overlap machinery. Sweeps (a) the async-read
// queue depth (micro-level overlap: how much external I/O hides behind
// CPU), (b) the m_in : m_ex buffer split (the paper picks 50:50 "to
// maximize the buffering effect", §5.1), (c) the external load order,
// and (d) the sampled overlap profile + cost-model residual, emitted as
// machine-readable JSON (see --json_out) so CI can track the overlap
// fractions and the profiler's own overhead across commits.
#include "bench_common.h"

#include <fstream>

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "util/stopwatch.h"

using namespace opt;

namespace {

struct RunMetrics {
  double seconds = 0;
  uint64_t saved_pages = 0;
  OptRunStats stats;
};

struct RunConfig {
  uint32_t m_in = 0;
  uint32_t m_ex = 0;
  uint32_t queue_depth = 16;
  bool backward = true;
  bool macro_overlap = false;  // OPT_serial isolates the micro level
  bool thread_morphing = false;
  uint32_t num_threads = 1;
  bool profile = false;
  uint64_t profile_period_micros = 250;  // bench runs are short
};

Result<RunMetrics> RunOnce(GraphStore* store, const RunConfig& config) {
  OptOptions options;
  options.m_in = std::max(config.m_in, store->MaxRecordPages());
  options.m_ex = std::max(1u, config.m_ex);
  options.macro_overlap = config.macro_overlap;
  options.thread_morphing = config.thread_morphing;
  options.num_threads = config.num_threads;
  options.io_queue_depth = config.queue_depth;
  options.backward_external_order = config.backward;
  options.profile = config.profile;
  options.profile_period_micros = config.profile_period_micros;
  EdgeIteratorModel model;
  OptRunner runner(store, &model, options);
  CountingSink sink;
  OptRunStats stats;
  Stopwatch watch;
  OPT_RETURN_IF_ERROR(runner.Run(&sink, &stats));
  RunMetrics metrics;
  metrics.seconds = watch.ElapsedSeconds();
  metrics.saved_pages = stats.internal_cache_hits + stats.external_cache_hits;
  metrics.stats = stats;
  return metrics;
}

/// One profiled configuration as a unified-schema row (bench_common.h).
bench::JsonObject OverlapRow(const char* config, const RunMetrics& off,
                             const RunMetrics& on) {
  const OverlapReport& r = on.stats.overlap;
  const double overhead =
      off.seconds > 0 ? (on.seconds - off.seconds) / off.seconds : 0.0;
  bench::JsonObject row;
  row.Add("config", config)
      .Add("seconds", on.seconds)
      .Add("seconds_unprofiled", off.seconds)
      .Add("profiler_overhead_frac", overhead)
      .Add("samples", r.samples)
      .Add("micro_overlap", r.MicroOverlapFraction(), 4)
      .Add("macro_overlap", r.MacroOverlapFraction(), 4)
      .Add("stalled_samples", r.stalled_samples)
      .Add("morph_events", r.morph_events)
      .Add("cost_c_seconds_per_page", r.cost.c_seconds_per_page, 8)
      .Add("delta_in_pages", r.cost.delta_in_pages)
      .Add("delta_ex_pages", r.cost.delta_ex_pages)
      .Add("cost_ideal_seconds", r.cost.ideal_seconds)
      .Add("cost_predicted_seconds", r.cost.predicted_seconds)
      .Add("cost_measured_seconds", r.cost.measured_seconds)
      .Add("cost_residual_seconds", r.cost.residual_seconds);
  bench::AddPerfColumns(&row, on.stats.PerfTotal());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Ablation: overlap machinery",
                "(a) async queue depth (micro overlap), (b) internal/"
                "external buffer split — UK stand-in, 15% buffer");

  auto specs = PaperDatasets(ctx.scale_shift);
  auto store = MaterializeDataset(specs[3], ctx.get_env(), ctx.work_dir,
                                  bench::kPageSize);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  const uint32_t budget = PagesForBufferPercent(**store, 15.0);

  std::printf("\n(a) OPT_serial elapsed vs emulated SSD queue depth\n");
  TablePrinter depth_table({"queue depth", "elapsed (s)"});
  for (uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    RunConfig config;
    config.m_in = budget / 2;
    config.m_ex = budget / 2;
    config.queue_depth = depth;
    auto seconds = RunOnce(store->get(), config);
    if (!seconds.ok()) {
      std::fprintf(stderr, "%s\n", seconds.status().ToString().c_str());
      return 1;
    }
    depth_table.AddRow({TablePrinter::Fmt(uint64_t{depth}),
                        bench::Secs(seconds->seconds)});
  }
  depth_table.Print();
  std::printf("Expected: elapsed falls as depth grows (more external "
              "reads hidden behind CPU) and saturates once I/O is fully "
              "overlapped.\n");

  std::printf("\n(b) OPT_serial elapsed vs m_in share of the budget\n");
  TablePrinter split_table({"m_in : m_ex", "elapsed (s)"});
  for (uint32_t in_pct : {25u, 50u, 75u}) {
    RunConfig config;
    config.m_in = std::max(1u, budget * in_pct / 100);
    config.m_ex = std::max(1u, budget - config.m_in);
    auto seconds = RunOnce(store->get(), config);
    if (!seconds.ok()) {
      std::fprintf(stderr, "%s\n", seconds.status().ToString().c_str());
      return 1;
    }
    split_table.AddRow({std::to_string(in_pct) + " : " +
                            std::to_string(100 - in_pct),
                        bench::Secs(seconds->seconds)});
  }
  split_table.Print();
  std::printf("Expected (§5.1): the even split is at or near the "
              "minimum — small m_in multiplies iterations, small m_ex "
              "throttles the external pipeline.\n");

  std::printf("\n(c) external load order: backward (paper) vs ascending\n");
  TablePrinter order_table({"order", "elapsed (s)", "saved page reads"});
  for (bool backward : {true, false}) {
    RunConfig config;
    config.m_in = budget / 2;
    config.m_ex = budget / 2;
    config.backward = backward;
    auto metrics = RunOnce(store->get(), config);
    if (!metrics.ok()) {
      std::fprintf(stderr, "%s\n", metrics.status().ToString().c_str());
      return 1;
    }
    order_table.AddRow({backward ? "backward (Algorithm 4)" : "ascending",
                        bench::Secs(metrics->seconds),
                        TablePrinter::Fmt(metrics->saved_pages)});
  }
  order_table.Print();
  std::printf("Expected (§3.2/§3.3): the backward order leaves the pages "
              "adjacent to the internal area hot in the pool, so the next "
              "iteration's fill saves reads (the Δin term).\n");

  std::printf("\n(d) sampled overlap profile + cost-model residual\n");
  struct NamedConfig {
    const char* name;
    bool macro_overlap;
    bool thread_morphing;
    uint32_t num_threads;
  };
  const NamedConfig profiled[] = {
      {"opt_serial", false, false, 1},
      {"opt_full", true, true, std::max(2u, ctx.threads)},
  };
  TablePrinter overlap_table({"config", "elapsed (s)", "micro %", "macro %",
                              "morphs", "residual (s)", "overhead %"});
  bench::BenchReport report_out("ablation_overlap");
  for (const NamedConfig& named : profiled) {
    RunConfig config;
    config.m_in = budget / 2;
    config.m_ex = budget / 2;
    config.macro_overlap = named.macro_overlap;
    config.thread_morphing = named.thread_morphing;
    config.num_threads = named.num_threads;
    // Best-of-3 per variant: single runs are ~100 ms here and scheduler
    // noise swamps the profiler's real cost; the min-vs-min delta is
    // what actually measures the sampler.
    auto best_of = [&](bool profile) -> Result<RunMetrics> {
      config.profile = profile;
      Result<RunMetrics> best = RunOnce(store->get(), config);
      for (int rep = 1; rep < 3 && best.ok(); ++rep) {
        Result<RunMetrics> next = RunOnce(store->get(), config);
        if (!next.ok()) return next;
        if (next->seconds < best->seconds) best = next;
      }
      return best;
    };
    auto off = best_of(false);  // unprofiled baseline
    auto on = best_of(true);
    if (!off.ok() || !on.ok()) {
      const Status& s = off.ok() ? on.status() : off.status();
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const OverlapReport& report = on->stats.overlap;
    overlap_table.AddRow(
        {named.name, bench::Secs(on->seconds),
         TablePrinter::Fmt(100.0 * report.MicroOverlapFraction(), 1),
         TablePrinter::Fmt(100.0 * report.MacroOverlapFraction(), 1),
         TablePrinter::Fmt(report.morph_events),
         bench::Secs(report.cost.residual_seconds),
         TablePrinter::Fmt(
             off->seconds > 0
                 ? 100.0 * (on->seconds - off->seconds) / off->seconds
                 : 0.0,
             1)});
    report_out.AddRow(OverlapRow(named.name, *off, *on));
  }
  overlap_table.Print();
  std::printf("Expected: micro overlap well above zero in both configs, "
              "macro overlap only in opt_full, and profiler overhead "
              "within noise (≤ ~2%%). The residual is measured − "
              "predicted where the prediction is the §3.3 *serial* cost "
              "Cost(ideal) + c(Δex − Δin): a negative residual is the "
              "overlap machinery beating the serial model — the win the "
              "paper claims — and a residual near zero means no "
              "overlap happened.\n");
  std::printf("\nJSON:\n%s", report_out.Render().c_str());
  // --json_out: the unified envelope (schema_version + host + PMU
  // columns), the format tools/bench_check gates on.
  return report_out.MaybeWrite(ctx) ? 0 : 1;
}
