// Ablation: the two-level overlap machinery. Sweeps (a) the async-read
// queue depth (micro-level overlap: how much external I/O hides behind
// CPU) and (b) the m_in : m_ex buffer split (the paper picks 50:50 "to
// maximize the buffering effect", §5.1).
#include "bench_common.h"

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "util/stopwatch.h"

using namespace opt;

namespace {

struct RunMetrics {
  double seconds = 0;
  uint64_t saved_pages = 0;
};

Result<RunMetrics> RunOnce(GraphStore* store, uint32_t m_in, uint32_t m_ex,
                           uint32_t queue_depth, bool backward = true) {
  OptOptions options;
  options.m_in = std::max(m_in, store->MaxRecordPages());
  options.m_ex = std::max(1u, m_ex);
  options.macro_overlap = false;  // OPT_serial isolates the micro level
  options.thread_morphing = false;
  options.io_queue_depth = queue_depth;
  options.backward_external_order = backward;
  EdgeIteratorModel model;
  OptRunner runner(store, &model, options);
  CountingSink sink;
  OptRunStats stats;
  Stopwatch watch;
  OPT_RETURN_IF_ERROR(runner.Run(&sink, &stats));
  RunMetrics metrics;
  metrics.seconds = watch.ElapsedSeconds();
  metrics.saved_pages = stats.internal_cache_hits + stats.external_cache_hits;
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Ablation: overlap machinery",
                "(a) async queue depth (micro overlap), (b) internal/"
                "external buffer split — UK stand-in, 15% buffer");

  auto specs = PaperDatasets(ctx.scale_shift);
  auto store = MaterializeDataset(specs[3], ctx.get_env(), ctx.work_dir,
                                  bench::kPageSize);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  const uint32_t budget = PagesForBufferPercent(**store, 15.0);

  std::printf("\n(a) OPT_serial elapsed vs emulated SSD queue depth\n");
  TablePrinter depth_table({"queue depth", "elapsed (s)"});
  for (uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    auto seconds = RunOnce(store->get(), budget / 2, budget / 2, depth);
    if (!seconds.ok()) {
      std::fprintf(stderr, "%s\n", seconds.status().ToString().c_str());
      return 1;
    }
    depth_table.AddRow({TablePrinter::Fmt(uint64_t{depth}),
                        bench::Secs(seconds->seconds)});
  }
  depth_table.Print();
  std::printf("Expected: elapsed falls as depth grows (more external "
              "reads hidden behind CPU) and saturates once I/O is fully "
              "overlapped.\n");

  std::printf("\n(b) OPT_serial elapsed vs m_in share of the budget\n");
  TablePrinter split_table({"m_in : m_ex", "elapsed (s)"});
  for (uint32_t in_pct : {25u, 50u, 75u}) {
    const uint32_t m_in = std::max(1u, budget * in_pct / 100);
    const uint32_t m_ex = std::max(1u, budget - m_in);
    auto seconds = RunOnce(store->get(), m_in, m_ex, 16);
    if (!seconds.ok()) {
      std::fprintf(stderr, "%s\n", seconds.status().ToString().c_str());
      return 1;
    }
    split_table.AddRow({std::to_string(in_pct) + " : " +
                            std::to_string(100 - in_pct),
                        bench::Secs(seconds->seconds)});
  }
  split_table.Print();
  std::printf("Expected (§5.1): the even split is at or near the "
              "minimum — small m_in multiplies iterations, small m_ex "
              "throttles the external pipeline.\n");

  std::printf("\n(c) external load order: backward (paper) vs ascending\n");
  TablePrinter order_table({"order", "elapsed (s)", "saved page reads"});
  for (bool backward : {true, false}) {
    auto metrics =
        RunOnce(store->get(), budget / 2, budget / 2, 16, backward);
    if (!metrics.ok()) {
      std::fprintf(stderr, "%s\n", metrics.status().ToString().c_str());
      return 1;
    }
    order_table.AddRow({backward ? "backward (Algorithm 4)" : "ascending",
                        bench::Secs(metrics->seconds),
                        TablePrinter::Fmt(metrics->saved_pages)});
  }
  order_table.Print();
  std::printf("Expected (§3.2/§3.3): the backward order leaves the pages "
              "adjacent to the internal area hot in the pool, so the next "
              "iteration's fill saves reads (the Δin term).\n");
  return 0;
}
