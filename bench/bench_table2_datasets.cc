// Table 2: basic statistics on the datasets. Prints |V|, |E|, and the
// exact triangle count for each synthetic stand-in (DESIGN.md §3 maps
// each to its paper dataset).
#include "bench_common.h"

#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "graph/stats.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Table 2", "Basic statistics on the datasets (synthetic "
                           "stand-ins; see DESIGN.md for the mapping)");

  TablePrinter table({"dataset", "|V|", "|E|", "# of triangles",
                      "max deg", "avg deg"});
  for (const auto& spec : PaperDatasets(ctx.scale_shift)) {
    CSRGraph g = BuildDataset(spec);
    GraphStats stats = ComputeStats(g);
    CountingSink sink;
    EdgeIteratorInMemory(g, &sink, ctx.threads);
    table.AddRow({spec.name, TablePrinter::Fmt(uint64_t{stats.num_vertices}),
                  TablePrinter::Fmt(stats.num_edges),
                  TablePrinter::Fmt(sink.count()),
                  TablePrinter::Fmt(uint64_t{stats.max_degree}),
                  TablePrinter::Fmt(stats.avg_degree, 2)});
  }
  table.Print();
  return 0;
}
