// Figure 7a: elapsed time on R-MAT graphs as |V| grows with fixed
// density |E|/|V| = 16. Paper shape: OPT_serial < MGT (gap widening
// with |V|); parallel OPT fastest; GraphChi-Tri slowest with a flat,
// low speed-up.
#include "bench_common.h"

#include "gen/rmat.h"
#include "graph/reorder.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Figure 7a",
                "Elapsed time (s) vs number of vertices (R-MAT, "
                "|E|/|V|=16)");

  // Paper sweeps 16M..80M; scaled down by scale_shift.
  const uint32_t base_scale =
      static_cast<uint32_t>(std::max(8, 14 - ctx.scale_shift));
  TablePrinter table({"scale (|V|)", "OPT_serial", "MGT",
                      "GraphChi-Tri_serial", "OPT", "GraphChi-Tri"});
  for (uint32_t scale = base_scale; scale < base_scale + 3; ++scale) {
    RmatOptions gen;
    gen.scale = scale;
    gen.edge_factor = 16;
    gen.seed = 7;
    CSRGraph graph = DegreeOrder(GenerateRmat(gen)).graph;
    GraphStoreOptions gso;
    gso.page_size = bench::kPageSize;
    const std::string base = ctx.work_dir + "/fig7a";
    if (Status s = GraphStore::Create(graph, ctx.get_env(), base, gso);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    auto store = GraphStore::Open(ctx.get_env(), base);
    if (!store.ok()) return 1;

    std::vector<std::string> row{
        "2^" + std::to_string(scale) + " (" +
        std::to_string(graph.num_vertices()) + ")"};
    uint64_t expected = 0;
    for (Method method :
         {Method::kOptSerial, Method::kMgt, Method::kGraphChiTriSerial,
          Method::kOpt, Method::kGraphChiTri}) {
      MethodConfig config;
      config.memory_pages = PagesForBufferPercent(**store, 15.0);
      config.num_threads = ctx.threads;
      config.temp_dir = ctx.work_dir;
      auto result = RunMethod(method, store->get(), ctx.get_env(), config);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      if (expected == 0) expected = result->triangles;
      if (result->triangles != expected) {
        std::fprintf(stderr, "COUNT MISMATCH for %s\n", MethodName(method));
        return 1;
      }
      row.push_back(bench::Secs(result->seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("Expected shape (paper Fig. 7a): OPT_serial 1.5-1.7x faster "
              "than MGT, gap widening with |V|; OPT fastest overall.\n");
  return 0;
}
