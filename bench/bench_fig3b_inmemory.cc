// Figure 3b: relative elapsed time of the in-memory methods
// (VertexIterator≻, EdgeIterator≻, AYZ [2]) versus OPT_serial at a 15%
// buffer, all normalized to ideal (= EdgeIterator≻ + one graph scan).
// Paper shape: EI fastest; VI ~20% slower; AYZ slowest despite its
// better asymptotics; OPT_serial within a few % of ideal.
#include "bench_common.h"

#include "baselines/ayz.h"
#include "baselines/inmemory.h"
#include "core/ideal.h"
#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "util/stopwatch.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Figure 3b",
                "Relative elapsed time of in-memory methods and "
                "OPT_serial (1.0 = ideal; in-memory methods include the "
                "graph load time)");

  TablePrinter table({"dataset", "EdgeIter (rel)", "VertexIter (rel)",
                      "AYZ (rel)", "OPT_serial (rel)"});
  auto specs = PaperDatasets(ctx.scale_shift);
  for (size_t d = 0; d < 4; ++d) {
    CSRGraph graph;
    auto store = MaterializeDataset(specs[d], ctx.get_env(), ctx.work_dir,
                                    bench::kPageSize, &graph);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    EdgeIteratorModel model;
    IdealStats ideal;
    CountingSink ideal_sink;
    (void)RunIdeal(store->get(), model, &ideal_sink, 1, &ideal);
    const double base = ideal.elapsed_seconds;

    // In-memory methods pay the same one-scan load cost as ideal.
    const double load = ideal.load_seconds;
    double ei_s, vi_s, ayz_s;
    IntersectCounters ei_delta;
    {
      CountingSink sink;
      const IntersectCounters before = SnapshotIntersectCounters();
      Stopwatch w;
      EdgeIteratorInMemory(graph, &sink);
      ei_s = load + w.ElapsedSeconds();
      ei_delta = IntersectCounters::Delta(SnapshotIntersectCounters(), before);
    }
    {
      CountingSink sink;
      Stopwatch w;
      VertexIteratorInMemory(graph, &sink);
      vi_s = load + w.ElapsedSeconds();
    }
    {
      Stopwatch w;
      const uint64_t count = AyzTriangleCount(graph);
      ayz_s = load + w.ElapsedSeconds();
      if (count != ideal_sink.count()) {
        std::fprintf(stderr, "AYZ count mismatch\n");
        return 1;
      }
    }
    double opt_s;
    OptRunStats opt_stats;
    {
      OptOptions options;
      const uint32_t buffer = PagesForBufferPercent(**store, 15.0);
      options.m_in = std::max(buffer / 2, (*store)->MaxRecordPages());
      options.m_ex = std::max(1u, buffer / 2);
      options.macro_overlap = false;
      options.thread_morphing = false;
      options.kernel = ctx.kernel;
      OptRunner runner(store->get(), &model, options);
      CountingSink sink;
      Stopwatch w;
      (void)runner.Run(&sink, &opt_stats);
      opt_s = w.ElapsedSeconds();
    }
    table.AddRow({specs[d].paper_name, TablePrinter::Fmt(ei_s / base, 2),
                  TablePrinter::Fmt(vi_s / base, 2),
                  TablePrinter::Fmt(ayz_s / base, 2),
                  TablePrinter::Fmt(opt_s / base, 2)});
    std::printf("%s: per-kernel intersection throughput (see --kernel)\n",
                specs[d].paper_name.c_str());
    bench::PrintKernelCounters("EdgeIter", ei_delta, ei_s - load);
    bench::PrintKernelCounters("OPT_serial", opt_stats.intersect, opt_s);
  }
  table.Print();
  std::printf("Expected shape (paper Fig. 3b): EdgeIter ~1.0 < OPT_serial "
              "~1.0-1.1 < VertexIter ~1.2 << AYZ.\n");
  return 0;
}
