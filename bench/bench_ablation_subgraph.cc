// Extension bench: the subgraph-listing direction from the paper's
// conclusion — 4-clique counting and k-truss decomposition built on the
// same ordered-intersection machinery, with elapsed times relative to
// plain triangle listing.
#include "bench_common.h"

#include "analysis/clique4.h"
#include "analysis/ktruss.h"
#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "gen/holme_kim.h"
#include "graph/reorder.h"
#include "util/stopwatch.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Extension: subgraph listing beyond triangles",
                "Triangles vs 4-cliques vs k-truss on a clustered "
                "Holme-Kim graph");

  HolmeKimOptions gen;
  gen.num_vertices = static_cast<VertexId>(
      1u << std::max(8, 14 - ctx.scale_shift));
  gen.edges_per_vertex = 6;
  gen.triad_probability = 0.6;
  gen.seed = 29;
  CSRGraph g = DegreeOrder(GenerateHolmeKim(gen)).graph;

  TablePrinter table({"analysis", "result", "elapsed (s)"});
  {
    CountingSink sink;
    Stopwatch watch;
    EdgeIteratorInMemory(g, &sink, ctx.threads);
    table.AddRow({"triangle count",
                  TablePrinter::Fmt(sink.count()),
                  bench::Secs(watch.ElapsedSeconds())});
  }
  {
    Stopwatch watch;
    const uint64_t cliques = Count4Cliques(g, ctx.threads);
    table.AddRow({"4-clique count", TablePrinter::Fmt(cliques),
                  bench::Secs(watch.ElapsedSeconds())});
  }
  {
    Stopwatch watch;
    KTrussResult truss = KTrussDecomposition(g);
    table.AddRow({"k-truss (max k)",
                  TablePrinter::Fmt(uint64_t{truss.max_truss}),
                  bench::Secs(watch.ElapsedSeconds())});
  }
  table.Print();
  std::printf("Expected shape: 4-cliques cost a small multiple of "
              "triangles (one extra intersection level); truss peeling "
              "adds a support-update pass.\n");
  return 0;
}
