// Table 4: elapsed time of OPT and GraphChi-Tri using 1 and N CPU
// cores. Paper shape: OPT beats GraphChi-Tri at every dataset and
// thread count, by up to ~13x at 6 cores.
#include "bench_common.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Table 4",
                "Elapsed time (s) of OPT and GraphChi-Tri using 1 and N "
                "CPU threads (N = --threads)");

  TablePrinter table({"method", "LJ", "ORKUT", "TWITTER", "UK"});
  auto specs = PaperDatasets(ctx.scale_shift);
  std::vector<std::unique_ptr<GraphStore>> stores;
  for (size_t d = 0; d < 4; ++d) {
    auto store = MaterializeDataset(specs[d], ctx.get_env(), ctx.work_dir,
                                    bench::kPageSize);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    stores.push_back(std::move(store.value()));
  }

  std::vector<std::vector<double>> seconds(4);  // per method row
  const struct {
    Method method;
    uint32_t threads;
    const char* label;
  } rows[] = {
      {Method::kOptSerial, 1, "OPT_serial"},
      {Method::kGraphChiTriSerial, 1, "GraphChi-Tri_serial"},
      {Method::kOpt, 0, "OPT"},
      {Method::kGraphChiTri, 0, "GraphChi-Tri"},
  };
  bench::BenchReport report_out("table4_parallel");
  for (size_t r = 0; r < 4; ++r) {
    std::vector<std::string> row{rows[r].label};
    for (size_t d = 0; d < 4; ++d) {
      MethodConfig config;
      config.memory_pages = PagesForBufferPercent(*stores[d], 15.0);
      config.num_threads =
          rows[r].threads == 0 ? ctx.threads : rows[r].threads;
      config.temp_dir = ctx.work_dir;
      auto result =
          RunMethod(rows[r].method, stores[d].get(), ctx.get_env(), config);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      seconds[r].push_back(result->seconds);
      row.push_back(bench::Secs(result->seconds));
      bench::JsonObject json_row;
      json_row
          .Add("config",
               std::string(rows[r].label) + "/" + specs[d].name)
          .Add("threads", config.num_threads)
          .Add("seconds", result->seconds)
          .Add("triangles", result->triangles)
          .Add("pages_read", result->pages_read);
      report_out.AddRow(json_row);
    }
    table.AddRow(std::move(row));
  }
  // GraphChi-Tri / OPT ratio row (parallel).
  std::vector<std::string> ratio{"GraphChi-Tri/OPT"};
  for (size_t d = 0; d < 4; ++d) {
    ratio.push_back(TablePrinter::Fmt(seconds[3][d] / seconds[2][d], 2));
  }
  table.AddRow(std::move(ratio));
  table.Print();
  std::printf("Expected shape (paper Table 4): OPT < GraphChi-Tri "
              "everywhere; ratio up to ~13x at 6 cores.\n");
  std::printf("\nJSON:\n%s", report_out.Render().c_str());
  return report_out.MaybeWrite(ctx) ? 0 : 1;
}
