// Figure 4: thread-morphing effect. (a) Per-iteration elapsed time of
// the internal-triangulation role vs the external-triangulation role
// with and without morphing; (b) cumulative elapsed time of OPT with
// morphing, without morphing, and OPT_serial. Paper shape: without
// morphing one role idles each iteration; with morphing the roles
// balance and the cumulative time approaches OPT_serial / 2 on two
// cores.
#include "bench_common.h"

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"

using namespace opt;

namespace {

Result<OptRunStats> RunVariant(GraphStore* store, uint32_t buffer,
                               bool macro, bool morph, uint32_t threads) {
  OptOptions options;
  options.m_in = std::max(buffer / 2, store->MaxRecordPages());
  options.m_ex = std::max(1u, buffer / 2);
  options.macro_overlap = macro;
  options.thread_morphing = morph;
  options.num_threads = threads;
  EdgeIteratorModel model;
  OptRunner runner(store, &model, options);
  CountingSink sink;
  OptRunStats stats;
  OPT_RETURN_IF_ERROR(runner.Run(&sink, &stats));
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Figure 4",
                "Thread-morphing effect, UK stand-in (per-iteration role "
                "times and cumulative elapsed time)");

  auto specs = PaperDatasets(ctx.scale_shift);
  auto store = MaterializeDataset(specs[3] /*UK*/, ctx.get_env(),
                                  ctx.work_dir, bench::kPageSize);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  const uint32_t buffer = PagesForBufferPercent(**store, 15.0);

  auto no_morph = RunVariant(store->get(), buffer, true, false, 2);
  auto with_morph = RunVariant(store->get(), buffer, true, true, 2);
  auto serial = RunVariant(store->get(), buffer, false, false, 1);
  if (!no_morph.ok() || !with_morph.ok() || !serial.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  std::printf("\n(a) per-iteration CPU seconds by role (no morphing: the "
              "roles are imbalanced; morphing: balanced)\n");
  TablePrinter per_iter({"iter", "no-morph internal", "no-morph external",
                         "morph internal", "morph external",
                         "morph wall"});
  const size_t iters = std::min(no_morph->per_iteration.size(),
                                with_morph->per_iteration.size());
  for (size_t i = 0; i < iters; ++i) {
    const auto& nm = no_morph->per_iteration[i];
    const auto& wm = with_morph->per_iteration[i];
    per_iter.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(i + 1)),
                     bench::Secs(nm.internal_cpu_seconds),
                     bench::Secs(nm.external_cpu_seconds),
                     bench::Secs(wm.internal_cpu_seconds),
                     bench::Secs(wm.external_cpu_seconds),
                     bench::Secs(wm.overlap_seconds)});
  }
  per_iter.Print();

  std::printf("\n(b) cumulative elapsed time (s)\n");
  TablePrinter cumulative({"variant", "elapsed (s)", "vs OPT_serial"});
  const double base = serial->elapsed_seconds;
  cumulative.AddRow({"OPT_serial", bench::Secs(base), "1.00"});
  cumulative.AddRow({"OPT w/o morphing",
                     bench::Secs(no_morph->elapsed_seconds),
                     TablePrinter::Fmt(base / no_morph->elapsed_seconds, 2)});
  cumulative.AddRow({"OPT with morphing",
                     bench::Secs(with_morph->elapsed_seconds),
                     TablePrinter::Fmt(base / with_morph->elapsed_seconds,
                                       2)});
  cumulative.Print();
  std::printf("Expected shape (paper Fig. 4b): morphing ~2x over "
              "OPT_serial on 2 cores; without morphing only ~1.1-1.3x.\n"
              "(On a single-core CI machine the CPU-side gain collapses; "
              "the I/O-overlap gain remains.)\n");

  bench::BenchReport report_out("fig4_morphing");
  const struct {
    const char* config;
    const OptRunStats* stats;
  } json_rows[] = {{"opt_serial", &*serial},
                   {"opt_no_morph", &*no_morph},
                   {"opt_morph", &*with_morph}};
  for (const auto& jr : json_rows) {
    bench::JsonObject row;
    row.Add("config", jr.config)
        .Add("seconds", jr.stats->elapsed_seconds)
        .Add("speedup_vs_serial", base / jr.stats->elapsed_seconds, 3)
        .Add("morph_events", jr.stats->overlap.morph_events);
    bench::AddPerfColumns(&row, jr.stats->PerfTotal());
    report_out.AddRow(row);
  }
  std::printf("\nJSON:\n%s", report_out.Render().c_str());
  return report_out.MaybeWrite(ctx) ? 0 : 1;
}
