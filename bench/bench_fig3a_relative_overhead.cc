// Figure 3a: relative elapsed time of OPT_serial versus the ideal
// method while varying the memory buffer from 5% to 25% of the graph
// size. The paper's claim (§5.3): <= 7% overhead at the 15% elbow, and
// sometimes *negative* overhead thanks to the backward external-load
// buffering (Δin > Δex).
#include "bench_common.h"

#include "core/ideal.h"
#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "util/stopwatch.h"

using namespace opt;

int main(int argc, char** argv) {
  auto ctx = bench::MakeContext(argc, argv);
  bench::Banner("Figure 3a",
                "OPT_serial relative elapsed time vs buffer size "
                "(1.0 = ideal: one scan + in-memory edge-iterator)");

  TablePrinter table({"dataset", "buffer %", "ideal (s)", "OPT_serial (s)",
                      "relative", "overhead %", "saved pages (Δin)"});
  auto specs = PaperDatasets(ctx.scale_shift);
  for (size_t d = 0; d < 4; ++d) {  // LJ, ORKUT, TWITTER, UK
    auto store = MaterializeDataset(specs[d], ctx.get_env(), ctx.work_dir,
                                    bench::kPageSize);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    // Ideal: measured once per dataset (buffer-independent).
    EdgeIteratorModel model;
    IdealStats ideal;
    CountingSink ideal_sink;
    if (Status s = RunIdeal(store->get(), model, &ideal_sink, 1, &ideal);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    for (double percent : {5.0, 10.0, 15.0, 20.0, 25.0}) {
      const uint32_t buffer = PagesForBufferPercent(**store, percent);
      OptOptions options;
      options.m_in =
          std::max(buffer / 2, (*store)->MaxRecordPages());
      options.m_ex = std::max(1u, buffer / 2);
      options.macro_overlap = false;
      options.thread_morphing = false;
      OptRunner runner(store->get(), &model, options);
      CountingSink sink;
      OptRunStats stats;
      Stopwatch watch;
      if (Status s = runner.Run(&sink, &stats); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      const double opt_seconds = watch.ElapsedSeconds();
      const double relative = opt_seconds / ideal.elapsed_seconds;
      table.AddRow(
          {specs[d].paper_name, TablePrinter::Fmt(percent, 0),
           bench::Secs(ideal.elapsed_seconds), bench::Secs(opt_seconds),
           TablePrinter::Fmt(relative, 3),
           TablePrinter::Fmt(100.0 * (relative - 1.0), 1),
           TablePrinter::Fmt(stats.internal_cache_hits +
                             stats.external_cache_hits)});
      if (sink.count() != ideal_sink.count()) {
        std::fprintf(stderr, "COUNT MISMATCH on %s\n",
                     specs[d].paper_name.c_str());
        return 1;
      }
    }
  }
  table.Print();
  std::printf("Expected shape (paper Fig. 3a): relative time falls until "
              "~15%% buffer, then stabilizes near 1.0 (within ~7%%).\n");
  return 0;
}
