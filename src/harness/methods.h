// Uniform method-runner layer: every triangulation method in the repo
// behind one call, so benches and tests sweep them identically.
#ifndef OPT_HARNESS_METHODS_H_
#define OPT_HARNESS_METHODS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "graph/hub_bitmap.h"
#include "graph/intersect.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

enum class Method {
  kOpt,            // overlapped + morphing, num_threads workers
  kOptSerial,      // single thread, macro overlap off (OPT_serial)
  kOptNoMorph,     // overlapped but no thread morphing (Figure 4 ablation)
  kOptVertexIter,  // OPT with the vertex-iterator model
  kMgt,
  kCcSeq,
  kCcDs,
  kGraphChiTri,        // parallel
  kGraphChiTriSerial,  // execthreads = 1
  kIdeal,              // in-memory edge-iterator incl. load (the baseline)
};

const char* MethodName(Method method);

struct MethodConfig {
  /// Total memory budget in pages (the paper's m). OPT splits it evenly
  /// into m_in = m_ex = m/2 (§5.1).
  uint32_t memory_pages = 0;
  uint32_t num_threads = 2;
  uint32_t io_queue_depth = 16;
  std::string temp_dir = "/tmp";
  /// Intersection kernel ablation knob; unset keeps the process-wide
  /// dispatch table (auto = best CPU-supported). Applies to every
  /// method, since they all funnel through the Intersect entry points.
  std::optional<IntersectKernel> kernel;
  /// Hub/tail split for the bitmap kernels (`--hub_split`); only the
  /// OPT variants consult it, and only under a bitmap kernel. Unset
  /// falls back to the process-wide default (auto).
  std::optional<HubSplitSpec> hub_split;
};

struct MethodResult {
  std::string method;
  double seconds = 0;
  uint64_t triangles = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint32_t iterations = 0;
  /// Amdahl parallel fraction where the method reports one (else 0).
  double parallel_fraction = 0;
  /// Kernel the dispatch table ran during this invocation.
  IntersectKernel kernel_used = IntersectKernel::kScalar;
  /// Per-kernel intersection counters, measured across this run.
  IntersectCounters intersect;
  /// Hub routing (OPT variants under a bitmap kernel; zero otherwise).
  uint32_t hub_degree_threshold = 0;
  uint64_t hub_bitmaps_built = 0;
};

/// Runs `method` on `store`, counting triangles.
Result<MethodResult> RunMethod(Method method, GraphStore* store, Env* env,
                               const MethodConfig& config);

}  // namespace opt

#endif  // OPT_HARNESS_METHODS_H_
