// Synthetic stand-ins for the paper's datasets (Table 2). The real
// LJ/ORKUT/TWITTER/UK/YAHOO graphs are multi-GB downloads unavailable
// offline; these generators reproduce the *structural* contrasts that
// drive the evaluation — social-network skew (LJ/ORKUT), heavy-tailed
// hub structure at scale (TWITTER), a sparser web-like graph (UK), and a
// very sparse billion-vertex-class graph (YAHOO) — at a size scaled by
// `scale_shift`. See DESIGN.md §3 for the substitution rationale.
#ifndef OPT_HARNESS_DATASETS_H_
#define OPT_HARNESS_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "storage/env.h"
#include "storage/graph_store.h"

namespace opt {

struct DatasetSpec {
  std::string name;        // e.g. "LJ(synth)"
  std::string paper_name;  // e.g. "LJ"
  uint32_t scale;          // log2 |V| after applying the shift
  uint32_t edge_factor;
  double rmat_a, rmat_b, rmat_c;  // skew profile (d = 1-a-b-c)
  uint64_t seed;
};

/// The five stand-ins. `scale_shift` subtracts from each dataset's
/// default scale (larger shift = smaller graphs; default sizes suit CI).
std::vector<DatasetSpec> PaperDatasets(int scale_shift = 0);

/// Generates the graph for a spec with the degree-ordering heuristic
/// applied (as all paper experiments do; §5.1).
CSRGraph BuildDataset(const DatasetSpec& spec);

/// Generates, degree-orders, and materializes a dataset as a GraphStore
/// under `work_dir`. Returns the opened store.
Result<std::unique_ptr<GraphStore>> MaterializeDataset(
    const DatasetSpec& spec, Env* env, const std::string& work_dir,
    uint32_t page_size, CSRGraph* graph_out = nullptr);

/// Buffer budget in pages for "x% of the graph size" (the paper's
/// memory-buffer axis; §5.3/5.5).
uint32_t PagesForBufferPercent(const GraphStore& store, double percent);

}  // namespace opt

#endif  // OPT_HARNESS_DATASETS_H_
