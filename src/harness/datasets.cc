#include "harness/datasets.h"

#include <algorithm>

#include "gen/rmat.h"
#include "graph/reorder.h"

namespace opt {

std::vector<DatasetSpec> PaperDatasets(int scale_shift) {
  // Relative sizes mirror Table 2's ordering: LJ < ORKUT < TWITTER < UK
  // < YAHOO, with ORKUT denser than LJ, TWITTER/UK large and skewed, and
  // YAHOO huge but sparse (its triangle count is comparatively small —
  // §5.7 notes this).
  std::vector<DatasetSpec> specs = {
      // LJ has more vertices than ORKUT but fewer edges (Table 2).
      {"LJ(synth)", "LJ", 14, 14, 0.45, 0.15, 0.15, 101},
      {"ORKUT(synth)", "ORKUT", 13, 36, 0.45, 0.15, 0.15, 102},
      {"TWITTER(synth)", "TWITTER", 15, 18, 0.50, 0.15, 0.15, 103},
      {"UK(synth)", "UK", 16, 12, 0.55, 0.10, 0.10, 104},
      {"YAHOO(synth)", "YAHOO", 17, 5, 0.55, 0.15, 0.15, 105},
  };
  for (auto& spec : specs) {
    const int scale = static_cast<int>(spec.scale) - scale_shift;
    spec.scale = static_cast<uint32_t>(std::max(8, scale));
  }
  return specs;
}

CSRGraph BuildDataset(const DatasetSpec& spec) {
  RmatOptions options;
  options.scale = spec.scale;
  options.edge_factor = spec.edge_factor;
  options.a = spec.rmat_a;
  options.b = spec.rmat_b;
  options.c = spec.rmat_c;
  options.d = 1.0 - spec.rmat_a - spec.rmat_b - spec.rmat_c;
  options.seed = spec.seed;
  CSRGraph raw = GenerateRmat(options);
  // All paper experiments map ids with the degree heuristic (§5.1).
  return DegreeOrder(raw).graph;
}

Result<std::unique_ptr<GraphStore>> MaterializeDataset(
    const DatasetSpec& spec, Env* env, const std::string& work_dir,
    uint32_t page_size, CSRGraph* graph_out) {
  CSRGraph graph = BuildDataset(spec);
  const std::string base = work_dir + "/" + spec.paper_name;
  GraphStoreOptions options;
  options.page_size = page_size;
  OPT_RETURN_IF_ERROR(GraphStore::Create(graph, env, base, options));
  if (graph_out != nullptr) *graph_out = std::move(graph);
  return GraphStore::Open(env, base);
}

uint32_t PagesForBufferPercent(const GraphStore& store, double percent) {
  const double pages = store.num_pages() * percent / 100.0;
  return std::max(2u, static_cast<uint32_t>(pages));
}

}  // namespace opt
