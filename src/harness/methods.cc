#include "harness/methods.h"

#include <algorithm>

#include "baselines/cc.h"
#include "baselines/graphchi_tri.h"
#include "baselines/mgt.h"
#include "core/ideal.h"
#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "util/stopwatch.h"

namespace opt {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kOpt:
      return "OPT";
    case Method::kOptSerial:
      return "OPT_serial";
    case Method::kOptNoMorph:
      return "OPT(no-morph)";
    case Method::kOptVertexIter:
      return "OPT(vertex-iter)";
    case Method::kMgt:
      return "MGT";
    case Method::kCcSeq:
      return "CC-Seq";
    case Method::kCcDs:
      return "CC-DS";
    case Method::kGraphChiTri:
      return "GraphChi-Tri";
    case Method::kGraphChiTriSerial:
      return "GraphChi-Tri_serial";
    case Method::kIdeal:
      return "ideal";
  }
  return "?";
}

namespace {

Result<MethodResult> RunOptVariant(Method method, GraphStore* store,
                                   const MethodConfig& config) {
  OptOptions options;
  const uint32_t half = std::max(1u, config.memory_pages / 2);
  options.m_in = std::max(half, store->MaxRecordPages());
  options.m_ex = half;
  options.io_queue_depth = config.io_queue_depth;
  options.num_threads = config.num_threads;
  options.kernel = config.kernel;
  options.hub_split = config.hub_split;
  switch (method) {
    case Method::kOptSerial:
      options.macro_overlap = false;
      options.thread_morphing = false;
      options.num_threads = 1;
      break;
    case Method::kOptNoMorph:
      options.thread_morphing = false;
      break;
    default:
      break;
  }
  EdgeIteratorModel ei;
  VertexIteratorModel vi;
  const IteratorModel* model =
      method == Method::kOptVertexIter
          ? static_cast<const IteratorModel*>(&vi)
          : static_cast<const IteratorModel*>(&ei);
  OptRunner runner(store, model, options);
  CountingSink sink;
  OptRunStats stats;
  Stopwatch watch;
  OPT_RETURN_IF_ERROR(runner.Run(&sink, &stats));
  MethodResult result;
  result.method = MethodName(method);
  result.seconds = watch.ElapsedSeconds();
  result.triangles = sink.count();
  result.pages_read = stats.internal_pages_read + stats.external_pages_read;
  result.iterations = stats.iterations;
  result.parallel_fraction = stats.ParallelFraction();
  result.hub_degree_threshold = stats.hub_degree_threshold;
  result.hub_bitmaps_built = stats.hub_bitmaps_built;
  return result;
}

Result<MethodResult> RunMethodImpl(Method method, GraphStore* store, Env* env,
                                   const MethodConfig& config) {
  MethodResult result;
  result.method = MethodName(method);
  Stopwatch watch;
  switch (method) {
    case Method::kOpt:
    case Method::kOptSerial:
    case Method::kOptNoMorph:
    case Method::kOptVertexIter:
      return RunOptVariant(method, store, config);

    case Method::kMgt: {
      MgtOptions options;
      options.memory_pages =
          std::max(config.memory_pages, store->MaxRecordPages());
      CountingSink sink;
      MgtStats stats;
      OPT_RETURN_IF_ERROR(RunMgt(store, &sink, options, &stats));
      result.seconds = watch.ElapsedSeconds();
      result.triangles = sink.count();
      result.pages_read = stats.pages_read;
      result.iterations = stats.iterations;
      return result;
    }

    case Method::kCcSeq:
    case Method::kCcDs: {
      CcOptions options;
      options.memory_pages =
          std::max(config.memory_pages, store->MaxRecordPages());
      options.temp_dir = config.temp_dir;
      options.dominating_set_order = (method == Method::kCcDs);
      CountingSink sink;
      CcStats stats;
      OPT_RETURN_IF_ERROR(RunChuCheng(store, env, &sink, options, &stats));
      result.seconds = watch.ElapsedSeconds();
      result.triangles = sink.count();
      result.pages_read = stats.pages_read;
      result.pages_written = stats.pages_written;
      result.iterations = stats.iterations;
      return result;
    }

    case Method::kGraphChiTri:
    case Method::kGraphChiTriSerial: {
      GraphChiTriOptions options;
      options.memory_pages =
          std::max(config.memory_pages, store->MaxRecordPages());
      options.temp_dir = config.temp_dir;
      options.num_threads =
          method == Method::kGraphChiTriSerial ? 1 : config.num_threads;
      CountingSink sink;
      GraphChiTriStats stats;
      OPT_RETURN_IF_ERROR(
          RunGraphChiTri(store, env, &sink, options, &stats));
      result.seconds = watch.ElapsedSeconds();
      result.triangles = sink.count();
      result.pages_read = stats.pages_read;
      result.pages_written = stats.pages_written;
      result.iterations = stats.iterations;
      result.parallel_fraction = stats.ParallelFraction();
      return result;
    }

    case Method::kIdeal: {
      EdgeIteratorModel model;
      CountingSink sink;
      IdealStats stats;
      OPT_RETURN_IF_ERROR(
          RunIdeal(store, model, &sink, config.num_threads, &stats));
      result.seconds = stats.elapsed_seconds;
      result.triangles = sink.count();
      result.pages_read = store->num_pages();
      result.iterations = 1;
      return result;
    }
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace

Result<MethodResult> RunMethod(Method method, GraphStore* store, Env* env,
                               const MethodConfig& config) {
  if (config.kernel.has_value()) {
    OPT_RETURN_IF_ERROR(SetIntersectKernel(*config.kernel));
  }
  const IntersectKernel kernel_used = ActiveIntersectKernel();
  const IntersectCounters before = SnapshotIntersectCounters();
  Result<MethodResult> result = RunMethodImpl(method, store, env, config);
  if (result.ok()) {
    result->kernel_used = kernel_used;
    result->intersect =
        IntersectCounters::Delta(SnapshotIntersectCounters(), before);
  }
  return result;
}

}  // namespace opt
