// Amdahl's-law helpers for the Table 5 analysis.
#ifndef OPT_HARNESS_AMDAHL_H_
#define OPT_HARNESS_AMDAHL_H_

namespace opt {

/// Upper-bound speed-up with parallel fraction p on c cores:
/// 1 / ((1-p) + p/c).
inline double AmdahlUpperBound(double parallel_fraction, unsigned cores) {
  if (cores == 0) return 0.0;
  const double p = parallel_fraction;
  return 1.0 / ((1.0 - p) + p / static_cast<double>(cores));
}

}  // namespace opt

#endif  // OPT_HARNESS_AMDAHL_H_
