// Sequential full-scan of a GraphStore's records with synchronous reads,
// assembling page-spanning adjacency lists. Used by the scan-based
// baselines (MGT, Chu–Cheng, GraphChi-Tri) and by tools.
#ifndef OPT_STORAGE_RECORD_SCANNER_H_
#define OPT_STORAGE_RECORD_SCANNER_H_

#include <functional>
#include <span>

#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

/// Calls `fn(vertex, neighbors)` for every record in id order, reading
/// pages [first_pid, last_pid] (inclusive; pass 0, num_pages-1 for all).
/// Records whose first segment lies outside the range are skipped;
/// records whose chain continues past last_pid are skipped too.
/// `pages_read` (optional) accumulates the number of page reads issued.
Status ScanRecords(
    const GraphStore& store, uint32_t first_pid, uint32_t last_pid,
    const std::function<void(VertexId, std::span<const VertexId>)>& fn,
    uint64_t* pages_read = nullptr, bool validate_pages = true);

/// Point lookup: reads n(v) into `*out` (sorted, possibly empty) by
/// scanning the page run [FirstPageOfVertex(v), LastPageOfVertex(v)].
/// Costs O(pages of v) synchronous reads — the streaming delta path
/// uses this to intersect endpoint neighborhoods per applied edge.
Status ReadAdjacency(const GraphStore& store, VertexId v,
                     std::vector<VertexId>* out,
                     uint64_t* pages_read = nullptr);

}  // namespace opt

#endif  // OPT_STORAGE_RECORD_SCANNER_H_
