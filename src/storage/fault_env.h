// Deterministic fault injection for the storage spine. A FaultPlan is a
// seeded, reproducible description of how the device should misbehave:
// which read locations fail (transiently or persistently), which reads
// come back torn (buffer tail garbage — caught by page CRCs), where
// latency spikes land, and at what byte the next build's writes tear
// (crash simulation). FaultInjectingEnv decorates any Env with a plan.
//
// Determinism is the point: fault decisions are a pure hash of
// (plan seed, file path, byte offset), never of wall-clock or thread
// interleaving, so a failing chaos/soak run reproduces from one line:
//
//   opt_server --fault-plan "seed=42,read_error_p=0.02,transient=1"
//
// Transient faults fail the first `transient` attempts at a location and
// then heal, which is what exercises the async-I/O retry path end to
// end; persistent faults (`transient=0`) never heal, which is what
// exercises MarkFailed propagation and the scheduler's typed
// Unavailable degradation.
#ifndef OPT_STORAGE_FAULT_ENV_H_
#define OPT_STORAGE_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "storage/env.h"
#include "util/status.h"

namespace opt {

constexpr uint64_t kNoWriteFault = ~0ull;

/// Seeded, deterministic fault schedule. Parse()/ToString() round-trip
/// through the comma-separated `k=v` spec the tools accept, so any
/// failing run prints a one-line repro.
struct FaultPlan {
  uint64_t seed = 1;

  /// Per-location read fault probability. A "location" is (path, offset);
  /// whether it faults is a pure function of (seed, path, offset).
  double read_error_p = 0;
  /// How many attempts fail at a faulted location before reads heal.
  /// 0 means persistent: every attempt fails forever.
  uint32_t transient = 1;
  /// Torn reads: the read reports OK but the tail of the buffer is
  /// deterministic garbage. Only meaningful for consumers that validate
  /// checksums (page CRCs); with validation off torn data flows through.
  double torn_read_p = 0;
  /// Latency spikes: the read sleeps `latency_us` first.
  double latency_p = 0;
  uint32_t latency_us = 2000;
  /// Global op trigger: read ops with index >= this fail persistently
  /// (the legacy FaultInjectionEnv knob, kept for sweep-style tests).
  int64_t fail_reads_after = -1;
  /// Crash simulation for builds: once this many bytes have been
  /// appended (across all writable files of the env), the write stream
  /// tears — the failing append lands only partially.
  uint64_t write_fail_after = kNoWriteFault;
  /// Torn-write mode: true reports OK for torn/lost appends (the
  /// process believes the data landed — a power-loss crash); false
  /// surfaces IOError from the tear onward (a clean device error).
  bool silent_write_loss = false;
  /// When non-empty, only files whose path contains this substring are
  /// faulted (e.g. ".pages" to spare metadata sidecars).
  std::string path_filter;

  /// Parses a spec like "seed=42,read_error_p=0.05,transient=1,
  /// torn_read_p=0.01,latency_p=0.1,latency_us=500,fail_reads_after=100,
  /// write_fail_after=8192,silent_write_loss=1,path_filter=.pages".
  /// Unknown keys are InvalidArgument.
  static Result<FaultPlan> Parse(const std::string& spec);

  /// One-line spec that Parse() accepts (default-valued keys omitted).
  std::string ToString() const;
};

/// Injection totals, readable while a workload runs.
struct FaultStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> injected_read_errors{0};
  std::atomic<uint64_t> injected_torn_reads{0};
  std::atomic<uint64_t> injected_latency{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> injected_write_errors{0};
  std::atomic<uint64_t> write_bytes_lost{0};
};

/// Env decorator applying a FaultPlan to every file it opens. Thread
/// safe; decisions are deterministic per (path, offset) regardless of
/// interleaving. Injection can be paused around setup phases with
/// set_enabled(false).
class FaultInjectingEnv : public Env {
 public:
  FaultInjectingEnv(Env* base, FaultPlan plan);
  ~FaultInjectingEnv() override;

  Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;

  const FaultPlan& plan() const { return plan_; }
  FaultStats& stats() { return stats_; }

  /// Pauses/resumes injection (setup/teardown phases of a test).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Forgets transient-attempt history, so every faulted location fails
  /// its first `transient` attempts again.
  void ResetAttempts();

  // Internal (shared with the file decorators).
  bool PathFaultable(const std::string& path) const;
  /// Attempt counter for a faulted location; returns the attempt index
  /// (1-based) for transient bookkeeping.
  uint32_t NextAttempt(uint64_t location_key);
  /// Claims the next global read-op index (for `fail_reads_after`).
  uint64_t NextReadOp() {
    return read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Advances the env-wide appended-byte counter (for
  /// `write_fail_after`); returns the offset before this append.
  uint64_t AdvanceAppended(uint64_t n) {
    return bytes_appended_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  Env* const base_;
  const FaultPlan plan_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> bytes_appended_{0};
  std::mutex attempts_mutex_;
  std::unordered_map<uint64_t, uint32_t> attempts_;
  FaultStats stats_;
};

}  // namespace opt

#endif  // OPT_STORAGE_FAULT_ENV_H_
