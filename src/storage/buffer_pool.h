// Fixed-size page buffer with pinning and LRU replacement. OPT splits the
// paper's memory buffer of m pages into an internal area (m_in) and an
// external area (m_ex); here both draw frames from one pool and the
// framework enforces the split through pin discipline and the L_now/
// L_later request throttling (Algorithm 4). Keeping evicted-area pages
// cached is what realizes the paper's Δin I/O saving: external pages
// loaded "backwards" at iteration i are looked up — and hit — by the
// internal load of iteration i+1.
#ifndef OPT_STORAGE_BUFFER_POOL_H_
#define OPT_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/status.h"

namespace opt {

struct Frame {
  char* data = nullptr;
  uint32_t pid = 0xFFFFFFFFu;
  uint32_t pins = 0;    // guarded by pool mutex
  bool valid = false;   // page content fully read
};

struct BufferPoolStats {
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> hits{0};       // saved page reads (paper's Δ I/O)
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> allocations{0};
  void Reset() {
    lookups = 0;
    hits = 0;
    evictions = 0;
    allocations = 0;
  }
};

class BufferPool {
 public:
  /// Allocates `num_frames` frames of `page_size` bytes each.
  BufferPool(uint32_t page_size, uint32_t num_frames);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// If `pid` is cached and valid, pins it and returns the frame
  /// (a Δ-I/O saving); otherwise returns nullptr.
  Frame* LookupAndPin(uint32_t pid);

  /// Allocates (evicting an unpinned frame if needed) a pinned, invalid
  /// frame for `pid`. The caller fills frame->data and calls MarkValid().
  /// Fails with ResourceExhausted when every frame is pinned.
  Result<Frame*> AllocateForRead(uint32_t pid);

  /// Marks a frame's content as complete; it becomes LookupAndPin-able.
  void MarkValid(Frame* frame);

  void Pin(Frame* frame);
  void Unpin(Frame* frame);

  /// Drops all cached, unpinned pages (between independent runs).
  void Clear();

  /// Grows the pool to at least `min_frames` frames (no-op if already
  /// large enough). Existing frame pointers remain valid.
  void EnsureFrames(uint32_t min_frames);

  uint32_t num_frames() const { return num_frames_; }
  uint32_t page_size() const { return page_size_; }
  BufferPoolStats& stats() { return stats_; }

 private:
  void TouchLru(uint32_t pid);

  const uint32_t page_size_;
  uint32_t num_frames_;
  std::vector<AlignedBuffer> arena_blocks_;
  std::deque<Frame> frames_;  // deque: stable addresses across growth

  std::mutex mutex_;
  std::unordered_map<uint32_t, uint32_t> page_table_;  // pid -> frame index
  std::list<uint32_t> lru_;                            // front = coldest pid
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> lru_pos_;
  std::vector<uint32_t> free_frames_;

  BufferPoolStats stats_;
};

}  // namespace opt

#endif  // OPT_STORAGE_BUFFER_POOL_H_
