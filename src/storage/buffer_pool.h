// Fixed-size page buffer with pinning and LRU replacement. OPT splits the
// paper's memory buffer of m pages into an internal area (m_in) and an
// external area (m_ex); here both draw frames from one pool and the
// framework enforces the split through pin discipline and the L_now/
// L_later request throttling (Algorithm 4). Keeping evicted-area pages
// cached is what realizes the paper's Δin I/O saving: external pages
// loaded "backwards" at iteration i are looked up — and hit — by the
// internal load of iteration i+1.
//
// Service mode: one pool may be shared by many concurrent OptRunner
// queries over many graphs. Pages are therefore keyed by a 64-bit
// PageKey = (owner, pid), where the owner tag namespaces each registered
// graph (GraphRegistry hands every graph a distinct owner). Concurrent
// queries racing on the same page coordinate through Fetch(): exactly
// one caller gets kMiss (and must read the page, then MarkValid or
// MarkFailed); everyone else gets kHit or kInFlight and may WaitValid().
#ifndef OPT_STORAGE_BUFFER_POOL_H_
#define OPT_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/status.h"

namespace opt {

/// (owner, pid) packed into one table key. Owner 0 is the conventional
/// tag for single-graph private pools.
using PageKey = uint64_t;

constexpr PageKey kInvalidPageKey = ~0ull;

constexpr PageKey MakePageKey(uint32_t owner, uint32_t pid) {
  return (static_cast<uint64_t>(owner) << 32) | pid;
}
constexpr uint32_t PageKeyOwner(PageKey key) {
  return static_cast<uint32_t>(key >> 32);
}
constexpr uint32_t PageKeyPid(PageKey key) {
  return static_cast<uint32_t>(key);
}

struct Frame {
  char* data = nullptr;
  PageKey key = kInvalidPageKey;
  uint32_t index = 0;   // position in the pool's frame table (stable)
  uint32_t pins = 0;    // guarded by pool mutex
  bool valid = false;   // page content fully read
  bool failed = false;  // owning read failed; waiters get an error
};

/// Plain-integer copy of the counters, safe to read, diff, and ship
/// across threads (the per-query stat scoping of the service layer).
struct PoolStatsSnapshot {
  uint64_t lookups = 0;
  uint64_t hits = 0;       // saved page reads (paper's Δ I/O)
  uint64_t evictions = 0;
  uint64_t allocations = 0;

  static PoolStatsSnapshot Delta(const PoolStatsSnapshot& after,
                                 const PoolStatsSnapshot& before) {
    return {after.lookups - before.lookups, after.hits - before.hits,
            after.evictions - before.evictions,
            after.allocations - before.allocations};
  }
};

struct BufferPoolStats {
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> allocations{0};

  PoolStatsSnapshot Snapshot() const {
    PoolStatsSnapshot s;
    s.lookups = lookups.load(std::memory_order_relaxed);
    s.hits = hits.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.allocations = allocations.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    lookups.store(0, std::memory_order_relaxed);
    hits.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    allocations.store(0, std::memory_order_relaxed);
  }
};

class BufferPool {
 public:
  enum class FetchOutcome {
    kHit,       // pinned and valid — read it directly
    kInFlight,  // pinned; another thread is loading it — WaitValid() first
    kMiss,      // pinned and empty — the caller owns the read
  };
  struct FetchResult {
    Frame* frame = nullptr;
    FetchOutcome outcome = FetchOutcome::kMiss;
  };

  /// Allocates `num_frames` frames of `page_size` bytes each.
  BufferPool(uint32_t page_size, uint32_t num_frames);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The one-call page acquisition protocol for (possibly shared) pools:
  /// always returns a pinned frame; the outcome says whose job the read
  /// is. kMiss obliges the caller to fill frame->data and MarkValid()
  /// (or MarkFailed() on error — never leave a miss unresolved, waiters
  /// block on it). Fails with ResourceExhausted when every frame is
  /// pinned.
  Result<FetchResult> Fetch(PageKey key);

  /// If `key` is cached and valid, pins it and returns the frame
  /// (a Δ-I/O saving); otherwise returns nullptr.
  Frame* LookupAndPin(PageKey key);

  /// Fetch() restricted to the kMiss case: allocates (evicting an
  /// unpinned frame if needed) a pinned, invalid frame for `key`, which
  /// must not already be present (Internal error otherwise — racy
  /// callers must use Fetch()).
  Result<Frame*> AllocateForRead(PageKey key);

  /// Marks a frame's content as complete; it becomes LookupAndPin-able
  /// and WaitValid() returns OK.
  void MarkValid(Frame* frame);

  /// Marks an owned read as failed: the page is dropped from the table
  /// (a later Fetch re-reads it) and current waiters get an IOError.
  /// The frame itself is reclaimed when its last pin goes away.
  void MarkFailed(Frame* frame);

  /// Blocks until `frame` (which the caller must hold a pin on) becomes
  /// valid or its read fails. `timeout_millis` bounds the wait: 0 waits
  /// forever; past the bound the caller gets Unavailable instead of
  /// hanging on a frame whose owning reader died before publishing
  /// MarkValid/MarkFailed. On timeout the page is dropped from the table
  /// (like MarkFailed) so later fetches re-read it instead of piling
  /// more waiters onto the wedged frame.
  Status WaitValid(Frame* frame, uint64_t timeout_millis = 0);

  void Pin(Frame* frame);
  void Unpin(Frame* frame);

  /// Drops all cached, unpinned pages (between independent runs).
  void Clear();

  /// Drops every unpinned page of `owner` (graph reload in the service
  /// registry). Pinned pages of the owner survive until unpinned and
  /// then age out through normal LRU.
  void DropOwner(uint32_t owner);

  /// Grows the pool to at least `min_frames` frames (no-op if already
  /// large enough). Existing frame pointers remain valid.
  void EnsureFrames(uint32_t min_frames);

  /// Capacity reservations for concurrent users of a shared pool: grows
  /// the pool so the sum of active reservations fits, guaranteeing each
  /// reserving query can keep that many frames pinned without starving
  /// the others. Frames are never freed — released capacity stays
  /// behind as cache.
  void ReserveFrames(uint32_t n);
  void ReleaseFrames(uint32_t n);

  uint32_t num_frames() const {
    return num_frames_.load(std::memory_order_relaxed);
  }
  uint32_t page_size() const { return page_size_; }
  BufferPoolStats& stats() { return stats_; }
  const BufferPoolStats& stats() const { return stats_; }

 private:
  void TouchLru(PageKey key);
  void EnsureFramesLocked(uint32_t min_frames);
  void DropPageLocked(PageKey key);
  /// Allocation half of Fetch/AllocateForRead; `key` must be absent.
  Result<Frame*> AllocateLocked(PageKey key);

  const uint32_t page_size_;
  std::atomic<uint32_t> num_frames_;
  std::vector<AlignedBuffer> arena_blocks_;
  std::deque<Frame> frames_;  // deque: stable addresses across growth

  std::mutex mutex_;
  std::condition_variable valid_cv_;
  std::unordered_map<PageKey, uint32_t> page_table_;  // key -> frame index
  std::list<PageKey> lru_;                            // front = coldest
  std::unordered_map<PageKey, std::list<PageKey>::iterator> lru_pos_;
  std::vector<uint32_t> free_frames_;
  uint32_t reserved_frames_ = 0;

  BufferPoolStats stats_;
};

}  // namespace opt

#endif  // OPT_STORAGE_BUFFER_POOL_H_
