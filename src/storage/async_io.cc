#include "storage/async_io.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>
#include <utility>

#include "storage/page.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace opt {

namespace {

struct IoCounters {
  Counter* requests = Metrics().GetCounter("io.requests");
  Counter* pages_read = Metrics().GetCounter("io.pages_read");
  Counter* read_errors = Metrics().GetCounter("io.read_errors");
  Counter* retries = Metrics().GetCounter("io.retries");
  Counter* giveups = Metrics().GetCounter("io.giveups");
  /// Pages submitted but not yet published — the overlap profiler
  /// samples this to detect reads in flight (micro overlap).
  Gauge* inflight = Metrics().GetGauge("io.inflight_depth");
  HistogramMetric* page_read_us = Metrics().GetHistogram("io.page_read_us");
};

/// Transient device classes worth retrying; anything else (OutOfRange,
/// InvalidArgument, ...) is a caller bug and fails immediately.
bool IsRetryable(const Status& status) {
  return status.IsIOError() || status.IsCorruption();
}

/// Deterministic jitter: reruns with the same fault plan back off
/// identically. Full-jitter over [backoff/2, backoff].
uint32_t JitteredBackoff(uint32_t backoff, uint32_t pid, uint32_t attempt) {
  uint64_t h = (static_cast<uint64_t>(pid) << 32) | attempt;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  const uint32_t half = backoff / 2;
  return half + static_cast<uint32_t>(h % (half + 1));
}

IoCounters& GlobalIoCounters() {
  static IoCounters counters;
  return counters;
}

std::string ReadArgsJson(const ReadRequest& request) {
  return "\"first_pid\":" + std::to_string(request.first_pid) +
         ",\"pages\":" + std::to_string(request.page_count);
}

}  // namespace

AsyncIoEngine::AsyncIoEngine(uint32_t num_workers, const IoRetryPolicy& retry)
    : retry_(retry) {
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncIoEngine::~AsyncIoEngine() {
  submissions_.Close();
  for (auto& w : workers_) w.join();
}

void AsyncIoEngine::Submit(ReadRequest request) {
  assert(request.file != nullptr);
  assert(request.frames.size() == request.page_count);
  assert(request.completion_queue != nullptr);
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  GlobalIoCounters().requests->Increment();
  if (CurrentTraceRecorder() != nullptr) {
    TraceInstant("io", "io.submit", ReadArgsJson(request));
  }
  // The engine holds its own pin on every pool-backed frame until the
  // worker has published it: even if every other pin drops first (a
  // WaitValid timeout evicts the page and the waiters/submitter unpin),
  // the frame cannot be recycled to another page while a worker still
  // holds a raw pointer into it.
  BufferPool* const pool = request.pool;
  const std::vector<Frame*> frames = pool != nullptr
                                         ? request.frames
                                         : std::vector<Frame*>();
  if (pool != nullptr) {
    for (Frame* f : frames) pool->Pin(f);
  }
  const uint32_t page_count = request.page_count;
  GlobalIoCounters().inflight->Add(page_count);
  if (!submissions_.Push(std::move(request))) {
    // Shutdown raced the submit: the read will never run, so publish
    // the failure (waiters must not hang on an unresolved miss) and
    // drop the engine pins taken above.
    GlobalIoCounters().inflight->Add(-static_cast<int64_t>(page_count));
    for (Frame* f : frames) {
      pool->MarkFailed(f);
      pool->Unpin(f);
    }
  }
}

Status AsyncIoEngine::ReadPageWithRetry(const ReadRequest& request,
                                        uint32_t index) {
  const uint32_t pid = request.first_pid + index;
  const auto start = std::chrono::steady_clock::now();
  uint32_t backoff = retry_.backoff_base_micros;
  Status status;
  for (uint32_t attempt = 1;; ++attempt) {
    status = request.file->ReadPage(pid, request.frames[index]->data);
    // Validation is part of the attempt: a torn read reports OK at the
    // device layer and only the page CRC catches it, so the reread has
    // to happen here where the data is still in hand.
    if (status.ok() && request.pool != nullptr && request.validate) {
      const uint32_t page_size = request.page_size != 0
                                     ? request.page_size
                                     : request.file->page_size();
      status = PageView(request.frames[index]->data, page_size).Validate(pid);
    }
    if (status.ok()) {
      const uint64_t micros =
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count());
      stats_.read_micros.fetch_add(micros, std::memory_order_relaxed);
      GlobalIoCounters().page_read_us->Record(micros);
      return status;
    }
    if (!IsRetryable(status)) {
      // Non-retryable errors (OutOfRange, InvalidArgument, ...) are
      // caller bugs, but they are still failed page reads: count them
      // in read_errors. No giveups — no retry budget was spent.
      stats_.read_errors.fetch_add(1, std::memory_order_relaxed);
      GlobalIoCounters().read_errors->Increment();
      if (request.flight != nullptr) {
        request.flight->Record(FlightEventType::kIoError, pid,
                               static_cast<uint64_t>(status.code()));
      }
      return status;
    }
    if (attempt >= retry_.max_attempts) break;
    const uint32_t sleep_us =
        JitteredBackoff(backoff, pid, attempt);
    if (retry_.op_deadline_micros != 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      if (static_cast<uint64_t>(elapsed) + sleep_us >=
          retry_.op_deadline_micros) {
        break;  // the next attempt would blow the per-op deadline
      }
    }
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    GlobalIoCounters().retries->Increment();
    if (request.flight != nullptr) {
      request.flight->Record(FlightEventType::kIoRetry, pid, attempt);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    backoff = std::min(backoff * 2, retry_.backoff_max_micros);
  }
  stats_.read_errors.fetch_add(1, std::memory_order_relaxed);
  stats_.giveups.fetch_add(1, std::memory_order_relaxed);
  GlobalIoCounters().read_errors->Increment();
  GlobalIoCounters().giveups->Increment();
  if (request.flight != nullptr) {
    request.flight->Record(FlightEventType::kIoGiveup, pid,
                           static_cast<uint64_t>(status.code()));
  }
  return status;
}

void AsyncIoEngine::WorkerLoop() {
  for (;;) {
    auto item = submissions_.Pop();
    if (!item.has_value()) return;  // engine shutting down
    ReadRequest request = std::move(*item);
    // The span covers the device read + validation + frame publication:
    // what "async-read complete" means to waiters.
    TraceSpan read_span("io", "io.read",
                        CurrentTraceRecorder() != nullptr
                            ? ReadArgsJson(request)
                            : std::string());
    Status status;
    uint32_t done = 0;
    for (uint32_t i = 0; i < request.page_count && status.ok(); ++i) {
      status = ReadPageWithRetry(request, i);
      if (status.ok()) {
        stats_.pages_read.fetch_add(1, std::memory_order_relaxed);
        GlobalIoCounters().pages_read->Increment();
        if (request.pool != nullptr) {
          request.pool->MarkValid(request.frames[i]);
        }
        done = i + 1;
      }
    }
    if (request.pool != nullptr && !status.ok()) {
      // Publish the failure so concurrent waiters on any unfinished
      // frame of this request wake with an error instead of hanging.
      for (uint32_t i = done; i < request.page_count; ++i) {
        request.pool->MarkFailed(request.frames[i]);
      }
    }
    if (request.pool != nullptr) {
      // Every frame is published; release the engine pins taken at
      // Submit. Frames abandoned by all other pinners (WaitValid
      // timeout eviction) reclaim here through Unpin's orphan path.
      for (uint32_t i = 0; i < request.page_count; ++i) {
        request.pool->Unpin(request.frames[i]);
      }
    }
    GlobalIoCounters().inflight->Add(
        -static_cast<int64_t>(request.page_count));
    auto callback = std::move(request.callback);
    request.completion_queue->Push(
        [callback = std::move(callback), status]() { callback(status); });
  }
}

}  // namespace opt
