#include "storage/async_io.h"

#include <cassert>
#include <utility>

#include "storage/page.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace opt {

namespace {

struct IoCounters {
  Counter* requests = Metrics().GetCounter("io.requests");
  Counter* pages_read = Metrics().GetCounter("io.pages_read");
  Counter* read_errors = Metrics().GetCounter("io.read_errors");
};

IoCounters& GlobalIoCounters() {
  static IoCounters counters;
  return counters;
}

std::string ReadArgsJson(const ReadRequest& request) {
  return "\"first_pid\":" + std::to_string(request.first_pid) +
         ",\"pages\":" + std::to_string(request.page_count);
}

}  // namespace

AsyncIoEngine::AsyncIoEngine(uint32_t num_workers) {
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncIoEngine::~AsyncIoEngine() {
  submissions_.Close();
  for (auto& w : workers_) w.join();
}

void AsyncIoEngine::Submit(ReadRequest request) {
  assert(request.file != nullptr);
  assert(request.frames.size() == request.page_count);
  assert(request.completion_queue != nullptr);
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  GlobalIoCounters().requests->Increment();
  if (CurrentTraceRecorder() != nullptr) {
    TraceInstant("io", "io.submit", ReadArgsJson(request));
  }
  submissions_.Push(std::move(request));
}

void AsyncIoEngine::WorkerLoop() {
  for (;;) {
    auto item = submissions_.Pop();
    if (!item.has_value()) return;  // engine shutting down
    ReadRequest request = std::move(*item);
    // The span covers the device read + validation + frame publication:
    // what "async-read complete" means to waiters.
    TraceSpan read_span("io", "io.read",
                        CurrentTraceRecorder() != nullptr
                            ? ReadArgsJson(request)
                            : std::string());
    Status status;
    uint32_t done = 0;
    for (uint32_t i = 0; i < request.page_count && status.ok(); ++i) {
      const uint32_t pid = request.first_pid + i;
      status = request.file->ReadPage(pid, request.frames[i]->data);
      if (status.ok()) {
        stats_.pages_read.fetch_add(1, std::memory_order_relaxed);
        GlobalIoCounters().pages_read->Increment();
        if (request.pool != nullptr) {
          if (request.validate) {
            const uint32_t page_size = request.page_size != 0
                                           ? request.page_size
                                           : request.file->page_size();
            status = PageView(request.frames[i]->data, page_size)
                         .Validate(pid);
          }
          if (status.ok()) {
            request.pool->MarkValid(request.frames[i]);
            done = i + 1;
          }
        } else {
          done = i + 1;
        }
      } else {
        stats_.read_errors.fetch_add(1, std::memory_order_relaxed);
        GlobalIoCounters().read_errors->Increment();
      }
    }
    if (request.pool != nullptr && !status.ok()) {
      // Publish the failure so concurrent waiters on any unfinished
      // frame of this request wake with an error instead of hanging.
      for (uint32_t i = done; i < request.page_count; ++i) {
        request.pool->MarkFailed(request.frames[i]);
      }
    }
    auto callback = std::move(request.callback);
    request.completion_queue->Push(
        [callback = std::move(callback), status]() { callback(status); });
  }
}

}  // namespace opt
