#include "storage/async_io.h"

#include <cassert>
#include <utility>

namespace opt {

AsyncIoEngine::AsyncIoEngine(uint32_t num_workers) {
  if (num_workers == 0) num_workers = 1;
  workers_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncIoEngine::~AsyncIoEngine() {
  submissions_.Close();
  for (auto& w : workers_) w.join();
}

void AsyncIoEngine::Submit(ReadRequest request) {
  assert(request.file != nullptr);
  assert(request.frames.size() == request.page_count);
  assert(request.completion_queue != nullptr);
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  submissions_.Push(std::move(request));
}

void AsyncIoEngine::WorkerLoop() {
  for (;;) {
    auto item = submissions_.Pop();
    if (!item.has_value()) return;  // engine shutting down
    ReadRequest request = std::move(*item);
    Status status;
    for (uint32_t i = 0; i < request.page_count && status.ok(); ++i) {
      status = request.file->ReadPage(request.first_pid + i,
                                      request.frames[i]->data);
      if (status.ok()) {
        stats_.pages_read.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.read_errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    auto callback = std::move(request.callback);
    request.completion_queue->Push(
        [callback = std::move(callback), status]() { callback(status); });
  }
}

}  // namespace opt
