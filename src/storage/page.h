// Slotted-page codec for the on-disk graph representation (paper §3.2:
// "OPT uses the slotted page structure which is widely used in database
// systems"). Each page stores a sequence of adjacency-list *segments*;
// an adjacency list larger than one page spans consecutive pages as a
// chain of segments.
//
// Page layout (all integers little-endian u32):
//   [0]  magic
//   [4]  page id
//   [8]  number of slots
//   [12] flags (bit 0: first segment continues a record from the
//        previous page)
//   [16] CRC-32C over the whole page with this field zeroed
//   [20.. ] segment data, densely packed
//   [end-4*num_slots .. end) slot directory: byte offset of each segment
//
// Segment layout:
//   vertex id | total degree | segment offset | segment count |
//   neighbors (segment count * u32, sorted ascending)
#ifndef OPT_STORAGE_PAGE_H_
#define OPT_STORAGE_PAGE_H_

#include <cstdint>
#include <span>

#include "graph/csr_graph.h"
#include "util/status.h"

namespace opt {

inline constexpr uint32_t kPageMagic = 0x4F505450u;  // "OPTP"
inline constexpr uint32_t kPageHeaderSize = 20;
inline constexpr uint32_t kSegmentHeaderSize = 16;
inline constexpr uint32_t kSlotSize = 4;
inline constexpr uint32_t kMinPageSize = 64;
inline constexpr uint32_t kDefaultPageSize = 4096;

/// One adjacency-list segment as read from a page.
struct Segment {
  VertexId vertex = kInvalidVertex;
  uint32_t total_degree = 0;  // full |n(vertex)| across all segments
  uint32_t offset = 0;        // index of neighbors[0] within the full list
  std::span<const VertexId> neighbors;

  bool IsFirstSegment() const { return offset == 0; }
  bool IsLastSegment() const {
    return offset + neighbors.size() == total_degree;
  }
};

/// Incrementally fills one page buffer. The caller owns the buffer
/// (page_size bytes).
class PageBuilder {
 public:
  PageBuilder(char* buffer, uint32_t page_size, uint32_t page_id);

  /// Bytes still available for one more segment's header + neighbors.
  uint32_t FreeNeighborCapacity() const;

  /// Appends a segment. Neighbor span must fit (see FreeNeighborCapacity).
  void AddSegment(VertexId vertex, uint32_t total_degree, uint32_t offset,
                  std::span<const VertexId> neighbors);

  uint32_t num_slots() const { return num_slots_; }

  /// Finalizes header + CRC. The buffer is then a valid page image.
  void Finish();

 private:
  char* buffer_;
  uint32_t page_size_;
  uint32_t page_id_;
  uint32_t num_slots_ = 0;
  uint32_t data_end_;  // next free byte for segment data
  bool continues_ = false;
};

/// Read-only view over a page image. Validates magic/CRC on demand.
class PageView {
 public:
  PageView(const char* data, uint32_t page_size)
      : data_(data), page_size_(page_size) {}

  /// Checks magic, page id, and CRC. Call once after a page is read.
  Status Validate(uint32_t expected_page_id) const;

  uint32_t page_id() const;
  uint32_t num_slots() const;
  /// True if the first segment continues an adjacency list begun on the
  /// previous page.
  bool first_segment_is_continuation() const;

  /// Returns the i-th segment. No bounds check beyond assert.
  Segment GetSegment(uint32_t i) const;

 private:
  const char* data_;
  uint32_t page_size_;
};

/// Computes the page CRC over a finished page image (crc field zeroed).
uint32_t ComputePageCrc(const char* data, uint32_t page_size);

}  // namespace opt

#endif  // OPT_STORAGE_PAGE_H_
