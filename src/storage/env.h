// File-system abstraction (RocksDB-style Env). Production code uses the
// POSIX implementation; tests use fault-injection wrappers, and the
// benchmark harness uses a throttled wrapper that emulates FlashSSD
// latency so I/O cost is visible at CI-scale graph sizes.
#ifndef OPT_STORAGE_ENV_H_
#define OPT_STORAGE_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace opt {

/// Positioned reads; thread safe (concurrent Read calls allowed).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads exactly n bytes at `offset` into `dst` (short reads at EOF
  /// return IOError).
  virtual Status Read(uint64_t offset, size_t n, char* dst) const = 0;
};

/// Sequential append-only writes.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(Slice data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

struct EnvIoStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> read_bytes{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> write_bytes{0};
  void Reset() {
    reads = 0;
    read_bytes = 0;
    writes = 0;
    write_bytes = 0;
  }
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Process-wide POSIX Env singleton.
  static Env* Default();
};

/// Wraps an Env and injects a fixed latency per read, emulating device
/// access cost; also counts I/O operations. `read_latency_micros` applies
/// to each RandomAccessFile::Read and `parallelism` caps how many injected
/// latencies may elapse concurrently (an SSD's internal queue depth).
class ThrottledEnv : public Env {
 public:
  ThrottledEnv(Env* base, uint32_t read_latency_micros,
               uint32_t write_latency_micros = 0);

  Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;

  EnvIoStats& stats() { return stats_; }

 private:
  Env* base_;
  uint32_t read_latency_micros_;
  uint32_t write_latency_micros_;
  EnvIoStats stats_;
};

/// Opens files with O_DIRECT, bypassing the OS page cache — the
/// paper's experimental setup ("we made OPT, MGT, CC-Seq, and CC-DS use
/// direct I/O", §5.1). Reads must be 4096-aligned in offset, length,
/// and destination pointer (use AlignedBuffer / the BufferPool, whose
/// frames are page-aligned). Filesystems without O_DIRECT support
/// (tmpfs) make OpenRandomAccess return NotSupported.
class DirectIoEnv : public Env {
 public:
  explicit DirectIoEnv(Env* fallback);

  Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;

 private:
  Env* fallback_;
};

/// Fault injection for tests: fails the k-th read (0-based) and every
/// read after `fail_after_reads` with IOError.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base);

  Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;

  /// Fails all reads once `n` reads have succeeded. Negative disables.
  void FailReadsAfter(int64_t n) { fail_after_.store(n); }
  uint64_t read_count() const { return reads_.load(); }

 private:
  Env* base_;
  std::atomic<int64_t> fail_after_{-1};
  std::atomic<uint64_t> reads_{0};
};

}  // namespace opt

#endif  // OPT_STORAGE_ENV_H_
