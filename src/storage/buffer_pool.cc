#include "storage/buffer_pool.h"

#include <cassert>
#include <chrono>

#include "util/metrics.h"

namespace opt {

namespace {

/// Process-wide fetch-outcome counters, aggregated across every pool in
/// the process (a server has exactly one shared pool; batch tools one
/// private pool per run). Hit rate = hits / lookups.
struct FetchCounters {
  Counter* lookups = Metrics().GetCounter("pool.fetch.lookups");
  Counter* hits = Metrics().GetCounter("pool.fetch.hits");
  Counter* inflight = Metrics().GetCounter("pool.fetch.inflight");
  Counter* misses = Metrics().GetCounter("pool.fetch.misses");
  Counter* failed_pages = Metrics().GetCounter("pool.failed_pages");
  Counter* wait_timeouts = Metrics().GetCounter("pool.wait_timeouts");
  /// Time actually spent blocked in WaitValid (immediate hits on
  /// already-valid frames record nothing): the stall the overlap
  /// profiler's io_wait role corresponds to.
  HistogramMetric* wait_us = Metrics().GetHistogram("pool.wait_us");
};

FetchCounters& GlobalFetchCounters() {
  static FetchCounters counters;
  return counters;
}

}  // namespace

BufferPool::BufferPool(uint32_t page_size, uint32_t num_frames)
    : page_size_(page_size), num_frames_(0) {
  EnsureFrames(num_frames);
}

BufferPool::~BufferPool() = default;

void BufferPool::EnsureFrames(uint32_t min_frames) {
  std::lock_guard<std::mutex> lock(mutex_);
  EnsureFramesLocked(min_frames);
}

void BufferPool::EnsureFramesLocked(uint32_t min_frames) {
  const uint32_t have = num_frames_.load(std::memory_order_relaxed);
  if (min_frames <= have) return;
  const uint32_t add = min_frames - have;
  // Frames are page-aligned so O_DIRECT file implementations can read
  // straight into them.
  arena_blocks_.emplace_back(static_cast<size_t>(page_size_) * add, 4096);
  char* block = arena_blocks_.back().data();
  for (uint32_t i = 0; i < add; ++i) {
    frames_.emplace_back();
    frames_.back().data = block + static_cast<size_t>(i) * page_size_;
    frames_.back().index = have + i;
    free_frames_.push_back(have + i);
  }
  num_frames_.store(min_frames, std::memory_order_relaxed);
}

void BufferPool::ReserveFrames(uint32_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  reserved_frames_ += n;
  EnsureFramesLocked(reserved_frames_);
}

void BufferPool::ReleaseFrames(uint32_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(reserved_frames_ >= n);
  reserved_frames_ -= n;
}

void BufferPool::TouchLru(PageKey key) {
  auto it = lru_pos_.find(key);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_back(key);
  lru_pos_[key] = std::prev(lru_.end());
}

void BufferPool::DropPageLocked(PageKey key) {
  auto pos = lru_pos_.find(key);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  page_table_.erase(key);
}

Frame* BufferPool::LookupAndPin(PageKey key) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  auto it = page_table_.find(key);
  if (it == page_table_.end()) return nullptr;
  Frame& frame = frames_[it->second];
  if (!frame.valid) return nullptr;  // read still in flight elsewhere
  ++frame.pins;
  TouchLru(key);
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  return &frame;
}

Result<Frame*> BufferPool::AllocateLocked(PageKey key) {
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  uint32_t frame_index;
  if (!free_frames_.empty()) {
    frame_index = free_frames_.back();
    free_frames_.pop_back();
  } else {
    // Evict the coldest unpinned page.
    bool found = false;
    for (auto lru_it = lru_.begin(); lru_it != lru_.end(); ++lru_it) {
      const PageKey victim_key = *lru_it;
      const uint32_t victim_index = page_table_.at(victim_key);
      if (frames_[victim_index].pins == 0) {
        lru_.erase(lru_it);
        lru_pos_.erase(victim_key);
        page_table_.erase(victim_key);
        frame_index = victim_index;
        found = true;
        stats_.evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    if (!found) {
      return Status::ResourceExhausted(
          "buffer pool: all " +
          std::to_string(num_frames_.load(std::memory_order_relaxed)) +
          " frames pinned");
    }
  }
  Frame& frame = frames_[frame_index];
  frame.key = key;
  frame.pins = 1;
  frame.valid = false;
  frame.failed = false;
  page_table_[key] = frame_index;
  TouchLru(key);
  return &frame;
}

Result<BufferPool::FetchResult> BufferPool::Fetch(PageKey key) {
  FetchCounters& counters = GlobalFetchCounters();
  counters.lookups->Increment();
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  auto it = page_table_.find(key);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pins;
    TouchLru(key);
    // Both count as a saved read: an in-flight page's I/O is already
    // charged to the reader that owns it.
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    if (frame.valid) {
      counters.hits->Increment();
      return FetchResult{&frame, FetchOutcome::kHit};
    }
    counters.inflight->Increment();
    return FetchResult{&frame, FetchOutcome::kInFlight};
  }
  counters.misses->Increment();
  OPT_ASSIGN_OR_RETURN(Frame * frame, AllocateLocked(key));
  return FetchResult{frame, FetchOutcome::kMiss};
}

Result<Frame*> BufferPool::AllocateForRead(PageKey key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (page_table_.count(key) != 0) {
    return Status::Internal("buffer pool: page already present; racy "
                            "callers must use Fetch()");
  }
  return AllocateLocked(key);
}

void BufferPool::MarkValid(Frame* frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    frame->valid = true;
  }
  valid_cv_.notify_all();
}

void BufferPool::MarkFailed(Frame* frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    frame->failed = true;
    auto it = page_table_.find(frame->key);
    if (it != page_table_.end() && it->second == frame->index) {
      DropPageLocked(frame->key);
    }
  }
  GlobalFetchCounters().failed_pages->Increment();
  valid_cv_.notify_all();
}

Status BufferPool::WaitValid(Frame* frame, uint64_t timeout_millis) {
  std::unique_lock<std::mutex> lock(mutex_);
  assert(frame->pins > 0);
  const auto ready = [&] { return frame->valid || frame->failed; };
  std::chrono::steady_clock::time_point wait_start;
  const bool blocked = !ready();
  if (blocked) wait_start = std::chrono::steady_clock::now();
  const auto record_wait = [&] {
    if (!blocked) return;
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - wait_start)
                            .count();
    GlobalFetchCounters().wait_us->Record(static_cast<uint64_t>(micros));
  };
  if (timeout_millis == 0) {
    valid_cv_.wait(lock, ready);
    record_wait();
  } else if (!valid_cv_.wait_for(
                 lock, std::chrono::milliseconds(timeout_millis), ready)) {
    record_wait();
    // The reader that owned this page never published a verdict (worker
    // died, deadlock upstream — or is merely slow). Evict the page so
    // the wedged frame stops attracting new waiters; the frame itself
    // is reclaimed by Unpin's orphan path once every current pin drops.
    // A merely-slow read stays safe because the AsyncIoEngine holds its
    // own pin on the frame until publication: the worst case of a
    // premature timeout is one duplicate read, never a recycled frame.
    const uint32_t pid = PageKeyPid(frame->key);
    auto it = page_table_.find(frame->key);
    if (it != page_table_.end() && it->second == frame->index) {
      DropPageLocked(frame->key);
    }
    GlobalFetchCounters().wait_timeouts->Increment();
    return Status::Unavailable(
        "page " + std::to_string(pid) + " load not published within " +
        std::to_string(timeout_millis) + "ms (reader died?)");
  } else {
    record_wait();
  }
  if (frame->failed) {
    return Status::IOError("page " + std::to_string(PageKeyPid(frame->key)) +
                           " failed to load in a concurrent query");
  }
  return Status::OK();
}

void BufferPool::Pin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++frame->pins;
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(frame->pins > 0);
  if (--frame->pins == 0) {
    // Reclaim orphans: frames dropped from the table while pinned
    // (MarkFailed, or a Clear/DropOwner racing pins) have no path back
    // to the free list except here.
    auto it = page_table_.find(frame->key);
    if (it == page_table_.end() || it->second != frame->index) {
      frame->valid = false;
      frame->failed = false;
      frame->key = kInvalidPageKey;
      free_frames_.push_back(frame->index);
    }
  }
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = page_table_.begin(); it != page_table_.end();) {
    Frame& frame = frames_[it->second];
    if (frame.pins == 0) {
      auto pos = lru_pos_.find(it->first);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
      frame.valid = false;
      frame.failed = false;
      frame.key = kInvalidPageKey;
      free_frames_.push_back(it->second);
      it = page_table_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferPool::DropOwner(uint32_t owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = page_table_.begin(); it != page_table_.end();) {
    if (PageKeyOwner(it->first) != owner) {
      ++it;
      continue;
    }
    Frame& frame = frames_[it->second];
    if (frame.pins == 0) {
      auto pos = lru_pos_.find(it->first);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
      frame.valid = false;
      frame.failed = false;
      frame.key = kInvalidPageKey;
      free_frames_.push_back(it->second);
      it = page_table_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace opt
