#include "storage/buffer_pool.h"

#include <cassert>

namespace opt {

BufferPool::BufferPool(uint32_t page_size, uint32_t num_frames)
    : page_size_(page_size), num_frames_(0) {
  EnsureFrames(num_frames);
}

BufferPool::~BufferPool() = default;

void BufferPool::EnsureFrames(uint32_t min_frames) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (min_frames <= num_frames_) return;
  const uint32_t add = min_frames - num_frames_;
  // Frames are page-aligned so O_DIRECT file implementations can read
  // straight into them.
  arena_blocks_.emplace_back(static_cast<size_t>(page_size_) * add, 4096);
  char* block = arena_blocks_.back().data();
  for (uint32_t i = 0; i < add; ++i) {
    frames_.emplace_back();
    frames_.back().data = block + static_cast<size_t>(i) * page_size_;
    free_frames_.push_back(num_frames_ + i);
  }
  num_frames_ = min_frames;
}

void BufferPool::TouchLru(uint32_t pid) {
  auto it = lru_pos_.find(pid);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_back(pid);
  lru_pos_[pid] = std::prev(lru_.end());
}

Frame* BufferPool::LookupAndPin(uint32_t pid) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  auto it = page_table_.find(pid);
  if (it == page_table_.end()) return nullptr;
  Frame& frame = frames_[it->second];
  if (!frame.valid) return nullptr;  // read still in flight elsewhere
  ++frame.pins;
  TouchLru(pid);
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  return &frame;
}

Result<Frame*> BufferPool::AllocateForRead(uint32_t pid) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  uint32_t frame_index;
  if (!free_frames_.empty()) {
    frame_index = free_frames_.back();
    free_frames_.pop_back();
  } else {
    // Evict the coldest unpinned page.
    bool found = false;
    for (auto lru_it = lru_.begin(); lru_it != lru_.end(); ++lru_it) {
      const uint32_t victim_pid = *lru_it;
      const uint32_t victim_index = page_table_.at(victim_pid);
      if (frames_[victim_index].pins == 0) {
        lru_.erase(lru_it);
        lru_pos_.erase(victim_pid);
        page_table_.erase(victim_pid);
        frame_index = victim_index;
        found = true;
        stats_.evictions.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    if (!found) {
      return Status::ResourceExhausted(
          "buffer pool: all " + std::to_string(num_frames_) +
          " frames pinned");
    }
  }
  Frame& frame = frames_[frame_index];
  frame.pid = pid;
  frame.pins = 1;
  frame.valid = false;
  page_table_[pid] = frame_index;
  TouchLru(pid);
  return &frame;
}

void BufferPool::MarkValid(Frame* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  frame->valid = true;
}

void BufferPool::Pin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++frame->pins;
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(frame->pins > 0);
  --frame->pins;
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = page_table_.begin(); it != page_table_.end();) {
    Frame& frame = frames_[it->second];
    if (frame.pins == 0) {
      auto pos = lru_pos_.find(it->first);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
      frame.valid = false;
      free_frames_.push_back(it->second);
      it = page_table_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace opt
