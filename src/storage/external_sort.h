// External merge sort over fixed-size POD records — the out-of-core
// preprocessing substrate for building graph stores from edge lists
// that exceed memory. Run generation under a byte budget, then a k-way
// heap merge streaming to a consumer.
#ifndef OPT_STORAGE_EXTERNAL_SORT_H_
#define OPT_STORAGE_EXTERNAL_SORT_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <type_traits>
#include <vector>

#include "storage/env.h"
#include "util/status.h"

namespace opt {

template <typename Record>
class ExternalSorter {
  static_assert(std::is_trivially_copyable_v<Record>,
                "records must be PODs");

 public:
  /// Spills sorted runs under `temp_dir` once the in-memory buffer
  /// exceeds `memory_budget_bytes` (minimum one record).
  ExternalSorter(Env* env, std::string temp_dir, std::string run_prefix,
                 size_t memory_budget_bytes)
      : env_(env), temp_dir_(std::move(temp_dir)),
        run_prefix_(std::move(run_prefix)) {
    capacity_ = std::max<size_t>(1, memory_budget_bytes / sizeof(Record));
    buffer_.reserve(std::min<size_t>(capacity_, 1 << 20));
  }

  ~ExternalSorter() { CleanupRuns(); }

  Status Add(const Record& record) {
    buffer_.push_back(record);
    ++total_records_;
    if (buffer_.size() >= capacity_) return SpillRun();
    return Status::OK();
  }

  uint64_t total_records() const { return total_records_; }
  size_t num_runs() const { return runs_.size(); }

  /// Streams all records in sorted order. The sorter cannot be reused.
  Status Merge(const std::function<Status(const Record&)>& consume) {
    std::sort(buffer_.begin(), buffer_.end());
    if (runs_.empty()) {
      for (const Record& r : buffer_) OPT_RETURN_IF_ERROR(consume(r));
      buffer_.clear();
      return Status::OK();
    }

    // One buffered cursor per run, plus the in-memory tail as a
    // virtual run.
    struct Cursor {
      std::unique_ptr<RandomAccessFile> file;
      uint64_t file_records = 0;
      uint64_t next_index = 0;
      std::vector<Record> block;
      size_t block_pos = 0;

      bool exhausted() const {
        return next_index >= file_records && block_pos >= block.size();
      }
    };
    std::vector<Cursor> cursors(runs_.size());
    for (size_t i = 0; i < runs_.size(); ++i) {
      OPT_ASSIGN_OR_RETURN(cursors[i].file,
                           env_->OpenRandomAccess(runs_[i].path));
      cursors[i].file_records = runs_[i].records;
    }
    constexpr size_t kBlockRecords = 4096;
    auto refill = [&](Cursor& c) -> Status {
      if (c.block_pos < c.block.size() || c.next_index >= c.file_records) {
        return Status::OK();
      }
      const size_t take = static_cast<size_t>(std::min<uint64_t>(
          kBlockRecords, c.file_records - c.next_index));
      c.block.resize(take);
      OPT_RETURN_IF_ERROR(c.file->Read(c.next_index * sizeof(Record),
                                       take * sizeof(Record),
                                       reinterpret_cast<char*>(
                                           c.block.data())));
      c.next_index += take;
      c.block_pos = 0;
      return Status::OK();
    };

    using HeapItem = std::pair<Record, size_t>;  // record, cursor index
    auto greater = [](const HeapItem& a, const HeapItem& b) {
      return b.first < a.first;
    };
    std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(greater)>
        heap(greater);
    for (size_t i = 0; i < cursors.size(); ++i) {
      OPT_RETURN_IF_ERROR(refill(cursors[i]));
      if (cursors[i].block_pos < cursors[i].block.size()) {
        heap.emplace(cursors[i].block[cursors[i].block_pos++], i);
      }
    }
    const size_t kMemoryRun = cursors.size();
    size_t memory_pos = 0;
    if (memory_pos < buffer_.size()) {
      heap.emplace(buffer_[memory_pos++], kMemoryRun);
    }
    while (!heap.empty()) {
      auto [record, source] = heap.top();
      heap.pop();
      OPT_RETURN_IF_ERROR(consume(record));
      if (source == kMemoryRun) {
        if (memory_pos < buffer_.size()) {
          heap.emplace(buffer_[memory_pos++], kMemoryRun);
        }
      } else {
        Cursor& c = cursors[source];
        OPT_RETURN_IF_ERROR(refill(c));
        if (c.block_pos < c.block.size()) {
          heap.emplace(c.block[c.block_pos++], source);
        }
      }
    }
    buffer_.clear();
    CleanupRuns();
    return Status::OK();
  }

 private:
  struct Run {
    std::string path;
    uint64_t records;
  };

  Status SpillRun() {
    std::sort(buffer_.begin(), buffer_.end());
    const std::string path = temp_dir_ + "/" + run_prefix_ + "_run" +
                             std::to_string(runs_.size());
    OPT_ASSIGN_OR_RETURN(auto file, env_->OpenWritable(path));
    OPT_RETURN_IF_ERROR(file->Append(
        Slice(reinterpret_cast<const char*>(buffer_.data()),
              buffer_.size() * sizeof(Record))));
    OPT_RETURN_IF_ERROR(file->Close());
    runs_.push_back({path, buffer_.size()});
    buffer_.clear();
    return Status::OK();
  }

  void CleanupRuns() {
    for (const Run& run : runs_) (void)env_->DeleteFile(run.path);
    runs_.clear();
  }

  Env* env_;
  std::string temp_dir_;
  std::string run_prefix_;
  size_t capacity_;
  std::vector<Record> buffer_;
  std::vector<Run> runs_;
  uint64_t total_records_ = 0;
};

}  // namespace opt

#endif  // OPT_STORAGE_EXTERNAL_SORT_H_
