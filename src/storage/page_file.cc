#include "storage/page_file.h"

#include "storage/page.h"

namespace opt {

Result<std::unique_ptr<PageFile>> PageFile::Open(Env* env,
                                                 const std::string& path,
                                                 uint32_t page_size) {
  if (page_size < kMinPageSize) {
    return Status::InvalidArgument("page size too small");
  }
  OPT_ASSIGN_OR_RETURN(uint64_t size, env->FileSize(path));
  if (size % page_size != 0) {
    return Status::Corruption("file size " + std::to_string(size) +
                              " is not a multiple of page size in " + path);
  }
  OPT_ASSIGN_OR_RETURN(auto file, env->OpenRandomAccess(path));
  return std::unique_ptr<PageFile>(
      new PageFile(std::move(file), path, page_size,
                   static_cast<uint32_t>(size / page_size)));
}

Status PageFile::ReadPage(uint32_t pid, char* dst) const {
  if (pid >= num_pages_) {
    return Status::OutOfRange("page " + std::to_string(pid) +
                              " beyond end of " + path_);
  }
  return file_->Read(static_cast<uint64_t>(pid) * page_size_, page_size_,
                     dst);
}

Result<std::unique_ptr<PageFileWriter>> PageFileWriter::Create(
    Env* env, const std::string& path, uint32_t page_size) {
  OPT_ASSIGN_OR_RETURN(auto file, env->OpenWritable(path));
  return std::unique_ptr<PageFileWriter>(
      new PageFileWriter(std::move(file), page_size));
}

Status PageFileWriter::Append(const char* page) {
  OPT_RETURN_IF_ERROR(file_->Append(Slice(page, page_size_)));
  ++pages_written_;
  return Status::OK();
}

Status PageFileWriter::Finish() {
  OPT_RETURN_IF_ERROR(file_->Sync());
  return file_->Close();
}

}  // namespace opt
