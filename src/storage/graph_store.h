// On-disk graph representation: (v, n(v)) records packed into slotted
// pages in ascending vertex-id order (paper §3.2). Adjacency lists larger
// than a page span consecutive pages as segment chains. A sidecar
// metadata file maps vertices to page runs and pages to their first
// vertex, so residency tests ("is n(v) in the internal area?") are O(1)
// id-range checks.
#ifndef OPT_STORAGE_GRAPH_STORE_H_
#define OPT_STORAGE_GRAPH_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "storage/env.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "util/status.h"

namespace opt {

struct GraphStoreOptions {
  uint32_t page_size = kDefaultPageSize;
};

/// One iteration's internal-area extent: the contiguous vertex range
/// [v_lo, v_hi] whose records fully fit in pages [pid_lo, pid_hi]
/// (pid_hi - pid_lo + 1 <= m_in).
struct IterationPlan {
  VertexId v_lo = 0;
  VertexId v_hi = 0;
  uint32_t pid_lo = 0;
  uint32_t pid_hi = 0;
  uint32_t num_pages() const { return pid_hi - pid_lo + 1; }
};

/// Streaming store construction: records must arrive in ascending
/// vertex-id order (gaps become empty records at Finish). Used by
/// GraphStore::Create and by the out-of-core StoreBuilder, which never
/// materializes the graph in memory.
class GraphStoreWriter {
 public:
  static Result<std::unique_ptr<GraphStoreWriter>> Create(
      Env* env, const std::string& base_path,
      const GraphStoreOptions& options = {});
  ~GraphStoreWriter();

  /// Appends n(v). `neighbors` must be sorted ascending; `v` must be
  /// strictly greater than any previously added vertex. Skipped ids in
  /// between get empty records.
  Status AddRecord(VertexId v, std::span<const VertexId> neighbors);

  /// Flushes the last page and writes the metadata sidecar.
  Status Finish();

 private:
  GraphStoreWriter(Env* env, std::string base_path, uint32_t page_size,
                   std::unique_ptr<PageFileWriter> writer);
  Status FlushPage();
  Status AddOne(VertexId v, std::span<const VertexId> neighbors);

  Env* env_;
  std::string base_path_;
  uint32_t page_size_;
  std::unique_ptr<PageFileWriter> writer_;
  std::vector<char> buffer_;
  std::unique_ptr<PageBuilder> builder_;
  uint32_t current_pid_ = 0;
  VertexId page_first_vertex_ = kInvalidVertex;
  VertexId next_vertex_ = 0;
  uint64_t directed_edges_ = 0;
  std::vector<uint32_t> first_page_;
  std::vector<uint32_t> last_page_;
  std::vector<VertexId> first_vertex_of_page_;
  bool finished_ = false;
};

class GraphStore {
 public:
  /// Writes `<base_path>.pages` and `<base_path>.meta` from a CSR graph.
  static Status Create(const CSRGraph& graph, Env* env,
                       const std::string& base_path,
                       const GraphStoreOptions& options = {});

  /// Opens an existing store. `env` must outlive the store.
  /// `verify_pages` additionally checks every page's header + CRC at
  /// open — the crash-consistency gate that catches a build torn by a
  /// mid-write crash even when the file sizes happen to line up.
  static Result<std::unique_ptr<GraphStore>> Open(Env* env,
                                                  const std::string& base_path,
                                                  bool verify_pages = false);

  /// Full-scan integrity check: validates the header and CRC of every
  /// page. Corruption names the first bad page.
  Status VerifyAllPages() const;

  /// Full-degree histogram (|n(v)| for every vertex) from one sequential
  /// page scan — segment headers carry the full degree, so only first
  /// segments are consulted. Feeds the hub-split resolution.
  Result<std::vector<uint32_t>> ComputeDegrees() const;

  VertexId num_vertices() const { return num_vertices_; }
  uint32_t num_pages() const { return file_->num_pages(); }
  uint32_t page_size() const { return page_size_; }
  uint64_t num_directed_edges() const { return num_directed_edges_; }

  /// First/last page holding a segment of n(v).
  uint32_t FirstPageOfVertex(VertexId v) const { return first_page_[v]; }
  uint32_t LastPageOfVertex(VertexId v) const { return last_page_[v]; }
  uint32_t PagesOfVertex(VertexId v) const {
    return last_page_[v] - first_page_[v] + 1;
  }

  /// Vertex owning the first segment in page `pid`.
  VertexId FirstVertexOfPage(uint32_t pid) const {
    return first_vertex_of_page_[pid];
  }

  /// Largest page run any single vertex occupies; the internal area must
  /// hold at least this many pages (paper: "large enough to load at least
  /// one adjacency list").
  uint32_t MaxRecordPages() const { return max_record_pages_; }

  /// Plans the iteration starting at `v_start` with an internal-area
  /// budget of `m_in` pages. Fails with ResourceExhausted if even the
  /// first record does not fit.
  Result<IterationPlan> PlanIteration(VertexId v_start, uint32_t m_in) const;

  PageFile* file() const { return file_.get(); }

  static std::string PagesPath(const std::string& base) {
    return base + ".pages";
  }
  static std::string MetaPath(const std::string& base) {
    return base + ".meta";
  }

 private:
  GraphStore() = default;

  std::unique_ptr<PageFile> file_;
  uint32_t page_size_ = 0;
  VertexId num_vertices_ = 0;
  uint64_t num_directed_edges_ = 0;
  uint32_t max_record_pages_ = 1;
  std::vector<uint32_t> first_page_;           // per vertex
  std::vector<uint32_t> last_page_;            // per vertex
  std::vector<VertexId> first_vertex_of_page_; // per page
};

}  // namespace opt

#endif  // OPT_STORAGE_GRAPH_STORE_H_
