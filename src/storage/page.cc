#include "storage/page.h"

#include <cassert>
#include <cstring>

#include "util/coding.h"
#include "util/crc32.h"

namespace opt {

PageBuilder::PageBuilder(char* buffer, uint32_t page_size, uint32_t page_id)
    : buffer_(buffer), page_size_(page_size), page_id_(page_id),
      data_end_(kPageHeaderSize) {
  assert(page_size >= kMinPageSize);
  std::memset(buffer_, 0, page_size_);
}

uint32_t PageBuilder::FreeNeighborCapacity() const {
  const uint32_t slot_space = (num_slots_ + 1) * kSlotSize;
  const uint32_t used = data_end_ + slot_space + kSegmentHeaderSize;
  if (used >= page_size_) return 0;
  return (page_size_ - used) / sizeof(VertexId);
}

void PageBuilder::AddSegment(VertexId vertex, uint32_t total_degree,
                             uint32_t offset,
                             std::span<const VertexId> neighbors) {
  assert(neighbors.size() <= FreeNeighborCapacity());
  if (num_slots_ == 0 && offset > 0) continues_ = true;
  // Slot directory entry (grows downward from the page end).
  const uint32_t slot_pos = page_size_ - (num_slots_ + 1) * kSlotSize;
  EncodeFixed32(buffer_ + slot_pos, data_end_);
  // Segment header + payload.
  EncodeFixed32(buffer_ + data_end_, vertex);
  EncodeFixed32(buffer_ + data_end_ + 4, total_degree);
  EncodeFixed32(buffer_ + data_end_ + 8, offset);
  EncodeFixed32(buffer_ + data_end_ + 12,
                static_cast<uint32_t>(neighbors.size()));
  std::memcpy(buffer_ + data_end_ + kSegmentHeaderSize, neighbors.data(),
              neighbors.size() * sizeof(VertexId));
  data_end_ += kSegmentHeaderSize +
               static_cast<uint32_t>(neighbors.size() * sizeof(VertexId));
  ++num_slots_;
}

void PageBuilder::Finish() {
  EncodeFixed32(buffer_, kPageMagic);
  EncodeFixed32(buffer_ + 4, page_id_);
  EncodeFixed32(buffer_ + 8, num_slots_);
  EncodeFixed32(buffer_ + 12, continues_ ? 1u : 0u);
  EncodeFixed32(buffer_ + 16, 0);  // crc placeholder
  EncodeFixed32(buffer_ + 16, ComputePageCrc(buffer_, page_size_));
}

uint32_t ComputePageCrc(const char* data, uint32_t page_size) {
  uint32_t crc = Crc32c(0, data, 16);
  static const char kZeros[4] = {0, 0, 0, 0};
  crc = Crc32c(crc, kZeros, 4);
  crc = Crc32c(crc, data + 20, page_size - 20);
  return crc;
}

Status PageView::Validate(uint32_t expected_page_id) const {
  if (DecodeFixed32(data_) != kPageMagic) {
    return Status::Corruption("bad page magic");
  }
  if (page_id() != expected_page_id) {
    return Status::Corruption("page id mismatch: expected " +
                              std::to_string(expected_page_id) + ", found " +
                              std::to_string(page_id()));
  }
  const uint32_t stored_crc = DecodeFixed32(data_ + 16);
  if (stored_crc != ComputePageCrc(data_, page_size_)) {
    return Status::Corruption("page " + std::to_string(page_id()) +
                              " CRC mismatch");
  }
  return Status::OK();
}

uint32_t PageView::page_id() const { return DecodeFixed32(data_ + 4); }

uint32_t PageView::num_slots() const { return DecodeFixed32(data_ + 8); }

bool PageView::first_segment_is_continuation() const {
  return (DecodeFixed32(data_ + 12) & 1u) != 0;
}

Segment PageView::GetSegment(uint32_t i) const {
  assert(i < num_slots());
  const uint32_t slot_pos = page_size_ - (i + 1) * kSlotSize;
  const uint32_t rec = DecodeFixed32(data_ + slot_pos);
  Segment seg;
  seg.vertex = DecodeFixed32(data_ + rec);
  seg.total_degree = DecodeFixed32(data_ + rec + 4);
  seg.offset = DecodeFixed32(data_ + rec + 8);
  const uint32_t count = DecodeFixed32(data_ + rec + 12);
  assert((rec + kSegmentHeaderSize) % alignof(VertexId) == 0);
  seg.neighbors = {reinterpret_cast<const VertexId*>(
                       data_ + rec + kSegmentHeaderSize),
                   count};
  return seg;
}

}  // namespace opt
