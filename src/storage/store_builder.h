// Out-of-core GraphStore construction from raw edge lists. Never holds
// the edge set in memory: edges stream through an external sorter into
// the streaming GraphStoreWriter; only O(|V|) state (degrees, id map)
// is resident. This is the preprocessing path for graphs at the
// paper's billion-edge scale ("billion-scale web graphs can easily be
// obtained by ordinary users", §1).
#ifndef OPT_STORAGE_STORE_BUILDER_H_
#define OPT_STORAGE_STORE_BUILDER_H_

#include <cstdint>
#include <string>

#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

struct StoreBuildOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Apply the Schank–Wagner degree-ordering heuristic (adds a second
  /// external sorting pass; degrees themselves are computed streaming).
  bool degree_order = true;
  /// In-memory budget for sort runs (per pass).
  size_t memory_budget_bytes = 64u << 20;
  std::string temp_dir = "/tmp";
};

struct StoreBuildStats {
  uint64_t input_edges = 0;      // lines parsed (pre-dedup, pre-loop drop)
  uint64_t kept_edges = 0;       // distinct undirected edges
  uint64_t self_loops = 0;
  uint64_t duplicates = 0;
  VertexId num_vertices = 0;
  uint32_t sort_runs = 0;        // spilled runs across both passes
};

/// Builds `<base_path>.pages/.meta` from a text edge list ("u v" per
/// line, '#'/'%' comments).
Result<StoreBuildStats> BuildStoreFromEdgeList(
    Env* env, const std::string& edge_list_path,
    const std::string& base_path, const StoreBuildOptions& options = {});

}  // namespace opt

#endif  // OPT_STORAGE_STORE_BUILDER_H_
