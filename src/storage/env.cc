#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace opt {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, char* dst) const override {
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pread(fd_, dst + done, n - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread " + path_));
      }
      if (r == 0) {
        return Status::IOError("short read at offset " +
                               std::to_string(offset) + " in " + path_);
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(Slice data) override {
    size_t done = 0;
    while (done < data.size()) {
      const ssize_t w = ::write(fd_, data.data() + done, data.size() - done);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write " + path_));
      }
      done += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fdatasync " + path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::IOError(ErrnoMessage("close " + path_));
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<RandomAccessFile>> OpenRandomAccess(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(path, fd));
  }

  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path) override {
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, fd));
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::IOError(ErrnoMessage("stat " + path));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError(ErrnoMessage("unlink " + path));
    }
    return Status::OK();
  }
};

class ThrottledRandomAccessFile : public RandomAccessFile {
 public:
  ThrottledRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                            uint32_t latency_micros, EnvIoStats* stats)
      : base_(std::move(base)),
        latency_micros_(latency_micros),
        stats_(stats) {}

  Status Read(uint64_t offset, size_t n, char* dst) const override {
    if (latency_micros_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(latency_micros_));
    }
    stats_->reads.fetch_add(1, std::memory_order_relaxed);
    stats_->read_bytes.fetch_add(n, std::memory_order_relaxed);
    return base_->Read(offset, n, dst);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  uint32_t latency_micros_;
  EnvIoStats* stats_;
};

class CountingWritableFile : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base,
                       uint32_t latency_micros, EnvIoStats* stats)
      : base_(std::move(base)), latency_micros_(latency_micros),
        stats_(stats) {}

  Status Append(Slice data) override {
    if (latency_micros_ > 0) {
      // Latency is charged per 4 KiB written, so bulk appends pay in
      // proportion to their volume (like a real device would).
      const uint64_t units = (data.size() + 4095) / 4096;
      std::this_thread::sleep_for(
          std::chrono::microseconds(latency_micros_ * units));
    }
    stats_->writes.fetch_add(1, std::memory_order_relaxed);
    stats_->write_bytes.fetch_add(data.size(), std::memory_order_relaxed);
    return base_->Append(data);
  }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  uint32_t latency_micros_;
  EnvIoStats* stats_;
};

class DirectIoFile : public RandomAccessFile {
 public:
  DirectIoFile(std::string path, int fd, uint64_t file_size)
      : path_(std::move(path)), fd_(fd), file_size_(file_size) {}
  ~DirectIoFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, char* dst) const override {
    constexpr uint64_t kAlign = 4096;
    if (offset + n > file_size_) {
      return Status::IOError("read past end of " + path_);
    }
    const bool aligned = offset % kAlign == 0 && n % kAlign == 0 &&
                         reinterpret_cast<uintptr_t>(dst) % kAlign == 0;
    if (aligned) return ReadAligned(offset, n, dst);
    // Transparent handling of misaligned requests (metadata sidecars,
    // odd tails): read the covering aligned window into a scratch
    // buffer and copy out — the RocksDB direct-I/O idiom.
    const uint64_t window_start = offset / kAlign * kAlign;
    const uint64_t window_end =
        (offset + n + kAlign - 1) / kAlign * kAlign;
    const size_t window = static_cast<size_t>(window_end - window_start);
    void* raw = std::aligned_alloc(kAlign, window);
    if (raw == nullptr) {
      return Status::ResourceExhausted("aligned scratch allocation failed");
    }
    char* scratch = static_cast<char*>(raw);
    Status s = ReadAligned(window_start, window, scratch);
    if (s.ok()) {
      std::memcpy(dst, scratch + (offset - window_start), n);
    }
    std::free(raw);
    return s;
  }

 private:
  Status ReadAligned(uint64_t offset, size_t n, char* dst) const {
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pread(fd_, dst + done, n - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("direct pread " + path_));
      }
      if (r == 0) {
        // O_DIRECT windows may extend past EOF; zero-fill the tail so
        // callers reading exact logical sizes still succeed.
        std::memset(dst + done, 0, n - done);
        return Status::OK();
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  std::string path_;
  int fd_;
  uint64_t file_size_;
};

class FaultInjectionFile : public RandomAccessFile {
 public:
  FaultInjectionFile(std::unique_ptr<RandomAccessFile> base,
                     std::atomic<int64_t>* fail_after,
                     std::atomic<uint64_t>* reads)
      : base_(std::move(base)), fail_after_(fail_after), reads_(reads) {}

  Status Read(uint64_t offset, size_t n, char* dst) const override {
    const uint64_t idx = reads_->fetch_add(1, std::memory_order_relaxed);
    const int64_t limit = fail_after_->load(std::memory_order_relaxed);
    if (limit >= 0 && static_cast<int64_t>(idx) >= limit) {
      return Status::IOError("injected fault at read #" +
                             std::to_string(idx));
    }
    return base_->Read(offset, n, dst);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::atomic<int64_t>* fail_after_;
  std::atomic<uint64_t>* reads_;
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

ThrottledEnv::ThrottledEnv(Env* base, uint32_t read_latency_micros,
                           uint32_t write_latency_micros)
    : base_(base), read_latency_micros_(read_latency_micros),
      write_latency_micros_(write_latency_micros) {}

Result<std::unique_ptr<RandomAccessFile>> ThrottledEnv::OpenRandomAccess(
    const std::string& path) {
  OPT_ASSIGN_OR_RETURN(auto file, base_->OpenRandomAccess(path));
  return std::unique_ptr<RandomAccessFile>(new ThrottledRandomAccessFile(
      std::move(file), read_latency_micros_, &stats_));
}

Result<std::unique_ptr<WritableFile>> ThrottledEnv::OpenWritable(
    const std::string& path) {
  OPT_ASSIGN_OR_RETURN(auto file, base_->OpenWritable(path));
  return std::unique_ptr<WritableFile>(new CountingWritableFile(
      std::move(file), write_latency_micros_, &stats_));
}

Result<uint64_t> ThrottledEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool ThrottledEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status ThrottledEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

DirectIoEnv::DirectIoEnv(Env* fallback) : fallback_(fallback) {}

Result<std::unique_ptr<RandomAccessFile>> DirectIoEnv::OpenRandomAccess(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECT | O_CLOEXEC);
  if (fd < 0) {
    if (errno == EINVAL || errno == ENOTSUP) {
      return Status::NotSupported("filesystem rejects O_DIRECT for " +
                                  path);
    }
    return Status::IOError(ErrnoMessage("open(O_DIRECT) " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::IOError(ErrnoMessage("fstat " + path));
    ::close(fd);
    return s;
  }
  return std::unique_ptr<RandomAccessFile>(
      new DirectIoFile(path, fd, static_cast<uint64_t>(st.st_size)));
}

Result<std::unique_ptr<WritableFile>> DirectIoEnv::OpenWritable(
    const std::string& path) {
  return fallback_->OpenWritable(path);
}

Result<uint64_t> DirectIoEnv::FileSize(const std::string& path) {
  return fallback_->FileSize(path);
}

bool DirectIoEnv::FileExists(const std::string& path) {
  return fallback_->FileExists(path);
}

Status DirectIoEnv::DeleteFile(const std::string& path) {
  return fallback_->DeleteFile(path);
}

FaultInjectionEnv::FaultInjectionEnv(Env* base) : base_(base) {}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectionEnv::OpenRandomAccess(
    const std::string& path) {
  OPT_ASSIGN_OR_RETURN(auto file, base_->OpenRandomAccess(path));
  return std::unique_ptr<RandomAccessFile>(
      new FaultInjectionFile(std::move(file), &fail_after_, &reads_));
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::OpenWritable(
    const std::string& path) {
  return base_->OpenWritable(path);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

}  // namespace opt
