#include "storage/record_scanner.h"

#include "storage/page.h"
#include "util/aligned_buffer.h"

namespace opt {

Status ScanRecords(
    const GraphStore& store, uint32_t first_pid, uint32_t last_pid,
    const std::function<void(VertexId, std::span<const VertexId>)>& fn,
    uint64_t* pages_read, bool validate_pages) {
  if (store.num_pages() == 0) return Status::OK();
  if (last_pid >= store.num_pages()) {
    return Status::OutOfRange("scan range beyond end of store");
  }
  const uint32_t page_size = store.page_size();
  AlignedBuffer buffer(page_size);

  VertexId pending_vertex = kInvalidVertex;
  uint32_t pending_expected = 0;
  std::vector<VertexId> pending;

  for (uint32_t pid = first_pid; pid <= last_pid; ++pid) {
    OPT_RETURN_IF_ERROR(store.file()->ReadPage(pid, buffer.data()));
    if (pages_read != nullptr) ++*pages_read;
    PageView page(buffer.data(), page_size);
    if (validate_pages) OPT_RETURN_IF_ERROR(page.Validate(pid));
    const uint32_t slots = page.num_slots();
    for (uint32_t s = 0; s < slots; ++s) {
      const Segment seg = page.GetSegment(s);
      if (seg.IsFirstSegment() && seg.IsLastSegment()) {
        fn(seg.vertex, seg.neighbors);
        pending_vertex = kInvalidVertex;
        continue;
      }
      if (seg.IsFirstSegment()) {
        pending_vertex = seg.vertex;
        pending_expected = seg.total_degree;
        pending.assign(seg.neighbors.begin(), seg.neighbors.end());
        continue;
      }
      if (seg.vertex != pending_vertex || seg.offset != pending.size()) {
        // Chain started before first_pid — skip this record.
        pending_vertex = kInvalidVertex;
        continue;
      }
      pending.insert(pending.end(), seg.neighbors.begin(),
                     seg.neighbors.end());
      if (seg.IsLastSegment()) {
        if (pending.size() != pending_expected) {
          return Status::Corruption("segment chain length mismatch in scan");
        }
        fn(pending_vertex, pending);
        pending_vertex = kInvalidVertex;
      }
    }
  }
  return Status::OK();
}

Status ReadAdjacency(const GraphStore& store, VertexId v,
                     std::vector<VertexId>* out, uint64_t* pages_read) {
  if (v >= store.num_vertices()) {
    return Status::OutOfRange("vertex " + std::to_string(v) +
                              " beyond end of store");
  }
  out->clear();
  bool found = false;
  OPT_RETURN_IF_ERROR(ScanRecords(
      store, store.FirstPageOfVertex(v), store.LastPageOfVertex(v),
      [&](VertexId vertex, std::span<const VertexId> neighbors) {
        if (vertex != v) return;
        out->assign(neighbors.begin(), neighbors.end());
        found = true;
      },
      pages_read));
  if (!found) {
    return Status::Corruption("record for vertex " + std::to_string(v) +
                              " missing from its page run");
  }
  return Status::OK();
}

}  // namespace opt
