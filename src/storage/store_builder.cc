#include "storage/store_builder.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "storage/external_sort.h"

namespace opt {

namespace {

/// One direction of an undirected edge; sorting by (src, dst) groups
/// adjacency lists.
struct DirectedEdge {
  VertexId src;
  VertexId dst;
  bool operator<(const DirectedEdge& o) const {
    if (src != o.src) return src < o.src;
    return dst < o.dst;
  }
};

/// Streams deduplicated, grouped records out of a sorted edge stream.
class RecordAssembler {
 public:
  RecordAssembler(GraphStoreWriter* writer, StoreBuildStats* stats)
      : writer_(writer), stats_(stats) {}

  Status Consume(const DirectedEdge& edge) {
    if (edge.src == current_ && !neighbors_.empty() &&
        neighbors_.back() == edge.dst) {
      ++stats_->duplicates;
      return Status::OK();
    }
    if (edge.src != current_) {
      OPT_RETURN_IF_ERROR(Flush());
      current_ = edge.src;
    }
    neighbors_.push_back(edge.dst);
    return Status::OK();
  }

  Status Flush() {
    if (current_ == kInvalidVertex) return Status::OK();
    OPT_RETURN_IF_ERROR(writer_->AddRecord(current_, neighbors_));
    neighbors_.clear();
    current_ = kInvalidVertex;
    return Status::OK();
  }

 private:
  GraphStoreWriter* writer_;
  StoreBuildStats* stats_;
  VertexId current_ = kInvalidVertex;
  std::vector<VertexId> neighbors_;
};

}  // namespace

Result<StoreBuildStats> BuildStoreFromEdgeList(
    Env* env, const std::string& edge_list_path,
    const std::string& base_path, const StoreBuildOptions& options) {
  StoreBuildStats stats;

  // ----- Pass A: parse the text list into an external sorter ---------
  ExternalSorter<DirectedEdge> sorter(env, options.temp_dir, "store_build",
                                      options.memory_budget_bytes);
  VertexId max_id = 0;
  {
    std::FILE* f = std::fopen(edge_list_path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError("cannot open " + edge_list_path);
    }
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
      unsigned long long u, v;
      if (std::sscanf(line, "%llu %llu", &u, &v) != 2) {
        std::fclose(f);
        return Status::Corruption("malformed edge list line: " +
                                  std::string(line));
      }
      ++stats.input_edges;
      if (u == v) {
        ++stats.self_loops;
        continue;
      }
      if (u >= kInvalidVertex || v >= kInvalidVertex) {
        std::fclose(f);
        return Status::OutOfRange("vertex id exceeds 32-bit range");
      }
      const auto a = static_cast<VertexId>(u);
      const auto b = static_cast<VertexId>(v);
      max_id = std::max({max_id, a, b});
      Status s = sorter.Add({a, b});
      if (s.ok()) s = sorter.Add({b, a});
      if (!s.ok()) {
        std::fclose(f);
        return s;
      }
    }
    std::fclose(f);
  }
  if (sorter.total_records() == 0) {
    // Empty graph: still produce a valid (empty) store.
    OPT_ASSIGN_OR_RETURN(auto writer, GraphStoreWriter::Create(
                                          env, base_path,
                                          {.page_size = options.page_size}));
    OPT_RETURN_IF_ERROR(writer->Finish());
    return stats;
  }
  stats.num_vertices = max_id + 1;

  GraphStoreOptions store_options;
  store_options.page_size = options.page_size;

  if (!options.degree_order) {
    // ----- Single merge: dedup + group + stream into the writer ------
    stats.sort_runs = static_cast<uint32_t>(sorter.num_runs());
    OPT_ASSIGN_OR_RETURN(
        auto writer, GraphStoreWriter::Create(env, base_path, store_options));
    RecordAssembler assembler(writer.get(), &stats);
    OPT_RETURN_IF_ERROR(sorter.Merge([&](const DirectedEdge& e) {
      return assembler.Consume(e);
    }));
    OPT_RETURN_IF_ERROR(assembler.Flush());
    OPT_RETURN_IF_ERROR(writer->Finish());
    OPT_ASSIGN_OR_RETURN(auto reopened, GraphStore::Open(env, base_path));
    stats.kept_edges = reopened->num_directed_edges() / 2;
    return stats;
  }

  // ----- Degree-order path -------------------------------------------
  // Merge pass 1: dedup, compute degrees (O(|V|) memory), and spool the
  // deduplicated directed edges to a temp file for the remap pass.
  std::vector<uint32_t> degrees(stats.num_vertices, 0);
  const std::string dedup_path = options.temp_dir + "/store_build_dedup";
  {
    OPT_ASSIGN_OR_RETURN(auto spool, env->OpenWritable(dedup_path));
    DirectedEdge previous{kInvalidVertex, kInvalidVertex};
    std::vector<DirectedEdge> block;
    block.reserve(1 << 14);
    auto flush_block = [&]() -> Status {
      if (block.empty()) return Status::OK();
      OPT_RETURN_IF_ERROR(spool->Append(
          Slice(reinterpret_cast<const char*>(block.data()),
                block.size() * sizeof(DirectedEdge))));
      block.clear();
      return Status::OK();
    };
    stats.sort_runs = static_cast<uint32_t>(sorter.num_runs());
    OPT_RETURN_IF_ERROR(sorter.Merge([&](const DirectedEdge& e) -> Status {
      if (e.src == previous.src && e.dst == previous.dst) {
        ++stats.duplicates;
        return Status::OK();
      }
      previous = e;
      ++degrees[e.src];
      block.push_back(e);
      if (block.size() == block.capacity()) return flush_block();
      return Status::OK();
    }));
    OPT_RETURN_IF_ERROR(flush_block());
    OPT_RETURN_IF_ERROR(spool->Close());
  }

  // Rank vertices by (degree, old id) — ids ascend with degree (§2.2).
  std::vector<VertexId> by_degree(stats.num_vertices);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return degrees[a] < degrees[b];
                   });
  std::vector<VertexId> old_to_new(stats.num_vertices);
  for (VertexId rank = 0; rank < stats.num_vertices; ++rank) {
    old_to_new[by_degree[rank]] = rank;
  }

  // Merge pass 2: remap ids, re-sort externally, stream into the store.
  ExternalSorter<DirectedEdge> remapped(env, options.temp_dir,
                                        "store_build2",
                                        options.memory_budget_bytes);
  {
    OPT_ASSIGN_OR_RETURN(auto spool, env->OpenRandomAccess(dedup_path));
    OPT_ASSIGN_OR_RETURN(uint64_t bytes, env->FileSize(dedup_path));
    const uint64_t records = bytes / sizeof(DirectedEdge);
    constexpr uint64_t kBlock = 1 << 14;
    std::vector<DirectedEdge> block;
    for (uint64_t pos = 0; pos < records; pos += kBlock) {
      const auto take =
          static_cast<size_t>(std::min<uint64_t>(kBlock, records - pos));
      block.resize(take);
      OPT_RETURN_IF_ERROR(
          spool->Read(pos * sizeof(DirectedEdge),
                      take * sizeof(DirectedEdge),
                      reinterpret_cast<char*>(block.data())));
      for (const DirectedEdge& e : block) {
        OPT_RETURN_IF_ERROR(
            remapped.Add({old_to_new[e.src], old_to_new[e.dst]}));
      }
    }
  }
  (void)env->DeleteFile(dedup_path);
  stats.sort_runs += static_cast<uint32_t>(remapped.num_runs());

  OPT_ASSIGN_OR_RETURN(
      auto writer, GraphStoreWriter::Create(env, base_path, store_options));
  RecordAssembler assembler(writer.get(), &stats);
  OPT_RETURN_IF_ERROR(remapped.Merge(
      [&](const DirectedEdge& e) { return assembler.Consume(e); }));
  OPT_RETURN_IF_ERROR(assembler.Flush());
  OPT_RETURN_IF_ERROR(writer->Finish());
  OPT_ASSIGN_OR_RETURN(auto reopened, GraphStore::Open(env, base_path));
  stats.kept_edges = reopened->num_directed_edges() / 2;
  return stats;
}

}  // namespace opt
