#include "storage/graph_store.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"

namespace opt {

namespace {
constexpr uint64_t kMetaMagic = 0x4F50544D45544131ULL;  // "OPTMETA1"
}

// ---------------------------------------------------------------------------
// GraphStoreWriter
// ---------------------------------------------------------------------------

GraphStoreWriter::GraphStoreWriter(Env* env, std::string base_path,
                                   uint32_t page_size,
                                   std::unique_ptr<PageFileWriter> writer)
    : env_(env), base_path_(std::move(base_path)), page_size_(page_size),
      writer_(std::move(writer)), buffer_(page_size) {
  builder_ = std::make_unique<PageBuilder>(buffer_.data(), page_size_,
                                           current_pid_);
}

GraphStoreWriter::~GraphStoreWriter() = default;

Result<std::unique_ptr<GraphStoreWriter>> GraphStoreWriter::Create(
    Env* env, const std::string& base_path,
    const GraphStoreOptions& options) {
  const uint32_t page_size = options.page_size;
  if (page_size < kMinPageSize) {
    return Status::InvalidArgument("page size must be >= " +
                                   std::to_string(kMinPageSize));
  }
  const uint32_t min_payload =
      kPageHeaderSize + kSlotSize + kSegmentHeaderSize + sizeof(VertexId);
  if (page_size < min_payload) {
    return Status::InvalidArgument("page size cannot hold any segment");
  }
  OPT_ASSIGN_OR_RETURN(
      auto file_writer,
      PageFileWriter::Create(env, GraphStore::PagesPath(base_path),
                             page_size));
  return std::unique_ptr<GraphStoreWriter>(new GraphStoreWriter(
      env, base_path, page_size, std::move(file_writer)));
}

Status GraphStoreWriter::FlushPage() {
  builder_->Finish();
  OPT_RETURN_IF_ERROR(writer_->Append(buffer_.data()));
  first_vertex_of_page_.push_back(page_first_vertex_);
  ++current_pid_;
  builder_ = std::make_unique<PageBuilder>(buffer_.data(), page_size_,
                                           current_pid_);
  page_first_vertex_ = kInvalidVertex;
  return Status::OK();
}

Status GraphStoreWriter::AddOne(VertexId v,
                                std::span<const VertexId> neighbors) {
  const auto total = static_cast<uint32_t>(neighbors.size());
  uint32_t written = 0;
  bool placed_first = false;
  for (;;) {
    if (builder_->FreeNeighborCapacity() == 0) {
      OPT_RETURN_IF_ERROR(FlushPage());
      continue;
    }
    const uint32_t take =
        std::min(builder_->FreeNeighborCapacity(), total - written);
    if (page_first_vertex_ == kInvalidVertex) page_first_vertex_ = v;
    builder_->AddSegment(v, total, written, neighbors.subspan(written, take));
    if (!placed_first) {
      first_page_.push_back(current_pid_);
      placed_first = true;
    }
    written += take;
    if (written >= total) break;
  }
  last_page_.push_back(current_pid_);
  directed_edges_ += total;
  return Status::OK();
}

Status GraphStoreWriter::AddRecord(VertexId v,
                                   std::span<const VertexId> neighbors) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  if (v < next_vertex_) {
    return Status::InvalidArgument(
        "records must arrive in ascending vertex order");
  }
  // Fill id gaps with empty records so every vertex is locatable.
  while (next_vertex_ < v) {
    OPT_RETURN_IF_ERROR(AddOne(next_vertex_, {}));
    ++next_vertex_;
  }
  OPT_RETURN_IF_ERROR(AddOne(v, neighbors));
  next_vertex_ = v + 1;
  return Status::OK();
}

Status GraphStoreWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  if (builder_->num_slots() > 0 || current_pid_ == 0) {
    OPT_RETURN_IF_ERROR(FlushPage());
  }
  OPT_RETURN_IF_ERROR(writer_->Finish());

  const VertexId n = next_vertex_;
  uint32_t max_record_pages = 1;
  for (VertexId v = 0; v < n; ++v) {
    max_record_pages =
        std::max(max_record_pages, last_page_[v] - first_page_[v] + 1);
  }
  OPT_ASSIGN_OR_RETURN(
      auto meta, env_->OpenWritable(GraphStore::MetaPath(base_path_)));
  char header[40];
  EncodeFixed64(header, kMetaMagic);
  EncodeFixed32(header + 8, page_size_);
  EncodeFixed32(header + 12, writer_->pages_written());
  EncodeFixed32(header + 16, n);
  EncodeFixed32(header + 20, max_record_pages);
  EncodeFixed64(header + 24, directed_edges_);
  EncodeFixed64(header + 32, 0);  // reserved
  OPT_RETURN_IF_ERROR(meta->Append(Slice(header, sizeof(header))));
  OPT_RETURN_IF_ERROR(meta->Append(
      Slice(reinterpret_cast<const char*>(first_page_.data()),
            first_page_.size() * sizeof(uint32_t))));
  OPT_RETURN_IF_ERROR(meta->Append(
      Slice(reinterpret_cast<const char*>(last_page_.data()),
            last_page_.size() * sizeof(uint32_t))));
  OPT_RETURN_IF_ERROR(meta->Append(
      Slice(reinterpret_cast<const char*>(first_vertex_of_page_.data()),
            first_vertex_of_page_.size() * sizeof(VertexId))));
  OPT_RETURN_IF_ERROR(meta->Sync());
  return meta->Close();
}

// ---------------------------------------------------------------------------
// GraphStore
// ---------------------------------------------------------------------------

Status GraphStore::Create(const CSRGraph& graph, Env* env,
                          const std::string& base_path,
                          const GraphStoreOptions& options) {
  OPT_ASSIGN_OR_RETURN(auto writer,
                       GraphStoreWriter::Create(env, base_path, options));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    OPT_RETURN_IF_ERROR(writer->AddRecord(v, graph.Neighbors(v)));
  }
  return writer->Finish();
}

Status GraphStore::VerifyAllPages() const {
  std::vector<char> buffer(page_size_);
  for (uint32_t pid = 0; pid < file_->num_pages(); ++pid) {
    OPT_RETURN_IF_ERROR(file_->ReadPage(pid, buffer.data()));
    OPT_RETURN_IF_ERROR(PageView(buffer.data(), page_size_).Validate(pid));
  }
  return Status::OK();
}

Result<std::vector<uint32_t>> GraphStore::ComputeDegrees() const {
  std::vector<uint32_t> degrees(num_vertices_, 0);
  std::vector<char> buffer(page_size_);
  for (uint32_t pid = 0; pid < file_->num_pages(); ++pid) {
    OPT_RETURN_IF_ERROR(file_->ReadPage(pid, buffer.data()));
    const PageView view(buffer.data(), page_size_);
    for (uint32_t i = 0; i < view.num_slots(); ++i) {
      const Segment seg = view.GetSegment(i);
      if (seg.IsFirstSegment() && seg.vertex < num_vertices_) {
        degrees[seg.vertex] = seg.total_degree;
      }
    }
  }
  return degrees;
}

Result<std::unique_ptr<GraphStore>> GraphStore::Open(
    Env* env, const std::string& base_path, bool verify_pages) {
  OPT_ASSIGN_OR_RETURN(auto meta_file,
                       env->OpenRandomAccess(MetaPath(base_path)));
  OPT_ASSIGN_OR_RETURN(uint64_t meta_size,
                       env->FileSize(MetaPath(base_path)));
  if (meta_size < 40) return Status::Corruption("metadata file too small");
  char header[40];
  OPT_RETURN_IF_ERROR(meta_file->Read(0, sizeof(header), header));
  if (DecodeFixed64(header) != kMetaMagic) {
    return Status::Corruption("bad metadata magic in " + base_path);
  }
  auto store = std::unique_ptr<GraphStore>(new GraphStore());
  store->page_size_ = DecodeFixed32(header + 8);
  const uint32_t num_pages = DecodeFixed32(header + 12);
  store->num_vertices_ = DecodeFixed32(header + 16);
  store->max_record_pages_ = DecodeFixed32(header + 20);
  store->num_directed_edges_ = DecodeFixed64(header + 24);

  const uint64_t expected =
      40 + static_cast<uint64_t>(store->num_vertices_) * 8 +
      static_cast<uint64_t>(num_pages) * 4;
  if (meta_size != expected) {
    return Status::Corruption("metadata size mismatch in " + base_path);
  }
  store->first_page_.resize(store->num_vertices_);
  store->last_page_.resize(store->num_vertices_);
  store->first_vertex_of_page_.resize(num_pages);
  uint64_t off = 40;
  OPT_RETURN_IF_ERROR(meta_file->Read(
      off, store->first_page_.size() * 4,
      reinterpret_cast<char*>(store->first_page_.data())));
  off += store->first_page_.size() * 4;
  OPT_RETURN_IF_ERROR(meta_file->Read(
      off, store->last_page_.size() * 4,
      reinterpret_cast<char*>(store->last_page_.data())));
  off += store->last_page_.size() * 4;
  OPT_RETURN_IF_ERROR(meta_file->Read(
      off, store->first_vertex_of_page_.size() * 4,
      reinterpret_cast<char*>(store->first_vertex_of_page_.data())));

  OPT_ASSIGN_OR_RETURN(
      auto file,
      PageFile::Open(env, PagesPath(base_path), store->page_size_));
  if (file->num_pages() != num_pages) {
    return Status::Corruption("page count mismatch between data and meta");
  }
  store->file_ = std::move(file);
  if (verify_pages) OPT_RETURN_IF_ERROR(store->VerifyAllPages());
  return store;
}

Result<IterationPlan> GraphStore::PlanIteration(VertexId v_start,
                                                uint32_t m_in) const {
  if (v_start >= num_vertices_) {
    return Status::OutOfRange("iteration start beyond last vertex");
  }
  if (m_in == 0) return Status::InvalidArgument("m_in must be positive");
  IterationPlan plan;
  plan.v_lo = v_start;
  plan.pid_lo = first_page_[v_start];
  const uint32_t budget_hi = plan.pid_lo + m_in - 1;
  if (last_page_[v_start] > budget_hi) {
    return Status::ResourceExhausted(
        "internal area of " + std::to_string(m_in) +
        " pages cannot hold the adjacency list of vertex " +
        std::to_string(v_start) + " (" +
        std::to_string(PagesOfVertex(v_start)) + " pages)");
  }
  // Largest v_hi with last_page_[v_hi] <= budget_hi. last_page_ is
  // non-decreasing, so binary search works.
  VertexId lo = v_start, hi = num_vertices_ - 1, best = v_start;
  while (lo <= hi) {
    const VertexId mid = lo + (hi - lo) / 2;
    if (last_page_[mid] <= budget_hi) {
      best = mid;
      if (mid == num_vertices_ - 1) break;
      lo = mid + 1;
    } else {
      if (mid == 0) break;
      hi = mid - 1;
    }
  }
  plan.v_hi = best;
  plan.pid_hi = last_page_[best];
  return plan;
}

}  // namespace opt
