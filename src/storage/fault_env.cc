#include "storage/fault_env.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <thread>

#include "util/metrics.h"

namespace opt {

namespace {

/// SplitMix64 finalizer — a pure, well-mixed hash of the fault inputs.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashPath(const std::string& path) {
  // FNV-1a: stable across runs (std::hash is not guaranteed to be).
  uint64_t h = 1469598103934665603ULL;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Location key for (seed, path, offset, salt): the unit of fault
/// determinism. Distinct salts keep the error / torn / latency streams
/// independent of each other.
uint64_t LocationKey(uint64_t seed, uint64_t path_hash, uint64_t offset,
                     uint64_t salt) {
  return Mix64(Mix64(seed ^ salt) ^ Mix64(path_hash) ^ Mix64(offset));
}

/// Deterministic Bernoulli draw from a location key.
bool Decide(uint64_t key, double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return static_cast<double>(Mix64(key) >> 11) * 0x1.0p-53 < p;
}

constexpr uint64_t kErrorSalt = 0x5245414445525221ULL;
constexpr uint64_t kTornSalt = 0x544F524E52454144ULL;
constexpr uint64_t kLatencySalt = 0x4C4154454E435921ULL;

struct FaultCounters {
  Counter* read_errors = Metrics().GetCounter("fault.read_errors");
  Counter* torn_reads = Metrics().GetCounter("fault.torn_reads");
  Counter* latency = Metrics().GetCounter("fault.latency_spikes");
  Counter* write_errors = Metrics().GetCounter("fault.write_errors");
};

FaultCounters& GlobalFaultCounters() {
  static FaultCounters counters;
  return counters;
}

Status ParseError(const std::string& detail) {
  return Status::InvalidArgument("bad fault plan: " + detail);
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return ParseError("expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "path_filter") {
      plan.path_filter = value;
      continue;
    }
    char* end = nullptr;
    errno = 0;
    const auto consumed = [&] {
      return errno == 0 && end != value.c_str() && *end == '\0';
    };
    if (key == "read_error_p" || key == "torn_read_p" ||
        key == "latency_p") {
      const double p = std::strtod(value.c_str(), &end);
      if (!consumed()) {
        return ParseError("non-numeric value for '" + key + "': " + value);
      }
      if (key == "read_error_p") {
        plan.read_error_p = p;
      } else if (key == "torn_read_p") {
        plan.torn_read_p = p;
      } else {
        plan.latency_p = p;
      }
    } else if (key == "fail_reads_after") {
      const long long n = std::strtoll(value.c_str(), &end, 10);
      if (!consumed()) {
        return ParseError("non-numeric value for '" + key + "': " + value);
      }
      plan.fail_reads_after = n;
    } else {
      // Unsigned integer keys. Full 64-bit precision matters: a strtod
      // round-trip would silently change seeds above 2^53, and strtoull
      // happily wraps "-1", so the sign is rejected up front.
      if (!value.empty() && (value[0] == '-' || value[0] == '+')) {
        return ParseError("'" + key + "' must be a non-negative integer, "
                          "got " + value);
      }
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (!consumed()) {
        return ParseError("non-numeric value for '" + key + "': " + value);
      }
      if (key == "seed") {
        plan.seed = n;
      } else if (key == "transient") {
        if (n > UINT32_MAX) return ParseError("'transient' out of range");
        plan.transient = static_cast<uint32_t>(n);
      } else if (key == "latency_us") {
        if (n > UINT32_MAX) return ParseError("'latency_us' out of range");
        plan.latency_us = static_cast<uint32_t>(n);
      } else if (key == "write_fail_after") {
        plan.write_fail_after = n;
      } else if (key == "silent_write_loss") {
        plan.silent_write_loss = n != 0;
      } else {
        return ParseError("unknown key '" + key + "'");
      }
    }
  }
  for (const double p :
       {plan.read_error_p, plan.torn_read_p, plan.latency_p}) {
    if (p < 0 || p > 1) return ParseError("probability out of [0,1]");
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  // max_digits10 makes the probability round-trip exact: a fuzzed plan's
  // printed repro line must Parse() back to the identical plan.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "seed=" << seed;
  const auto put_p = [&out](const char* key, double p) {
    if (p > 0) out << ',' << key << '=' << p;
  };
  put_p("read_error_p", read_error_p);
  if (transient != 1) out << ",transient=" << transient;
  put_p("torn_read_p", torn_read_p);
  put_p("latency_p", latency_p);
  if (latency_p > 0 && latency_us != 2000) {
    out << ",latency_us=" << latency_us;
  }
  if (fail_reads_after >= 0) {
    out << ",fail_reads_after=" << fail_reads_after;
  }
  if (write_fail_after != kNoWriteFault) {
    out << ",write_fail_after=" << write_fail_after;
  }
  if (silent_write_loss) out << ",silent_write_loss=1";
  if (!path_filter.empty()) out << ",path_filter=" << path_filter;
  return out.str();
}

namespace {

class FaultInjectingFile : public RandomAccessFile {
 public:
  FaultInjectingFile(std::unique_ptr<RandomAccessFile> base,
                     FaultInjectingEnv* env, std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)),
        path_hash_(HashPath(path_)), faultable_(env->PathFaultable(path_)) {}

  Status Read(uint64_t offset, size_t n, char* dst) const override {
    FaultStats& stats = env_->stats();
    stats.reads.fetch_add(1, std::memory_order_relaxed);
    const uint64_t op = env_->NextReadOp();
    if (!env_->enabled() || !faultable_) return base_->Read(offset, n, dst);
    const FaultPlan& plan = env_->plan();

    if (plan.fail_reads_after >= 0 &&
        static_cast<int64_t>(op) >= plan.fail_reads_after) {
      stats.injected_read_errors.fetch_add(1, std::memory_order_relaxed);
      GlobalFaultCounters().read_errors->Increment();
      return Status::IOError("injected fault at read op #" +
                             std::to_string(op) + " (fault plan " +
                             plan.ToString() + ")");
    }

    const uint64_t latency_key =
        LocationKey(plan.seed, path_hash_, offset, kLatencySalt);
    if (Decide(latency_key, plan.latency_p)) {
      stats.injected_latency.fetch_add(1, std::memory_order_relaxed);
      GlobalFaultCounters().latency->Increment();
      std::this_thread::sleep_for(
          std::chrono::microseconds(plan.latency_us));
    }

    const uint64_t error_key =
        LocationKey(plan.seed, path_hash_, offset, kErrorSalt);
    if (Decide(error_key, plan.read_error_p)) {
      const uint32_t attempt = env_->NextAttempt(error_key);
      if (plan.transient == 0 || attempt <= plan.transient) {
        stats.injected_read_errors.fetch_add(1, std::memory_order_relaxed);
        GlobalFaultCounters().read_errors->Increment();
        return Status::IOError(
            "injected " +
            std::string(plan.transient == 0 ? "persistent" : "transient") +
            " fault at " + path_ + " offset " + std::to_string(offset) +
            " attempt " + std::to_string(attempt) + " (fault plan " +
            plan.ToString() + ")");
      }
    }

    OPT_RETURN_IF_ERROR(base_->Read(offset, n, dst));

    const uint64_t torn_key =
        LocationKey(plan.seed, path_hash_, offset, kTornSalt);
    if (Decide(torn_key, plan.torn_read_p)) {
      const uint32_t attempt = env_->NextAttempt(torn_key);
      if (plan.transient == 0 || attempt <= plan.transient) {
        stats.injected_torn_reads.fetch_add(1, std::memory_order_relaxed);
        GlobalFaultCounters().torn_reads->Increment();
        // Garble the tail quarter deterministically: a torn read that
        // "succeeded" at the syscall layer but whose trailing sectors
        // never made it. Page CRC validation is what must catch this.
        const size_t torn = std::max<size_t>(1, n / 4);
        uint64_t noise = Mix64(torn_key ^ attempt);
        for (size_t i = n - torn; i < n; ++i) {
          noise = Mix64(noise);
          dst[i] = static_cast<char>(noise & 0xFF);
        }
      }
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectingEnv* const env_;
  const std::string path_;
  const uint64_t path_hash_;
  const bool faultable_;
};

class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(std::unique_ptr<WritableFile> base,
                             FaultInjectingEnv* env, std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)),
        faultable_(env->PathFaultable(path_)) {}

  Status Append(Slice data) override {
    FaultStats& stats = env_->stats();
    stats.writes.fetch_add(1, std::memory_order_relaxed);
    const FaultPlan& plan = env_->plan();
    if (!env_->enabled() || !faultable_ ||
        plan.write_fail_after == kNoWriteFault) {
      env_->AdvanceAppended(data.size());
      return base_->Append(data);
    }
    const uint64_t start = env_->AdvanceAppended(data.size());
    const uint64_t limit = plan.write_fail_after;
    if (start + data.size() <= limit) return base_->Append(data);
    // The tear: write only the prefix that "made it to disk" before the
    // simulated crash/device error, drop the rest.
    const size_t keep =
        start >= limit ? 0 : static_cast<size_t>(limit - start);
    if (keep > 0) {
      OPT_RETURN_IF_ERROR(base_->Append(Slice(data.data(), keep)));
    }
    stats.write_bytes_lost.fetch_add(data.size() - keep,
                                     std::memory_order_relaxed);
    stats.injected_write_errors.fetch_add(1, std::memory_order_relaxed);
    GlobalFaultCounters().write_errors->Increment();
    if (plan.silent_write_loss) return Status::OK();
    return Status::IOError("injected write fault at " + path_ +
                           " after " + std::to_string(limit) +
                           " bytes (fault plan " + plan.ToString() + ")");
  }

  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* const env_;
  const std::string path_;
  const bool faultable_;
};

}  // namespace

FaultInjectingEnv::FaultInjectingEnv(Env* base, FaultPlan plan)
    : base_(base), plan_(std::move(plan)) {}

FaultInjectingEnv::~FaultInjectingEnv() = default;

bool FaultInjectingEnv::PathFaultable(const std::string& path) const {
  return plan_.path_filter.empty() ||
         path.find(plan_.path_filter) != std::string::npos;
}

uint32_t FaultInjectingEnv::NextAttempt(uint64_t location_key) {
  std::lock_guard<std::mutex> lock(attempts_mutex_);
  return ++attempts_[location_key];
}

void FaultInjectingEnv::ResetAttempts() {
  std::lock_guard<std::mutex> lock(attempts_mutex_);
  attempts_.clear();
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectingEnv::OpenRandomAccess(const std::string& path) {
  OPT_ASSIGN_OR_RETURN(auto file, base_->OpenRandomAccess(path));
  return std::unique_ptr<RandomAccessFile>(
      new FaultInjectingFile(std::move(file), this, path));
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::OpenWritable(
    const std::string& path) {
  OPT_ASSIGN_OR_RETURN(auto file, base_->OpenWritable(path));
  return std::unique_ptr<WritableFile>(
      new FaultInjectingWritableFile(std::move(file), this, path));
}

Result<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

}  // namespace opt
