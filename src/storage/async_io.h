// Asynchronous page-read engine — the paper's AsyncRead(pid, Callback,
// Args) primitive (§3.2). A pool of I/O worker threads emulates the
// FlashSSD's internal parallelism (queue depth); on completion of a read
// the engine enqueues the registered callback on a *completion queue*
// that the framework's callback thread drains. Decoupling completion
// delivery (a queue) from callback execution (whoever pops) is what makes
// the paper's thread morphing possible: when the main thread runs out of
// internal work it simply starts popping completions too.
#ifndef OPT_STORAGE_ASYNC_IO_H_
#define OPT_STORAGE_ASYNC_IO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "util/blocking_queue.h"
#include "util/status.h"

namespace opt {

/// Counts in-flight operations; Wait() returns when the count drops to
/// zero. Callbacks may Add() more work before their own Done() (the
/// chained reads of Algorithm 9), so the count can rise and fall freely.
class CompletionGroup {
 public:
  void Add(uint32_t n = 1) {
    count_.fetch_add(n, std::memory_order_acq_rel);
  }

  void Done() {
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      cv_.notify_all();
    }
  }

  bool Finished() const {
    return count_.load(std::memory_order_acquire) == 0;
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return Finished(); });
  }

 private:
  std::atomic<uint32_t> count_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// A unit of post-I/O work, executed by whoever drains the queue.
using CompletionTask = std::function<void()>;
using CompletionQueue = BlockingQueue<CompletionTask>;

/// A read of `page_count` consecutive pages starting at `first_pid`, each
/// into its own (already pinned) frame. Multi-page requests carry an
/// adjacency list that spans pages.
struct ReadRequest {
  PageFile* file = nullptr;
  uint32_t first_pid = 0;
  uint32_t page_count = 1;
  std::vector<Frame*> frames;  // page_count entries, pre-pinned
  /// Runs on a completion-queue drainer after all pages are read.
  std::function<void(const Status&)> callback;
  CompletionQueue* completion_queue = nullptr;
  /// When set, the I/O worker itself publishes every frame — validating
  /// the page CRC if `validate` — via MarkValid/MarkFailed *before*
  /// queueing the completion. Required when `frames` live in a pool
  /// shared with concurrent queries: their WaitValid() must never depend
  /// on this query draining its completion queue.
  BufferPool* pool = nullptr;
  bool validate = false;
  uint32_t page_size = 0;  // for validation; defaults to file page size
};

struct AsyncIoStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> pages_read{0};
  std::atomic<uint64_t> read_errors{0};
  void Reset() {
    requests = 0;
    pages_read = 0;
    read_errors = 0;
  }
};

class AsyncIoEngine {
 public:
  /// `num_workers` concurrent I/O threads (the emulated SSD queue depth).
  explicit AsyncIoEngine(uint32_t num_workers);
  ~AsyncIoEngine();

  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;

  /// Submits an asynchronous read. On completion, pushes a task invoking
  /// request.callback(status) onto request.completion_queue.
  void Submit(ReadRequest request);

  AsyncIoStats& stats() { return stats_; }
  uint32_t num_workers() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  void WorkerLoop();

  BlockingQueue<ReadRequest> submissions_;
  std::vector<std::thread> workers_;
  AsyncIoStats stats_;
};

}  // namespace opt

#endif  // OPT_STORAGE_ASYNC_IO_H_
