// Asynchronous page-read engine — the paper's AsyncRead(pid, Callback,
// Args) primitive (§3.2). A pool of I/O worker threads emulates the
// FlashSSD's internal parallelism (queue depth); on completion of a read
// the engine enqueues the registered callback on a *completion queue*
// that the framework's callback thread drains. Decoupling completion
// delivery (a queue) from callback execution (whoever pops) is what makes
// the paper's thread morphing possible: when the main thread runs out of
// internal work it simply starts popping completions too.
#ifndef OPT_STORAGE_ASYNC_IO_H_
#define OPT_STORAGE_ASYNC_IO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "util/blocking_queue.h"
#include "util/status.h"

namespace opt {

/// Counts in-flight operations; Wait() returns when the count drops to
/// zero. Callbacks may Add() more work before their own Done() (the
/// chained reads of Algorithm 9), so the count can rise and fall freely.
class CompletionGroup {
 public:
  void Add(uint32_t n = 1) {
    count_.fetch_add(n, std::memory_order_acq_rel);
  }

  void Done() {
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      cv_.notify_all();
    }
  }

  bool Finished() const {
    return count_.load(std::memory_order_acquire) == 0;
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return Finished(); });
  }

 private:
  std::atomic<uint32_t> count_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// A unit of post-I/O work, executed by whoever drains the queue.
using CompletionTask = std::function<void()>;
using CompletionQueue = BlockingQueue<CompletionTask>;

/// Bounded retry with exponential backoff for page reads. Transient
/// device faults (EIO that heals, torn reads caught by CRC validation)
/// are retried inside the I/O worker before anything is published to
/// waiters; only exhausted budgets surface as errors. Backoff doubles
/// from `backoff_base_micros` up to `backoff_max_micros` with
/// deterministic jitter (hashed from page id and attempt, so reruns of
/// a seeded fault plan behave identically). `op_deadline_micros` caps
/// one page's total read time including retries — past it the op gives
/// up even if attempts remain.
struct IoRetryPolicy {
  uint32_t max_attempts = 4;
  uint32_t backoff_base_micros = 100;
  uint32_t backoff_max_micros = 20000;
  uint64_t op_deadline_micros = 2000000;  // 0 = no per-op deadline

  /// A policy that fails immediately (the pre-retry behavior).
  static IoRetryPolicy None() {
    IoRetryPolicy policy;
    policy.max_attempts = 1;
    return policy;
  }
};

/// A read of `page_count` consecutive pages starting at `first_pid`, each
/// into its own (already pinned) frame. Multi-page requests carry an
/// adjacency list that spans pages.
struct ReadRequest {
  PageFile* file = nullptr;
  uint32_t first_pid = 0;
  uint32_t page_count = 1;
  std::vector<Frame*> frames;  // page_count entries, pre-pinned
  /// Runs on a completion-queue drainer after all pages are read.
  std::function<void(const Status&)> callback;
  CompletionQueue* completion_queue = nullptr;
  /// When set, the I/O worker itself publishes every frame — validating
  /// the page CRC if `validate` — via MarkValid/MarkFailed *before*
  /// queueing the completion. Required when `frames` live in a pool
  /// shared with concurrent queries: their WaitValid() must never depend
  /// on this query draining its completion queue. The engine also holds
  /// its own pin on each frame from Submit until publication, so a
  /// frame whose page was evicted by a WaitValid timeout (and whose
  /// other pins all dropped) can never be recycled to a different page
  /// while the worker still writes into it.
  BufferPool* pool = nullptr;
  bool validate = false;
  uint32_t page_size = 0;  // for validation; defaults to file page size
  /// When set, retry/giveup/error outcomes of this request's pages are
  /// recorded as flight events for the owning query's postmortem tail.
  /// Must outlive the request's completion.
  FlightRecorder* flight = nullptr;
};

struct AsyncIoStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> pages_read{0};
  /// Final failures only: a page whose retry budget ran out (each also
  /// counts one `giveups`) or a non-retryable error (OutOfRange,
  /// InvalidArgument, ...). Individual failed attempts count `retries`.
  std::atomic<uint64_t> read_errors{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> giveups{0};
  /// Total wall-micros spent reading successful pages (retries
  /// included): read_micros / pages_read is the measured per-page read
  /// latency that fits the cost model's `c` (DESIGN.md §9).
  std::atomic<uint64_t> read_micros{0};
  void Reset() {
    requests = 0;
    pages_read = 0;
    read_errors = 0;
    retries = 0;
    giveups = 0;
    read_micros = 0;
  }
};

class AsyncIoEngine {
 public:
  /// `num_workers` concurrent I/O threads (the emulated SSD queue depth).
  explicit AsyncIoEngine(uint32_t num_workers,
                         const IoRetryPolicy& retry = IoRetryPolicy());
  ~AsyncIoEngine();

  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;

  /// Submits an asynchronous read. On completion, pushes a task invoking
  /// request.callback(status) onto request.completion_queue.
  void Submit(ReadRequest request);

  AsyncIoStats& stats() { return stats_; }
  uint32_t num_workers() const { return static_cast<uint32_t>(workers_.size()); }

  const IoRetryPolicy& retry_policy() const { return retry_; }

 private:
  void WorkerLoop();
  /// One page's read + (optional) CRC validation under the retry policy.
  Status ReadPageWithRetry(const ReadRequest& request, uint32_t index);

  const IoRetryPolicy retry_;
  BlockingQueue<ReadRequest> submissions_;
  std::vector<std::thread> workers_;
  AsyncIoStats stats_;
};

}  // namespace opt

#endif  // OPT_STORAGE_ASYNC_IO_H_
