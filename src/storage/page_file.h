// A file of fixed-size pages with thread-safe positional reads.
#ifndef OPT_STORAGE_PAGE_FILE_H_
#define OPT_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"
#include "util/status.h"

namespace opt {

class PageFile {
 public:
  static Result<std::unique_ptr<PageFile>> Open(Env* env,
                                                const std::string& path,
                                                uint32_t page_size);

  /// Reads page `pid` into `dst` (page_size bytes). Thread safe.
  Status ReadPage(uint32_t pid, char* dst) const;

  uint32_t num_pages() const { return num_pages_; }
  uint32_t page_size() const { return page_size_; }
  const std::string& path() const { return path_; }

 private:
  PageFile(std::unique_ptr<RandomAccessFile> file, std::string path,
           uint32_t page_size, uint32_t num_pages)
      : file_(std::move(file)), path_(std::move(path)),
        page_size_(page_size), num_pages_(num_pages) {}

  std::unique_ptr<RandomAccessFile> file_;
  std::string path_;
  uint32_t page_size_;
  uint32_t num_pages_;
};

/// Appends finished page images sequentially.
class PageFileWriter {
 public:
  static Result<std::unique_ptr<PageFileWriter>> Create(
      Env* env, const std::string& path, uint32_t page_size);

  Status Append(const char* page);
  Status Finish();
  uint32_t pages_written() const { return pages_written_; }

 private:
  PageFileWriter(std::unique_ptr<WritableFile> file, uint32_t page_size)
      : file_(std::move(file)), page_size_(page_size) {}

  std::unique_ptr<WritableFile> file_;
  uint32_t page_size_;
  uint32_t pages_written_ = 0;
};

}  // namespace opt

#endif  // OPT_STORAGE_PAGE_FILE_H_
