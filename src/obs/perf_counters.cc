#include "obs/perf_counters.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "util/logging.h"
#include "util/metrics.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace opt {

namespace {

// Slot indices: the order events are opened into the group, which is
// also the order values[] comes back from a PERF_FORMAT_GROUP read.
enum Slot : int {
  kSlotCycles = 0,
  kSlotInstructions,
  kSlotLlcLoads,
  kSlotLlcMisses,
  kSlotBranchMisses,
  kSlotTaskClock,
  kSlotPageFaults,
  kSlotContextSwitches,
  kNumSlots,
};

constexpr uint32_t SlotMask(Slot s) { return 1u << static_cast<int>(s); }

struct EventSpec {
  Slot slot;
  uint32_t type;
  uint64_t config;
};

#if defined(__linux__)
// Hardware rung: cycles leads so the group lives or dies with the PMU.
// task-clock rides along so wall-scheduling time comes from the same
// atomic read. LLC events use the cache encoding (LL | READ | result).
constexpr uint64_t kLlcRead =
    PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8);
const EventSpec kHwEvents[] = {
    {kSlotCycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {kSlotInstructions, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {kSlotLlcLoads, PERF_TYPE_HW_CACHE,
     kLlcRead | (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16)},
    {kSlotLlcMisses, PERF_TYPE_HW_CACHE,
     kLlcRead | (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {kSlotBranchMisses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {kSlotTaskClock, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
};

// Software rung: still perf_event_open (so time_enabled/time_running
// stay meaningful) but no PMU required. task-clock leads.
const EventSpec kSwEvents[] = {
    {kSlotTaskClock, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {kSlotPageFaults, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
    {kSlotContextSwitches, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_CONTEXT_SWITCHES},
};

int PerfEventOpen(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = spec.type;
  attr.size = sizeof(attr);
  attr.config = spec.config;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // Counting user work only keeps us openable under
  // perf_event_paranoid=2 (the common container setting).
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.inherit = 0;
#if defined(PERF_FLAG_FD_CLOEXEC)
  const unsigned long flags = PERF_FLAG_FD_CLOEXEC;
#else
  const unsigned long flags = 8;  // PERF_FLAG_FD_CLOEXEC since Linux 3.14.
#endif
  return static_cast<int>(syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, flags));
}
#endif  // __linux__

struct BackendConfig {
  PerfBackend backend = PerfBackend::kNone;
  uint32_t supported = 0;
};

std::mutex g_resolve_mu;
std::atomic<uint32_t> g_generation{0};  // 0 = unresolved
BackendConfig g_config;

// Tries to open the full group for the calling thread. On success the
// fds stay open and are handed to the caller (probe threads close them;
// measurement threads keep them). Leader failure → whole rung fails.
struct OpenGroup {
  int leader = -1;
  // fds[i] owns the fd whose value lands in read-order position i;
  // slot_order[i] names which PerfReading field that is.
  std::vector<int> fds;
  std::vector<Slot> slot_order;
  uint32_t supported = 0;

  void Close() {
#if defined(__linux__)
    for (int fd : fds) ::close(fd);
#endif
    fds.clear();
    slot_order.clear();
    leader = -1;
    supported = 0;
  }
};

#if defined(__linux__)
bool TryOpenGroup(const EventSpec* events, int n, OpenGroup* out) {
  out->Close();
  for (int i = 0; i < n; ++i) {
    const int fd = PerfEventOpen(events[i], out->leader);
    if (fd < 0) {
      if (i == 0) return false;  // leader must open
      continue;  // member absent on this PMU; keep counting the rest
    }
    if (out->leader == -1) out->leader = fd;
    out->fds.push_back(fd);
    out->slot_order.push_back(events[i].slot);
    out->supported |= SlotMask(events[i].slot);
  }
  if (ioctl(out->leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ioctl(out->leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    out->Close();
    return false;
  }
  return true;
}
#endif

BackendConfig ResolveBackend() {
  BackendConfig cfg;
  const char* env = std::getenv("OPT_PERF_BACKEND");
  std::string want = env == nullptr ? "auto" : env;
  if (want != "auto" && want != "perf" && want != "sw" && want != "rusage" &&
      want != "none" && !want.empty()) {
    OPT_LOG(Warn) << "unknown OPT_PERF_BACKEND=" << want << "; using auto";
    want = "auto";
  }
  if (want.empty()) want = "auto";
  if (want == "none") {
    cfg.backend = PerfBackend::kNone;
    return cfg;
  }
  if (want == "rusage") {
    cfg.backend = PerfBackend::kRusage;
    cfg.supported =
        kPerfHasTaskClock | kPerfHasPageFaults | kPerfHasContextSwitches;
    return cfg;
  }
#if defined(__linux__)
  // Probe rungs on this thread; the probe group is closed immediately —
  // every measuring thread opens its own copy lazily.
  OpenGroup probe;
  if ((want == "auto" || want == "perf") &&
      TryOpenGroup(kHwEvents, static_cast<int>(std::size(kHwEvents)),
                   &probe)) {
    cfg.backend = PerfBackend::kPerfEventHw;
    cfg.supported = probe.supported;
    probe.Close();
    return cfg;
  }
  if ((want == "auto" || want == "perf" || want == "sw") &&
      TryOpenGroup(kSwEvents, static_cast<int>(std::size(kSwEvents)),
                   &probe)) {
    cfg.backend = PerfBackend::kPerfEventSw;
    cfg.supported = probe.supported;
    probe.Close();
    return cfg;
  }
#endif
  // perf_event_open denied outright (paranoid/seccomp): honest rusage.
  cfg.backend = PerfBackend::kRusage;
  cfg.supported =
      kPerfHasTaskClock | kPerfHasPageFaults | kPerfHasContextSwitches;
  return cfg;
}

const BackendConfig& Config() {
  if (g_generation.load(std::memory_order_acquire) == 0) {
    std::lock_guard<std::mutex> lock(g_resolve_mu);
    if (g_generation.load(std::memory_order_relaxed) == 0) {
      g_config = ResolveBackend();
      OPT_LOG(Info) << "perf counters: backend="
                    << PerfBackendName(g_config.backend) << " events=0x"
                    << std::hex << g_config.supported;
      g_generation.store(1, std::memory_order_release);
    }
  }
  return g_config;
}

// Per-thread fd group, reopened when the process backend changes
// generation (test reinit). Closed at thread exit by the destructor.
struct ThreadPerfState {
  uint32_t generation = 0;
  PerfBackend backend = PerfBackend::kNone;
  OpenGroup group;

  ~ThreadPerfState() { group.Close(); }
};

thread_local ThreadPerfState t_state;

#if defined(__linux__)
PerfReading ReadGroup(const OpenGroup& group) {
  PerfReading r;
  // Layout: nr, time_enabled, time_running, value[nr] (insertion order).
  uint64_t buf[3 + kNumSlots] = {0};
  const ssize_t want = static_cast<ssize_t>(
      (3 + group.slot_order.size()) * sizeof(uint64_t));
  const ssize_t got = ::read(group.leader, buf, sizeof(buf));
  if (got < want) return r;
  r.time_enabled_ns = buf[1];
  r.time_running_ns = buf[2];
  const uint64_t nr = buf[0];
  for (size_t i = 0; i < group.slot_order.size() && i < nr; ++i) {
    const uint64_t v = buf[3 + i];
    switch (group.slot_order[i]) {
      case kSlotCycles: r.cycles = v; break;
      case kSlotInstructions: r.instructions = v; break;
      case kSlotLlcLoads: r.llc_loads = v; break;
      case kSlotLlcMisses: r.llc_misses = v; break;
      case kSlotBranchMisses: r.branch_misses = v; break;
      case kSlotTaskClock: r.task_clock_ns = v; break;
      case kSlotPageFaults: r.page_faults = v; break;
      case kSlotContextSwitches: r.context_switches = v; break;
      default: break;
    }
  }
  return r;
}

PerfReading ReadRusage() {
  PerfReading r;
  rusage ru;
#if defined(RUSAGE_THREAD)
  const int who = RUSAGE_THREAD;
#else
  const int who = RUSAGE_SELF;
#endif
  if (getrusage(who, &ru) != 0) return r;
  const uint64_t user_ns = static_cast<uint64_t>(ru.ru_utime.tv_sec) *
                               1000000000ull +
                           static_cast<uint64_t>(ru.ru_utime.tv_usec) * 1000ull;
  const uint64_t sys_ns = static_cast<uint64_t>(ru.ru_stime.tv_sec) *
                              1000000000ull +
                          static_cast<uint64_t>(ru.ru_stime.tv_usec) * 1000ull;
  r.task_clock_ns = user_ns + sys_ns;
  r.page_faults =
      static_cast<uint64_t>(ru.ru_minflt) + static_cast<uint64_t>(ru.ru_majflt);
  r.context_switches =
      static_cast<uint64_t>(ru.ru_nvcsw) + static_cast<uint64_t>(ru.ru_nivcsw);
  // rusage has no scheduling window; report as fully counted.
  r.time_enabled_ns = r.task_clock_ns;
  r.time_running_ns = r.task_clock_ns;
  return r;
}
#endif  // __linux__

}  // namespace

const char* PerfBackendName(PerfBackend backend) {
  switch (backend) {
    case PerfBackend::kNone: return "none";
    case PerfBackend::kRusage: return "rusage";
    case PerfBackend::kPerfEventSw: return "perf_event_sw";
    case PerfBackend::kPerfEventHw: return "perf_event_hw";
  }
  return "unknown";
}

void PerfReading::Accumulate(const PerfReading& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  llc_loads += other.llc_loads;
  llc_misses += other.llc_misses;
  branch_misses += other.branch_misses;
  task_clock_ns += other.task_clock_ns;
  page_faults += other.page_faults;
  context_switches += other.context_switches;
  time_enabled_ns += other.time_enabled_ns;
  time_running_ns += other.time_running_ns;
}

PerfReading PerfReading::Delta(const PerfReading& after,
                               const PerfReading& before) {
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  PerfReading d;
  d.cycles = sub(after.cycles, before.cycles);
  d.instructions = sub(after.instructions, before.instructions);
  d.llc_loads = sub(after.llc_loads, before.llc_loads);
  d.llc_misses = sub(after.llc_misses, before.llc_misses);
  d.branch_misses = sub(after.branch_misses, before.branch_misses);
  d.task_clock_ns = sub(after.task_clock_ns, before.task_clock_ns);
  d.page_faults = sub(after.page_faults, before.page_faults);
  d.context_switches = sub(after.context_switches, before.context_switches);
  d.time_enabled_ns = sub(after.time_enabled_ns, before.time_enabled_ns);
  d.time_running_ns = sub(after.time_running_ns, before.time_running_ns);
  return d;
}

PerfBackend ActivePerfBackend() { return Config().backend; }

uint32_t SupportedPerfEvents() { return Config().supported; }

PerfReading ReadThreadPerfCounters() {
  const BackendConfig& cfg = Config();
  const uint32_t gen = g_generation.load(std::memory_order_acquire);
  if (t_state.generation != gen) {
    t_state.group.Close();
    t_state.generation = gen;
    t_state.backend = cfg.backend;
#if defined(__linux__)
    if (cfg.backend == PerfBackend::kPerfEventHw &&
        !TryOpenGroup(kHwEvents, static_cast<int>(std::size(kHwEvents)),
                      &t_state.group)) {
      // Per-thread open failed even though the probe succeeded (fd
      // limits, cgroup changes): drop this thread to the rusage rung.
      t_state.backend = PerfBackend::kRusage;
    }
    if (cfg.backend == PerfBackend::kPerfEventSw &&
        !TryOpenGroup(kSwEvents, static_cast<int>(std::size(kSwEvents)),
                      &t_state.group)) {
      t_state.backend = PerfBackend::kRusage;
    }
#endif
  }
#if defined(__linux__)
  switch (t_state.backend) {
    case PerfBackend::kPerfEventHw:
    case PerfBackend::kPerfEventSw:
      return ReadGroup(t_state.group);
    case PerfBackend::kRusage:
      return ReadRusage();
    case PerfBackend::kNone:
      return PerfReading{};
  }
#endif
  return PerfReading{};
}

void PerfAccumulator::Add(const PerfReading& d) {
  cycles_.fetch_add(d.cycles, std::memory_order_relaxed);
  instructions_.fetch_add(d.instructions, std::memory_order_relaxed);
  llc_loads_.fetch_add(d.llc_loads, std::memory_order_relaxed);
  llc_misses_.fetch_add(d.llc_misses, std::memory_order_relaxed);
  branch_misses_.fetch_add(d.branch_misses, std::memory_order_relaxed);
  task_clock_ns_.fetch_add(d.task_clock_ns, std::memory_order_relaxed);
  page_faults_.fetch_add(d.page_faults, std::memory_order_relaxed);
  context_switches_.fetch_add(d.context_switches, std::memory_order_relaxed);
  time_enabled_ns_.fetch_add(d.time_enabled_ns, std::memory_order_relaxed);
  time_running_ns_.fetch_add(d.time_running_ns, std::memory_order_relaxed);
}

PerfReading PerfAccumulator::Snapshot() const {
  PerfReading r;
  r.cycles = cycles_.load(std::memory_order_relaxed);
  r.instructions = instructions_.load(std::memory_order_relaxed);
  r.llc_loads = llc_loads_.load(std::memory_order_relaxed);
  r.llc_misses = llc_misses_.load(std::memory_order_relaxed);
  r.branch_misses = branch_misses_.load(std::memory_order_relaxed);
  r.task_clock_ns = task_clock_ns_.load(std::memory_order_relaxed);
  r.page_faults = page_faults_.load(std::memory_order_relaxed);
  r.context_switches = context_switches_.load(std::memory_order_relaxed);
  r.time_enabled_ns = time_enabled_ns_.load(std::memory_order_relaxed);
  r.time_running_ns = time_running_ns_.load(std::memory_order_relaxed);
  return r;
}

void PerfAccumulator::Reset() {
  cycles_.store(0, std::memory_order_relaxed);
  instructions_.store(0, std::memory_order_relaxed);
  llc_loads_.store(0, std::memory_order_relaxed);
  llc_misses_.store(0, std::memory_order_relaxed);
  branch_misses_.store(0, std::memory_order_relaxed);
  task_clock_ns_.store(0, std::memory_order_relaxed);
  page_faults_.store(0, std::memory_order_relaxed);
  context_switches_.store(0, std::memory_order_relaxed);
  time_enabled_ns_.store(0, std::memory_order_relaxed);
  time_running_ns_.store(0, std::memory_order_relaxed);
}

PerfScope::PerfScope(PerfAccumulator* acc) : acc_(acc), stopped_(acc == nullptr) {
  if (acc_ != nullptr) start_ = ReadThreadPerfCounters();
}

PerfScope::~PerfScope() { Stop(); }

PerfReading PerfScope::Stop() {
  if (stopped_) return PerfReading{};
  stopped_ = true;
  const PerfReading delta =
      PerfReading::Delta(ReadThreadPerfCounters(), start_);
  acc_->Add(delta);
  return delta;
}

void PublishPerfBackendMetrics() {
  const BackendConfig& cfg = Config();
  Metrics().GetGauge("perf.backend")->Set(static_cast<int64_t>(cfg.backend));
  Metrics().GetGauge("perf.supported_events")
      ->Set(static_cast<int64_t>(cfg.supported));
}

std::string PerfBackendStatsText() {
  const BackendConfig& cfg = Config();
  std::string out = "perf.backend=";
  out += PerfBackendName(cfg.backend);
  out += "\nperf.events=";
  bool first = true;
  auto add = [&](uint32_t bit, const char* name) {
    if ((cfg.supported & bit) == 0) return;
    if (!first) out += ",";
    out += name;
    first = false;
  };
  add(kPerfHasCycles, "cycles");
  add(kPerfHasInstructions, "instructions");
  add(kPerfHasLlcLoads, "llc_loads");
  add(kPerfHasLlcMisses, "llc_misses");
  add(kPerfHasBranchMisses, "branch_misses");
  add(kPerfHasTaskClock, "task_clock");
  add(kPerfHasPageFaults, "page_faults");
  add(kPerfHasContextSwitches, "context_switches");
  if (first) out += "none";
  out += "\n";
  return out;
}

void ReinitPerfCountersForTest() {
  std::lock_guard<std::mutex> lock(g_resolve_mu);
  g_config = ResolveBackend();
  // Bump (skipping 0 = unresolved) so every thread reopens lazily.
  uint32_t gen = g_generation.load(std::memory_order_relaxed);
  g_generation.store(gen == 0 ? 1 : gen + 1, std::memory_order_release);
}

}  // namespace opt
