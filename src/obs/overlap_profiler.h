// Role-timeline sampler measuring the paper's two-level overlap.
//
// OPT's claim (§3) is that a run hides its I/O twice over: *macro*
// overlap — internal and external triangulation proceeding on different
// threads at the same time — and *micro* overlap — CPU intersection work
// proceeding while SSD reads are in flight. Counters and latency
// histograms cannot see either: they record how much happened, not
// whether things happened *simultaneously*. This profiler samples.
//
// Worker threads register a per-thread slot (ThreadScope) and publish
// their current role into it with one relaxed atomic store at each role
// transition; a dedicated sampler thread wakes every `period_micros`,
// snapshots every slot plus the process-wide `io.inflight_depth` gauge
// and the `io.pages_read` counter, and folds each snapshot into overlap
// tallies:
//
//   macro sample: ≥1 thread in {internal, morphed_internal} AND
//                 ≥1 thread in {external, morphed_external}
//   micro sample: ≥1 thread in any CPU role AND (≥1 read in flight OR
//                 pages completed during the sample window)
//
// The pages-read delta makes micro overlap robust on fast devices whose
// reads rarely straddle a sampling instant. Both I/O signals are
// process-global, so concurrent queries see each other's reads; run the
// profiler on an otherwise idle process for per-run attribution.
//
// Stall guard: a slot whose last role update is older than
// `stall_periods` sampling periods counts as `stalled` (and bumps the
// `profiler.stalled_samples` counter) instead of inflating its last
// role's share — a suspended or descheduled thread is not evidence of
// CPU activity.
//
// After Stop(), Report() returns the folded OverlapReport, including a
// cost-model block the caller (opt_runner) fills in from measured I/O
// latency: Cost(OPT_serial) = Cost(ideal) + c(Δex_io − Δin_io), §3.3.
#ifndef OPT_OBS_OVERLAP_PROFILER_H_
#define OPT_OBS_OVERLAP_PROFILER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace opt {

enum class ThreadRole : uint8_t {
  kIdle = 0,
  kInternal = 1,
  kExternal = 2,
  kMorphedInternal = 3,  // an external-home thread stealing internal work
  kMorphedExternal = 4,  // an internal-home thread draining external work
  kIoWait = 5,
};

inline constexpr size_t kNumThreadRoles = 6;

const char* ThreadRoleName(ThreadRole role);

/// Cost(OPT_serial) = Cost(ideal) + c(Δex_io − Δin_io) with c fitted
/// from measured page-read latency. All in seconds / pages.
struct OverlapCostModel {
  double c_seconds_per_page = 0.0;
  uint64_t delta_in_pages = 0;  // internal reads saved by the cache
  uint64_t delta_ex_pages = 0;  // external reads actually performed
  double ideal_seconds = 0.0;       // CPU + one sequential pass of reads
  double predicted_seconds = 0.0;   // ideal + c(Δex − Δin)
  double measured_seconds = 0.0;
  double residual_seconds = 0.0;    // measured − predicted
};

struct OverlapReport {
  uint64_t samples = 0;
  uint64_t micro_overlap_samples = 0;
  uint64_t macro_overlap_samples = 0;
  uint64_t cpu_active_samples = 0;   // ≥1 non-idle, non-io-wait role
  uint64_t io_inflight_samples = 0;  // ≥1 read in flight (or completed)
  uint64_t stalled_samples = 0;      // slot-samples discarded as stale
  uint64_t morph_events = 0;
  std::array<uint64_t, kNumThreadRoles> role_samples{};  // slot-samples
  uint64_t period_micros = 0;
  OverlapCostModel cost;

  double MicroOverlapFraction() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(micro_overlap_samples) /
                              static_cast<double>(samples);
  }
  double MacroOverlapFraction() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(macro_overlap_samples) /
                              static_cast<double>(samples);
  }
};

class OverlapProfiler {
 public:
  struct Options {
    uint64_t period_micros = 1000;
    uint32_t max_threads = 64;
    uint32_t stall_periods = 10;
    /// Emit "overlap.cpu_roles" / "overlap.io_inflight" counter tracks
    /// into the active trace recorder (if any) at each sample.
    bool trace_counters = true;
  };

  OverlapProfiler();
  explicit OverlapProfiler(const Options& options);
  ~OverlapProfiler();

  OverlapProfiler(const OverlapProfiler&) = delete;
  OverlapProfiler& operator=(const OverlapProfiler&) = delete;

  /// Joins the sampler thread. Idempotent. Report() is only meaningful
  /// after Stop().
  void Stop();

  OverlapReport Report() const;

  /// Count one thread-morph event (caller also records a trace instant
  /// and a flight-recorder event; this keeps the report's count in
  /// lockstep with those).
  void RecordMorph() { morphs_.fetch_add(1, std::memory_order_relaxed); }

  /// Registers the calling thread into a profiler slot for the scope's
  /// lifetime. `home` is the thread's native role: SetWork() uses it to
  /// distinguish morphed from native work. A null profiler makes every
  /// operation a no-op, so instrumentation sites need no `if (profile)`.
  class ThreadScope {
   public:
    ThreadScope(OverlapProfiler* profiler, ThreadRole home);
    ~ThreadScope();

    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    OverlapProfiler* profiler_ = nullptr;
    size_t slot_index_ = 0;
  };

  /// Publish the calling thread's current role. No-op when the thread
  /// has no active ThreadScope.
  static void SetRole(ThreadRole role);

  /// Publish "this thread is now doing internal/external CPU work",
  /// resolving to a morphed role when it differs from the thread's home
  /// role (external-home thread doing internal work → morphed_internal,
  /// and vice versa). No-op without an active ThreadScope.
  static void SetWork(bool internal_work);

 private:
  struct Slot {
    std::atomic<bool> in_use{false};
    std::atomic<uint8_t> role{0};
    std::atomic<uint64_t> last_update_micros{0};
    ThreadRole home = ThreadRole::kIdle;
  };

  void SamplerLoop();
  uint64_t NowMicros() const;

  const Options options_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> morphs_{0};
  // Coarse clock advanced by the sampler each period. SetRole() stamps
  // slots from this instead of calling clock_gettime — role updates sit
  // in per-page hot loops, and the stall guard only needs timestamps at
  // period granularity anyway.
  std::atomic<uint64_t> coarse_now_micros_{0};

  // Tallies owned by the sampler thread while running; read by Report()
  // only after Stop() joins.
  OverlapReport report_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread sampler_;
  const std::chrono::steady_clock::time_point origin_;
};

}  // namespace opt

#endif  // OPT_OBS_OVERLAP_PROFILER_H_
