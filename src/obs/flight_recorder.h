// Per-query flight recorder: a fixed-capacity lock-free ring of small
// structured events (fetch outcomes, retries, morphs, degradation,
// cancellation). Writers are the query's worker threads and the async
// I/O workers; they only ever pay two atomic stores per event, so the
// recorder is cheap enough to leave on for every query. The ring holds
// the *last* `capacity` events — exactly the tail a postmortem needs
// when a query comes back degraded.
//
// The reader (Tail) runs after the fact, or concurrently for a live
// dump: each slot carries a sequence word that is zeroed before the
// payload is overwritten and set to the (ticket+1) afterwards, so a
// reader can detect a slot that changed under it and skip it instead of
// reporting a torn event.
#ifndef OPT_OBS_FLIGHT_RECORDER_H_
#define OPT_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace opt {

enum class FlightEventType : uint8_t {
  kNone = 0,
  kFetchHit = 1,        // a = pid
  kFetchInFlight = 2,   // a = pid
  kFetchMiss = 3,       // a = pid
  kIoRetry = 4,         // a = pid, b = attempt
  kIoGiveup = 5,        // a = pid, b = status code
  kIoError = 6,         // a = pid, b = status code
  kWaitTimeout = 7,     // a = pid
  kMorphToExternal = 8,
  kMorphStealInternal = 9,
  kDegrade = 10,        // a = status code
  kCancel = 11,
};

const char* FlightEventTypeName(FlightEventType type);

struct FlightEvent {
  uint64_t t_micros = 0;  // since recorder construction
  FlightEventType type = FlightEventType::kNone;
  uint64_t a = 0;
  uint64_t b = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (min 8).
  explicit FlightRecorder(size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Lock-free, safe from any number of concurrent threads.
  void Record(FlightEventType type, uint64_t a = 0, uint64_t b = 0);

  /// The most recent events, oldest first, at most `max_events` of them.
  /// Safe to call concurrently with writers: slots being overwritten at
  /// the moment of the read are skipped rather than returned torn.
  std::vector<FlightEvent> Tail(size_t max_events = SIZE_MAX) const;

  /// Total events ever recorded (including ones the ring has dropped).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// Microseconds since this recorder was constructed (steady clock).
  uint64_t NowMicros() const;

  /// Distributed-tracing correlation: the owning query's propagated
  /// trace id (0 = untraced). Set once by the scheduler when the query
  /// starts; readable concurrently by whoever renders the tail.
  void set_trace_id(uint64_t trace_id) {
    trace_id_.store(trace_id, std::memory_order_relaxed);
  }
  uint64_t trace_id() const {
    return trace_id_.load(std::memory_order_relaxed);
  }

  /// Human-readable multi-line rendering, e.g. for the log. With a
  /// nonzero trace id, every line carries a [trace=<hex>] prefix so log
  /// greps and the assembled trace tree correlate.
  static std::string Render(const std::vector<FlightEvent>& events,
                            uint64_t trace_id = 0);

 private:
  struct Slot {
    /// 0 = empty/being-written; otherwise ticket+1 of the occupant.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> t_and_type{0};  // (t_micros << 8) | type
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  const size_t capacity_;  // power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};  // ticket counter
  std::atomic<uint64_t> trace_id_{0};
  const std::chrono::steady_clock::time_point origin_;
};

}  // namespace opt

#endif  // OPT_OBS_FLIGHT_RECORDER_H_
