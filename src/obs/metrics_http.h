// Minimal plain-HTTP scrape endpoint for the Prometheus exposition
// text: one listener thread, one short-lived handler thread per
// connection, GET /metrics answered with whatever the body callback
// renders at scrape time. Deliberately not a web server — no keep-alive,
// no TLS, no routing beyond /metrics — just enough for `curl` and a
// Prometheus scrape job against `opt_server --metrics-port` /
// `opt_router --metrics-port`.
#ifndef OPT_OBS_METRICS_HTTP_H_
#define OPT_OBS_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace opt {

class MetricsHttpServer {
 public:
  /// `body` is invoked per scrape on the handler thread; it must be
  /// thread-safe (registry snapshots are).
  explicit MetricsHttpServer(std::function<std::string()> body);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, see port()) and
  /// starts the accept loop.
  Status Start(uint16_t port);
  /// Actual bound port once Start succeeded.
  uint16_t port() const { return port_; }
  /// Stops accepting and joins every handler. Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  const std::function<std::string()> body_;
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mutex_;
  std::vector<std::thread> handlers_;
  bool stopped_ = false;
};

}  // namespace opt

#endif  // OPT_OBS_METRICS_HTTP_H_
