#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

namespace opt {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kNone:
      return "none";
    case FlightEventType::kFetchHit:
      return "fetch.hit";
    case FlightEventType::kFetchInFlight:
      return "fetch.inflight";
    case FlightEventType::kFetchMiss:
      return "fetch.miss";
    case FlightEventType::kIoRetry:
      return "io.retry";
    case FlightEventType::kIoGiveup:
      return "io.giveup";
    case FlightEventType::kIoError:
      return "io.error";
    case FlightEventType::kWaitTimeout:
      return "wait.timeout";
    case FlightEventType::kMorphToExternal:
      return "morph.to_external";
    case FlightEventType::kMorphStealInternal:
      return "morph.steal_internal";
    case FlightEventType::kDegrade:
      return "degrade";
    case FlightEventType::kCancel:
      return "cancel";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      slots_(new Slot[RoundUpPow2(capacity)]),
      origin_(std::chrono::steady_clock::now()) {}

uint64_t FlightRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void FlightRecorder::Record(FlightEventType type, uint64_t a, uint64_t b) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (capacity_ - 1)];
  // Invalidate first so a concurrent reader never sees a half-written
  // payload under a stale-but-plausible sequence number.
  slot.seq.store(0, std::memory_order_release);
  slot.t_and_type.store(
      (NowMicros() << 8) | static_cast<uint64_t>(type),
      std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Tail(size_t max_events) const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t window = std::min<uint64_t>(end, capacity_);
  uint64_t first = end - window;
  if (max_events < window) first = end - max_events;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<size_t>(end - first));
  for (uint64_t ticket = first; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket & (capacity_ - 1)];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != ticket + 1) continue;  // overwritten or mid-write
    FlightEvent event;
    const uint64_t tt = slot.t_and_type.load(std::memory_order_relaxed);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    // Re-check: if a writer lapped us mid-read the payload may be torn.
    if (slot.seq.load(std::memory_order_acquire) != ticket + 1) continue;
    event.t_micros = tt >> 8;
    event.type = static_cast<FlightEventType>(tt & 0xFF);
    out.push_back(event);
  }
  return out;
}

std::string FlightRecorder::Render(const std::vector<FlightEvent>& events,
                                   uint64_t trace_id) {
  std::string prefix = "  ";
  if (trace_id != 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "  [trace=%016llx] ",
                  static_cast<unsigned long long>(trace_id));
    prefix = buf;
  }
  std::string out;
  for (const FlightEvent& e : events) {
    out += prefix + "+" + std::to_string(e.t_micros) + "us " +
           FlightEventTypeName(e.type);
    switch (e.type) {
      case FlightEventType::kFetchHit:
      case FlightEventType::kFetchInFlight:
      case FlightEventType::kFetchMiss:
      case FlightEventType::kWaitTimeout:
        out += " pid=" + std::to_string(e.a);
        break;
      case FlightEventType::kIoRetry:
        out += " pid=" + std::to_string(e.a) +
               " attempt=" + std::to_string(e.b);
        break;
      case FlightEventType::kIoGiveup:
      case FlightEventType::kIoError:
        out += " pid=" + std::to_string(e.a) +
               " code=" + std::to_string(e.b);
        break;
      case FlightEventType::kDegrade:
        out += " code=" + std::to_string(e.a);
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace opt
