// Perf-regression gate over the committed BENCH_*.json baselines.
//
// tools/bench_check feeds this: a baseline file plus one or more fresh
// runs of the same experiment (best-of-N absorbs scheduler noise), a
// per-metric spec saying which direction is "better" and how much noise
// to tolerate, and a pass/regress verdict per (row, metric). Three file
// formats are understood:
//   - the unified bench schema (bench_common.h: schema_version envelope)
//   - legacy bare-array baselines from earlier PRs
//   - google-benchmark --benchmark_format=json output
// Host-dependent metrics (throughput, seconds) only gate when baseline
// and fresh runs carry the same host fingerprint — CI baselines
// regenerated on a laptop must not flake the gate — while
// host-invariant metrics (overlap fraction, speedup ratios, error
// counts) always gate.
#ifndef OPT_OBS_BENCH_GATE_H_
#define OPT_OBS_BENCH_GATE_H_

#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace opt {

struct BenchHost {
  std::string hostname;
  int64_t nproc = 0;
  std::string machine;

  /// Empty when the file carried no host info (legacy baselines).
  std::string Fingerprint() const;
};

struct BenchRun {
  int schema_version = 0;  // 0 = legacy array or google-benchmark
  std::string experiment;  // "gbench" for google-benchmark files
  BenchHost host;
  std::string perf_backend;
  std::vector<JsonValue> rows;  // one object per bench row
};

Result<BenchRun> ParseBenchRun(const std::string& text);
Result<BenchRun> LoadBenchFile(const std::string& path);

struct MetricSpec {
  std::string metric;
  bool higher_is_better = true;
  /// Allowed regression as a fraction of the baseline value; the
  /// effective margin is max(rel * |baseline|, abs).
  double rel_tolerance = 0.5;
  double abs_tolerance = 0.0;
  /// Gate even when baseline and fresh hosts differ (ratios, counts).
  bool host_invariant = false;
};

struct GateSpec {
  /// Row identity; rows are matched across runs on these fields.
  std::vector<std::string> key_fields;
  std::vector<MetricSpec> metrics;
};

/// Built-in specs for the repo's experiments; unknown experiments get a
/// conservative seconds-only spec when rows carry a "seconds" field.
GateSpec SpecForExperiment(const std::string& experiment);

enum class GateVerdict { kPass, kImproved, kRegress, kMissing, kInfo };
const char* GateVerdictName(GateVerdict verdict);

struct GateRowResult {
  std::string key;
  std::string metric;
  double baseline = 0.0;
  double fresh = 0.0;
  double ratio = 0.0;  // fresh / baseline
  bool enforced = true;
  GateVerdict verdict = GateVerdict::kPass;
};

struct GateReport {
  std::vector<GateRowResult> rows;
  bool same_host = true;
  int regressions = 0;
  int missing = 0;

  bool ok() const { return regressions == 0 && missing == 0; }
  std::string RenderTable() const;
};

struct GateOptions {
  /// Enforce host-dependent metrics even across differing hosts.
  bool strict_host = false;
  /// Rows present in the baseline but absent from every fresh run are
  /// normally failures; allow them (verdict kInfo) when set.
  bool allow_missing = false;
  /// metric name → relative tolerance, overriding the built-in spec.
  std::map<std::string, double> tolerance_override;
};

/// Compares fresh runs against the baseline. Best-of-N: for each
/// (row, metric) the most favorable fresh value across all runs is the
/// one judged, so a single noisy run cannot flake the gate.
Result<GateReport> CompareBenchRuns(const BenchRun& baseline,
                                    const std::vector<BenchRun>& fresh,
                                    const GateOptions& opts);

}  // namespace opt

#endif  // OPT_OBS_BENCH_GATE_H_
