#include "obs/overlap_profiler.h"

#include <string>

#include "util/metrics.h"
#include "util/trace.h"

namespace opt {

namespace {

/// The calling thread's registered slot, or nullptr.
thread_local OverlapProfiler* tls_profiler = nullptr;
thread_local std::atomic<uint8_t>* tls_role = nullptr;
thread_local std::atomic<uint64_t>* tls_last_update = nullptr;
thread_local ThreadRole tls_home = ThreadRole::kIdle;

bool IsCpuRole(ThreadRole role) {
  return role == ThreadRole::kInternal || role == ThreadRole::kExternal ||
         role == ThreadRole::kMorphedInternal ||
         role == ThreadRole::kMorphedExternal;
}

bool IsInternalSide(ThreadRole role) {
  return role == ThreadRole::kInternal ||
         role == ThreadRole::kMorphedInternal;
}

bool IsExternalSide(ThreadRole role) {
  return role == ThreadRole::kExternal ||
         role == ThreadRole::kMorphedExternal;
}

}  // namespace

const char* ThreadRoleName(ThreadRole role) {
  switch (role) {
    case ThreadRole::kIdle:
      return "idle";
    case ThreadRole::kInternal:
      return "internal";
    case ThreadRole::kExternal:
      return "external";
    case ThreadRole::kMorphedInternal:
      return "morphed_internal";
    case ThreadRole::kMorphedExternal:
      return "morphed_external";
    case ThreadRole::kIoWait:
      return "io_wait";
  }
  return "unknown";
}

OverlapProfiler::OverlapProfiler() : OverlapProfiler(Options()) {}

OverlapProfiler::OverlapProfiler(const Options& options)
    : options_(options),
      slots_(options.max_threads == 0 ? 1 : options.max_threads),
      origin_(std::chrono::steady_clock::now()) {
  report_.period_micros = options_.period_micros;
  coarse_now_micros_.store(NowMicros(), std::memory_order_relaxed);
  sampler_ = std::thread([this] { SamplerLoop(); });
}

OverlapProfiler::~OverlapProfiler() { Stop(); }

uint64_t OverlapProfiler::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void OverlapProfiler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stop_requested_ = true;
    cv_.notify_all();
  }
  sampler_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
}

OverlapReport OverlapProfiler::Report() const {
  OverlapReport report = report_;
  report.morph_events = morphs_.load(std::memory_order_relaxed);
  return report;
}

void OverlapProfiler::SamplerLoop() {
  Counter* const stalled_counter =
      Metrics().GetCounter("profiler.stalled_samples");
  Gauge* const inflight_gauge = Metrics().GetGauge("io.inflight_depth");
  Counter* const pages_read_counter = Metrics().GetCounter("io.pages_read");
  const uint64_t stall_micros =
      static_cast<uint64_t>(options_.stall_periods) * options_.period_micros;
  uint64_t last_pages_read = pages_read_counter->value();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait_for(lock, std::chrono::microseconds(options_.period_micros),
                 [&] { return stop_requested_; });
    if (stop_requested_) return;
    const uint64_t now = NowMicros();
    coarse_now_micros_.store(now, std::memory_order_relaxed);
    uint32_t internal_active = 0;
    uint32_t external_active = 0;
    uint32_t cpu_active = 0;
    for (Slot& slot : slots_) {
      if (!slot.in_use.load(std::memory_order_acquire)) continue;
      const auto role = static_cast<ThreadRole>(
          slot.role.load(std::memory_order_relaxed));
      const uint64_t updated =
          slot.last_update_micros.load(std::memory_order_relaxed);
      if (now > updated && now - updated > stall_micros) {
        ++report_.stalled_samples;
        stalled_counter->Increment();
        continue;  // stale role: do not credit it to anything
      }
      ++report_.role_samples[static_cast<size_t>(role)];
      if (IsCpuRole(role)) ++cpu_active;
      if (IsInternalSide(role)) ++internal_active;
      if (IsExternalSide(role)) ++external_active;
    }
    const int64_t inflight = inflight_gauge->value();
    const uint64_t pages_read = pages_read_counter->value();
    // Fast devices complete reads between samples; pages finished during
    // the window are just as much evidence of in-flight I/O as a read
    // caught mid-air by the gauge.
    const bool io_busy = inflight > 0 || pages_read > last_pages_read;
    last_pages_read = pages_read;
    ++report_.samples;
    if (cpu_active > 0) ++report_.cpu_active_samples;
    if (io_busy) ++report_.io_inflight_samples;
    if (cpu_active > 0 && io_busy) ++report_.micro_overlap_samples;
    if (internal_active > 0 && external_active > 0) {
      ++report_.macro_overlap_samples;
    }
    if (options_.trace_counters && CurrentTraceRecorder() != nullptr) {
      TraceCounter("overlap", "overlap.cpu_roles",
                   "\"internal\":" + std::to_string(internal_active) +
                       ",\"external\":" + std::to_string(external_active));
      TraceCounter("overlap", "overlap.io_inflight",
                   "\"value\":" + std::to_string(inflight > 0 ? inflight : 0));
    }
  }
}

OverlapProfiler::ThreadScope::ThreadScope(OverlapProfiler* profiler,
                                          ThreadRole home)
    : profiler_(profiler) {
  if (profiler_ == nullptr) return;
  for (size_t i = 0; i < profiler_->slots_.size(); ++i) {
    bool expected = false;
    if (profiler_->slots_[i].in_use.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      slot_index_ = i;
      Slot& slot = profiler_->slots_[i];
      slot.home = home;
      slot.role.store(static_cast<uint8_t>(home), std::memory_order_relaxed);
      slot.last_update_micros.store(profiler_->NowMicros(),
                                    std::memory_order_relaxed);
      tls_profiler = profiler_;
      tls_role = &slot.role;
      tls_last_update = &slot.last_update_micros;
      tls_home = home;
      return;
    }
  }
  profiler_ = nullptr;  // no free slot: profile without this thread
}

OverlapProfiler::ThreadScope::~ThreadScope() {
  if (profiler_ == nullptr) return;
  tls_profiler = nullptr;
  tls_role = nullptr;
  tls_last_update = nullptr;
  tls_home = ThreadRole::kIdle;
  Slot& slot = profiler_->slots_[slot_index_];
  slot.role.store(static_cast<uint8_t>(ThreadRole::kIdle),
                  std::memory_order_relaxed);
  slot.in_use.store(false, std::memory_order_release);
}

void OverlapProfiler::SetRole(ThreadRole role) {
  if (tls_role == nullptr) return;
  tls_role->store(static_cast<uint8_t>(role), std::memory_order_relaxed);
  // The coarse clock (advanced once per sampling period) keeps this
  // call clock_gettime-free: SetRole sits in per-page hot loops, and
  // the stall guard compares against a multi-period threshold, so
  // one-period timestamp error is immaterial.
  tls_last_update->store(
      tls_profiler->coarse_now_micros_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

void OverlapProfiler::SetWork(bool internal_work) {
  if (tls_role == nullptr) return;
  ThreadRole role;
  if (internal_work) {
    role = tls_home == ThreadRole::kExternal ? ThreadRole::kMorphedInternal
                                             : ThreadRole::kInternal;
  } else {
    role = tls_home == ThreadRole::kInternal ? ThreadRole::kMorphedExternal
                                             : ThreadRole::kExternal;
  }
  SetRole(role);
}

}  // namespace opt
