#include "obs/bench_gate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/table_printer.h"

namespace opt {

namespace {

std::string NumberToKey(double v) {
  // Integral values render without a trailing ".000000" so keys built
  // from shard counts etc. look like "shards=2".
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string RowKey(const JsonValue& row,
                   const std::vector<std::string>& key_fields, size_t index) {
  std::string key;
  for (const auto& field : key_fields) {
    const JsonValue& v = row.Get(field);
    if (v.is_null()) continue;
    if (!key.empty()) key += " ";
    key += field + "=";
    key += v.is_string() ? v.AsString() : NumberToKey(v.AsDouble());
  }
  if (key.empty()) key = "row#" + std::to_string(index);
  return key;
}

}  // namespace

std::string BenchHost::Fingerprint() const {
  if (hostname.empty()) return "";
  return hostname + "/" + std::to_string(nproc) +
         (machine.empty() ? "" : "/" + machine);
}

Result<BenchRun> ParseBenchRun(const std::string& text) {
  auto parsed = JsonValue::Parse(text);
  if (!parsed.ok()) return parsed.status();
  BenchRun run;
  const JsonValue& doc = *parsed;
  if (doc.is_array()) {
    // Legacy bare-array baseline (pre-unified-schema PRs).
    run.rows = doc.items();
    if (!run.rows.empty()) {
      const JsonValue& first = run.rows.front();
      if (first.Get("experiment").is_string()) {
        run.experiment = first.Get("experiment").AsString();
      } else if (first.Has("config")) {
        run.experiment = "ablation_overlap";
      }
    }
    return run;
  }
  if (!doc.is_object()) {
    return Status::InvalidArgument("bench file: expected object or array");
  }
  if (doc.Has("benchmarks")) {
    // google-benchmark --benchmark_format=json.
    run.experiment = "gbench";
    const JsonValue& ctx = doc.Get("context");
    run.host.hostname = ctx.Get("host_name").AsString();
    run.host.nproc = ctx.Get("num_cpus").AsInt();
    for (const JsonValue& b : doc.Get("benchmarks").items()) {
      // Skip aggregate rows (mean/median/stddev of repetitions).
      if (b.Has("run_type") && b.Get("run_type").AsString() != "iteration") {
        continue;
      }
      run.rows.push_back(b);
    }
    return run;
  }
  if (!doc.Has("schema_version")) {
    return Status::InvalidArgument(
        "bench file: no schema_version and not a recognized legacy format");
  }
  run.schema_version = static_cast<int>(doc.Get("schema_version").AsInt());
  run.experiment = doc.Get("experiment").AsString();
  run.perf_backend = doc.Get("perf_backend").AsString();
  const JsonValue& host = doc.Get("host");
  run.host.hostname = host.Get("hostname").AsString();
  run.host.nproc = host.Get("nproc").AsInt();
  run.host.machine = host.Get("machine").AsString();
  run.rows = doc.Get("rows").items();
  return run;
}

Result<BenchRun> LoadBenchFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto run = ParseBenchRun(buf.str());
  if (!run.ok()) {
    return Status::InvalidArgument(path + ": " + run.status().ToString());
  }
  return run;
}

GateSpec SpecForExperiment(const std::string& experiment) {
  GateSpec spec;
  if (experiment == "ablation_overlap") {
    spec.key_fields = {"config"};
    // micro_overlap is the paper's headline ratio — host-invariant by
    // construction (fraction of samples with CPU+I/O in flight).
    spec.metrics = {
        {"micro_overlap", /*higher=*/true, 0.35, 0.05, /*invariant=*/true},
        {"profiler_overhead_frac", /*higher=*/false, 1.00, 0.04,
         /*invariant=*/true},
        {"seconds", /*higher=*/false, 0.60, 0.0, /*invariant=*/false},
    };
    return spec;
  }
  if (experiment == "shard_throughput") {
    spec.key_fields = {"shards", "router_workers"};
    spec.metrics = {
        {"speedup_vs_single", /*higher=*/true, 0.25, 0.15, /*invariant=*/true},
        {"errors", /*higher=*/false, 0.0, 0.0, /*invariant=*/true},
        {"partials", /*higher=*/false, 0.0, 0.0, /*invariant=*/true},
        {"qps", /*higher=*/true, 0.60, 0.0, /*invariant=*/false},
        {"p99_latency_ms", /*higher=*/false, 1.00, 0.0, /*invariant=*/false},
    };
    return spec;
  }
  if (experiment == "service_throughput") {
    spec.key_fields = {"workers"};
    spec.metrics = {
        {"errors", /*higher=*/false, 0.0, 0.0, /*invariant=*/true},
        {"qps", /*higher=*/true, 0.60, 0.0, /*invariant=*/false},
        {"p99_latency_ms", /*higher=*/false, 1.00, 0.0, /*invariant=*/false},
    };
    return spec;
  }
  if (experiment == "gbench") {
    spec.key_fields = {"name"};
    spec.metrics = {
        {"items_per_second", /*higher=*/true, 0.60, 0.0, /*invariant=*/false},
    };
    return spec;
  }
  // Unknown experiment: gate wall time only, generously.
  spec.key_fields = {"config", "method", "name"};
  spec.metrics = {
      {"seconds", /*higher=*/false, 0.60, 0.0, /*invariant=*/false},
  };
  return spec;
}

const char* GateVerdictName(GateVerdict verdict) {
  switch (verdict) {
    case GateVerdict::kPass: return "PASS";
    case GateVerdict::kImproved: return "IMPROVED";
    case GateVerdict::kRegress: return "REGRESS";
    case GateVerdict::kMissing: return "MISSING";
    case GateVerdict::kInfo: return "INFO";
  }
  return "?";
}

Result<GateReport> CompareBenchRuns(const BenchRun& baseline,
                                    const std::vector<BenchRun>& fresh,
                                    const GateOptions& opts) {
  if (fresh.empty()) {
    return Status::InvalidArgument("bench gate: no fresh runs supplied");
  }
  GateSpec spec = SpecForExperiment(baseline.experiment);
  for (auto& m : spec.metrics) {
    auto it = opts.tolerance_override.find(m.metric);
    if (it != opts.tolerance_override.end()) m.rel_tolerance = it->second;
  }

  GateReport report;
  const std::string base_fp = baseline.host.Fingerprint();
  report.same_host = !base_fp.empty();
  for (const BenchRun& f : fresh) {
    if (f.host.Fingerprint() != base_fp) report.same_host = false;
    if (!f.experiment.empty() && !baseline.experiment.empty() &&
        f.experiment != baseline.experiment) {
      return Status::InvalidArgument("bench gate: experiment mismatch: '" +
                                     baseline.experiment + "' vs '" +
                                     f.experiment + "'");
    }
  }

  // Index fresh rows by key; every run contributes (best-of-N).
  std::map<std::string, std::vector<const JsonValue*>> fresh_by_key;
  for (const BenchRun& f : fresh) {
    for (size_t i = 0; i < f.rows.size(); ++i) {
      fresh_by_key[RowKey(f.rows[i], spec.key_fields, i)].push_back(
          &f.rows[i]);
    }
  }

  for (size_t i = 0; i < baseline.rows.size(); ++i) {
    const JsonValue& base_row = baseline.rows[i];
    const std::string key = RowKey(base_row, spec.key_fields, i);
    auto fit = fresh_by_key.find(key);
    if (fit == fresh_by_key.end()) {
      GateRowResult r;
      r.key = key;
      r.metric = "(row)";
      r.verdict = opts.allow_missing ? GateVerdict::kInfo : GateVerdict::kMissing;
      if (!opts.allow_missing) ++report.missing;
      report.rows.push_back(r);
      continue;
    }
    for (const MetricSpec& m : spec.metrics) {
      const JsonValue& bv = base_row.Get(m.metric);
      if (!bv.is_number()) continue;  // metric absent in baseline: skip
      bool have_fresh = false;
      double best = 0.0;
      for (const JsonValue* frow : fit->second) {
        const JsonValue& fv = frow->Get(m.metric);
        if (!fv.is_number()) continue;
        const double v = fv.AsDouble();
        if (!have_fresh) {
          best = v;
          have_fresh = true;
        } else {
          best = m.higher_is_better ? std::max(best, v) : std::min(best, v);
        }
      }
      GateRowResult r;
      r.key = key;
      r.metric = m.metric;
      r.baseline = bv.AsDouble();
      if (!have_fresh) {
        r.verdict =
            opts.allow_missing ? GateVerdict::kInfo : GateVerdict::kMissing;
        if (!opts.allow_missing) ++report.missing;
        report.rows.push_back(r);
        continue;
      }
      r.fresh = best;
      r.ratio = r.baseline != 0.0 ? r.fresh / r.baseline
                                  : (r.fresh == 0.0 ? 1.0 : 0.0);
      r.enforced = m.host_invariant || report.same_host || opts.strict_host;
      const double margin =
          std::max(m.rel_tolerance * std::abs(r.baseline), m.abs_tolerance);
      if (m.higher_is_better) {
        if (r.fresh < r.baseline - margin) r.verdict = GateVerdict::kRegress;
        else if (r.fresh > r.baseline + margin) r.verdict = GateVerdict::kImproved;
      } else {
        if (r.fresh > r.baseline + margin) r.verdict = GateVerdict::kRegress;
        else if (r.fresh < r.baseline - margin) r.verdict = GateVerdict::kImproved;
      }
      if (r.verdict == GateVerdict::kRegress) {
        if (r.enforced) {
          ++report.regressions;
        } else {
          // Host-dependent metric across hosts: report, don't gate.
          r.verdict = GateVerdict::kInfo;
        }
      }
      report.rows.push_back(r);
    }
  }
  return report;
}

std::string GateReport::RenderTable() const {
  TablePrinter table({"row", "metric", "baseline", "fresh", "ratio",
                      "gated", "verdict"});
  for (const auto& r : rows) {
    table.AddRow({r.key, r.metric, TablePrinter::Fmt(r.baseline, 4),
                  TablePrinter::Fmt(r.fresh, 4), TablePrinter::Fmt(r.ratio, 3),
                  r.enforced ? "yes" : "no", GateVerdictName(r.verdict)});
  }
  std::string out = table.ToString();
  out += same_host ? "hosts: matching fingerprints (all metrics gated)\n"
                   : "hosts: fingerprints differ (host-dependent metrics "
                     "informational; use --strict_host to gate them)\n";
  char line[96];
  std::snprintf(line, sizeof(line), "regressions=%d missing=%d → %s\n",
                regressions, missing, ok() ? "PASS" : "FAIL");
  out += line;
  return out;
}

}  // namespace opt
