// Hardware PMU profiling via perf_event_open, with an honest fallback
// ladder for containers and locked-down kernels.
//
// The subsystem opens one *grouped* perf fd set per thread (leader +
// members read atomically in a single read(2)), counting cycles,
// instructions, LLC loads/misses, branch misses, and task-clock. When
// the hardware PMU is unavailable — perf_event_paranoid too high,
// seccomp, VM without a virtual PMU — it degrades rung by rung instead
// of failing:
//
//   kPerfEventHw  cycles-led hardware group (+ task-clock member)
//   kPerfEventSw  task-clock-led software group (page faults, ctx switches)
//   kRusage       getrusage(RUSAGE_THREAD): cpu time + faults + switches
//   kNone         all readings zero (forced via OPT_PERF_BACKEND=none)
//
// The active rung is surfaced as the `perf.backend` gauge and in STATS
// text, so an all-zero cycles column reads as "no PMU here", never as a
// silent measurement failure. The kernel time-multiplexes PMU groups
// when more are scheduled than there are counters; readings carry
// time_enabled/time_running so the multiplexing ratio is reported
// honestly rather than silently extrapolated.
//
// Backend selection happens once per process (override with
// OPT_PERF_BACKEND=perf|sw|rusage|none|auto); each thread lazily opens
// its own fd group on first read and closes it at thread exit.
#ifndef OPT_OBS_PERF_COUNTERS_H_
#define OPT_OBS_PERF_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace opt {

enum class PerfBackend : uint8_t {
  kNone = 0,
  kRusage = 1,
  kPerfEventSw = 2,
  kPerfEventHw = 3,
};

const char* PerfBackendName(PerfBackend backend);

/// Bitmask of events the active backend actually delivers. Member
/// events that fail to open (e.g. LLC events missing on a given PMU)
/// are dropped individually; absence here distinguishes "counted zero"
/// from "not counted".
enum PerfEventMask : uint32_t {
  kPerfHasCycles = 1u << 0,
  kPerfHasInstructions = 1u << 1,
  kPerfHasLlcLoads = 1u << 2,
  kPerfHasLlcMisses = 1u << 3,
  kPerfHasBranchMisses = 1u << 4,
  kPerfHasTaskClock = 1u << 5,
  kPerfHasPageFaults = 1u << 6,
  kPerfHasContextSwitches = 1u << 7,
};

/// One snapshot (or delta) of the counter set. Cumulative per thread
/// since that thread's group was opened; use Delta() for scoped costs.
struct PerfReading {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_loads = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t task_clock_ns = 0;
  uint64_t page_faults = 0;
  uint64_t context_switches = 0;
  /// Group scheduling times from the kernel. running < enabled means
  /// the PMU was multiplexed and the raw counts undercount true cost.
  uint64_t time_enabled_ns = 0;
  uint64_t time_running_ns = 0;

  /// Fraction of enabled time the group was actually counting, in
  /// [0, 1]. 1.0 when the group was never descheduled (or when the
  /// backend has no scheduling times, e.g. rusage).
  double MultiplexRatio() const {
    if (time_enabled_ns == 0) return 1.0;
    const double r = static_cast<double>(time_running_ns) /
                     static_cast<double>(time_enabled_ns);
    return r > 1.0 ? 1.0 : r;
  }
  double Ipc() const {
    return cycles == 0
               ? 0.0
               : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
  double LlcMissRate() const {
    return llc_loads == 0 ? 0.0
                          : static_cast<double>(llc_misses) /
                                static_cast<double>(llc_loads);
  }

  void Accumulate(const PerfReading& other);
  /// Field-wise saturating `after - before` (clamps to 0 if a counter
  /// went backwards, e.g. across a backend reinit).
  static PerfReading Delta(const PerfReading& after, const PerfReading& before);
};

/// The rung the process resolved to (resolves on first call).
PerfBackend ActivePerfBackend();
/// Events the resolved backend delivers (PerfEventMask bits).
uint32_t SupportedPerfEvents();

/// Cumulative counters for the calling thread. Never fails: rungs
/// below the resolved backend absorb per-thread open failures, and the
/// floor is an all-zero reading.
PerfReading ReadThreadPerfCounters();

/// Thread-safe sink for folding per-thread deltas (phase totals across
/// the runner's worker threads).
class PerfAccumulator {
 public:
  void Add(const PerfReading& delta);
  PerfReading Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> cycles_{0}, instructions_{0};
  std::atomic<uint64_t> llc_loads_{0}, llc_misses_{0}, branch_misses_{0};
  std::atomic<uint64_t> task_clock_ns_{0}, page_faults_{0};
  std::atomic<uint64_t> context_switches_{0};
  std::atomic<uint64_t> time_enabled_ns_{0}, time_running_ns_{0};
};

/// RAII measurement scope: snapshots the calling thread's counters at
/// construction and adds the delta to `acc` when stopped/destroyed.
/// A null accumulator makes the scope inert (reads nothing). Must be
/// stopped on the thread that constructed it.
class PerfScope {
 public:
  explicit PerfScope(PerfAccumulator* acc);
  ~PerfScope();
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  /// Stops early and returns the delta (zero reading on second call).
  PerfReading Stop();

 private:
  PerfAccumulator* acc_;
  bool stopped_;
  PerfReading start_;
};

/// Registers the `perf.backend` / `perf.supported_events` gauges so
/// /metrics and STATS advertise the active rung even before any run.
void PublishPerfBackendMetrics();

/// Appends "perf.backend=<name>" plus the supported-event list to a
/// STATS-style text block.
std::string PerfBackendStatsText();

/// Re-resolves the backend from OPT_PERF_BACKEND. Existing per-thread
/// fd groups are reopened lazily on their next read. Test-only: the
/// fallback-ladder tests flip the env knob mid-process.
void ReinitPerfCountersForTest();

}  // namespace opt

#endif  // OPT_OBS_PERF_COUNTERS_H_
