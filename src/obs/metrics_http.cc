#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace opt {

namespace {

void WriteAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // scrape responses are best-effort
  }
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(std::function<std::string()> body)
    : body_(std::move(body)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& handler : handlers) {
    if (handler.joinable()) handler.join();
  }
}

void MetricsHttpServer::AcceptLoop() {
  for (;;) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      ::close(fd);
      return;
    }
    // Scrapes are rare (seconds apart); reap finished handlers lazily
    // by joining everything each time the list grows past a handful.
    if (handlers_.size() > 8) {
      for (std::thread& handler : handlers_) {
        if (handler.joinable()) handler.join();
      }
      handlers_.clear();
    }
    handlers_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Read until the end of the request head (or 4 KiB, whichever first);
  // only the request line matters.
  std::string head;
  char buf[1024];
  while (head.size() < 4096 &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      head.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  const bool is_get = head.compare(0, 4, "GET ") == 0;
  const size_t path_end = head.find(' ', 4);
  const std::string path =
      is_get && path_end != std::string::npos ? head.substr(4, path_end - 4)
                                              : std::string();
  std::string response;
  if (path == "/metrics" || path == "/") {
    const std::string body = body_();
    response = "HTTP/1.0 200 OK\r\n"
               "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
               "Content-Length: " + std::to_string(body.size()) +
               "\r\nConnection: close\r\n\r\n" + body;
  } else {
    const std::string body = "not found; scrape /metrics\n";
    response = "HTTP/1.0 404 Not Found\r\n"
               "Content-Type: text/plain\r\nContent-Length: " +
               std::to_string(body.size()) +
               "\r\nConnection: close\r\n\r\n" + body;
  }
  WriteAll(fd, response);
  ::shutdown(fd, SHUT_WR);
  ::close(fd);
}

}  // namespace opt
