#include "distsim/distributed.h"

#include <algorithm>
#include <array>
#include <unordered_set>
#include <vector>

#include "graph/builder.h"
#include "graph/intersect.h"
#include "util/stopwatch.h"

namespace opt {

namespace {

uint64_t HashVertex(VertexId v, uint64_t seed) {
  uint64_t x = v + seed * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

/// Max over nodes of (sum of its task times / cores).
double ClusterComputeSeconds(const std::vector<double>& node_seconds,
                             uint32_t cores) {
  double worst = 0;
  for (double s : node_seconds) {
    worst = std::max(worst, s / std::max(1u, cores));
  }
  return worst;
}

}  // namespace

Result<DistSimResult> SimulateSV(const CSRGraph& g,
                                 const DistSimOptions& options) {
  if (options.nodes == 0) {
    return Status::InvalidArgument("nodes must be positive");
  }
  // Smallest b >= 3 with C(b,3) >= nodes, so every node gets >= 1 reducer.
  uint32_t b = 3;
  while (static_cast<uint64_t>(b) * (b - 1) * (b - 2) / 6 < options.nodes) {
    ++b;
  }
  auto group_of = [&](VertexId v) {
    return static_cast<uint32_t>(HashVertex(v, options.seed) % b);
  };

  DistSimResult result;
  result.nodes = options.nodes;
  result.rounds = 2;  // one map round, one reduce round

  // Map phase: ship each edge to every group triple containing both
  // endpoint groups.
  std::vector<std::vector<Edge>> reducer_edges;
  std::vector<std::array<uint32_t, 3>> reducer_groups;
  std::vector<std::vector<uint32_t>> triple_index(b * b);  // (i,j)->ids
  for (uint32_t i = 0; i < b; ++i) {
    for (uint32_t j = i + 1; j < b; ++j) {
      for (uint32_t k = j + 1; k < b; ++k) {
        reducer_groups.push_back({i, j, k});
        reducer_edges.emplace_back();
      }
    }
  }
  auto reducers_containing = [&](uint32_t a,
                                 uint32_t c) -> std::vector<uint32_t> {
    std::vector<uint32_t> ids;
    for (uint32_t r = 0; r < reducer_groups.size(); ++r) {
      const auto& t = reducer_groups[r];
      const bool has_a = t[0] == a || t[1] == a || t[2] == a;
      const bool has_c = t[0] == c || t[1] == c || t[2] == c;
      if (has_a && has_c) ids.push_back(r);
    }
    return ids;
  };
  // Precompute the reducer list per group pair.
  std::vector<std::vector<uint32_t>> pair_reducers(b * b);
  for (uint32_t i = 0; i < b; ++i) {
    for (uint32_t j = i; j < b; ++j) {
      pair_reducers[i * b + j] = reducers_containing(i, j);
    }
  }

  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.Successors(u)) {
      uint32_t a = group_of(u), c = group_of(v);
      if (a > c) std::swap(a, c);
      for (uint32_t r : pair_reducers[a * b + c]) {
        reducer_edges[r].emplace_back(u, v);
      }
      result.shuffle_bytes +=
          pair_reducers[a * b + c].size() * 2 * sizeof(VertexId);
    }
  }

  // Reduce phase: each reducer lists triangles in its edge set; a
  // triangle is counted only by the canonical (smallest) triple that
  // contains its group set, making the total exact.
  std::vector<double> node_seconds(options.nodes, 0.0);
  uint64_t triangles = 0;
  for (uint32_t r = 0; r < reducer_edges.size(); ++r) {
    Stopwatch watch;
    CSRGraph sub = GraphBuilder::FromEdges(reducer_edges[r]);
    const auto& tg = reducer_groups[r];
    uint64_t local = 0;
    for (VertexId u = 0; u < sub.num_vertices(); ++u) {
      const auto succ_u = sub.Successors(u);
      for (VertexId v : succ_u) {
        std::vector<VertexId> ws;
        Intersect(succ_u, sub.Successors(v), &ws);
        for (VertexId w : ws) {
          // Canonical-triple ownership test.
          uint32_t groups[3] = {group_of(u), group_of(v), group_of(w)};
          std::sort(groups, groups + 3);
          uint32_t distinct[3];
          uint32_t nd = 0;
          for (uint32_t x : groups) {
            if (nd == 0 || distinct[nd - 1] != x) distinct[nd++] = x;
          }
          // Complete to 3 groups with the smallest unused group ids.
          uint32_t canon[3];
          uint32_t filled = 0;
          for (uint32_t gi = 0; gi < nd; ++gi) canon[filled++] = distinct[gi];
          for (uint32_t cand = 0; filled < 3 && cand < b; ++cand) {
            bool used = false;
            for (uint32_t gi = 0; gi < filled; ++gi) {
              if (canon[gi] == cand) used = true;
            }
            if (!used) canon[filled++] = cand;
          }
          std::sort(canon, canon + 3);
          if (canon[0] == tg[0] && canon[1] == tg[1] && canon[2] == tg[2]) {
            ++local;
          }
        }
      }
    }
    triangles += local;
    node_seconds[r % options.nodes] += watch.ElapsedSeconds();
  }
  result.triangles = triangles;
  result.compute_seconds =
      ClusterComputeSeconds(node_seconds, options.cores_per_node);
  result.network_seconds =
      options.network.TransferSeconds(result.shuffle_bytes, result.rounds);
  result.elapsed_seconds = result.compute_seconds + result.network_seconds;
  return result;
}

Result<DistSimResult> SimulateAKM(const CSRGraph& g,
                                  const DistSimOptions& options) {
  if (options.nodes == 0) {
    return Status::InvalidArgument("nodes must be positive");
  }
  DistSimResult result;
  result.nodes = options.nodes;
  result.rounds = 2;  // scatter partitions + reduce counts

  // Contiguous vertex ranges balanced by adjacency volume.
  const VertexId n = g.num_vertices();
  const uint64_t total = g.num_directed_edges();
  const uint64_t share = std::max<uint64_t>(1, total / options.nodes);
  std::vector<VertexId> range_end;  // exclusive ends
  uint64_t acc = 0;
  for (VertexId v = 0; v < n; ++v) {
    acc += g.degree(v);
    if (acc >= share && range_end.size() + 1 < options.nodes) {
      range_end.push_back(v + 1);
      acc = 0;
    }
  }
  range_end.push_back(n);

  std::vector<double> node_seconds(options.nodes, 0.0);
  uint64_t triangles = 0;
  VertexId lo = 0;
  for (uint32_t node = 0; node < range_end.size(); ++node) {
    const VertexId hi = range_end[node];
    // Surrogate lists: neighbors outside [lo, hi) whose adjacency the
    // node needs; each is shipped once per node.
    std::unordered_set<VertexId> surrogates;
    Stopwatch watch;
    uint64_t local = 0;
    for (VertexId u = lo; u < hi; ++u) {
      const auto succ_u = g.Successors(u);
      for (VertexId v : succ_u) {
        if (v < lo || v >= hi) surrogates.insert(v);
        local += IntersectCount(succ_u, g.Successors(v));
      }
    }
    node_seconds[node] = watch.ElapsedSeconds();
    triangles += local;
    for (VertexId v : surrogates) {
      result.shuffle_bytes += (g.degree(v) + 1) * sizeof(VertexId);
    }
    lo = hi;
  }
  result.triangles = triangles;
  result.compute_seconds =
      ClusterComputeSeconds(node_seconds, options.cores_per_node);
  result.network_seconds =
      options.network.TransferSeconds(result.shuffle_bytes, result.rounds);
  result.elapsed_seconds = result.compute_seconds + result.network_seconds;
  return result;
}

Result<DistSimResult> SimulatePowerGraph(const CSRGraph& g,
                                         const DistSimOptions& options) {
  if (options.nodes == 0) {
    return Status::InvalidArgument("nodes must be positive");
  }
  DistSimResult result;
  result.nodes = options.nodes;
  result.rounds = 3;  // gather, apply, scatter

  // Random vertex-cut: assign each (ordered-once) edge to a machine.
  const uint32_t p = options.nodes;
  auto edge_machine = [&](VertexId u, VertexId v) {
    return static_cast<uint32_t>(
        HashVertex(u, options.seed * 31 + HashVertex(v, options.seed)) % p);
  };
  // Replication factor: machines on which each vertex has a mirror.
  std::vector<std::unordered_set<uint32_t>> mirrors(g.num_vertices());
  std::vector<std::vector<Edge>> machine_edges(p);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.Successors(u)) {
      const uint32_t m = edge_machine(u, v);
      machine_edges[m].emplace_back(u, v);
      mirrors[u].insert(m);
      mirrors[v].insert(m);
    }
  }
  // Gather: the master ships the vertex's neighbor-id set to each mirror.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (mirrors[v].size() > 1) {
      result.shuffle_bytes += (mirrors[v].size() - 1) *
                              (g.degree(v) + 1) * sizeof(VertexId);
    }
  }
  // Apply: each machine intersects neighbor sets over its local edges;
  // each triangle has three edges, so the per-edge sum triple-counts.
  std::vector<double> node_seconds(p, 0.0);
  uint64_t tripled = 0;
  for (uint32_t m = 0; m < p; ++m) {
    Stopwatch watch;
    uint64_t local = 0;
    for (const auto& [u, v] : machine_edges[m]) {
      local += IntersectCount(g.Neighbors(u), g.Neighbors(v));
    }
    tripled += local;
    node_seconds[m] = watch.ElapsedSeconds();
  }
  result.triangles = tripled / 3;
  result.compute_seconds =
      ClusterComputeSeconds(node_seconds, options.cores_per_node);
  result.network_seconds =
      options.network.TransferSeconds(result.shuffle_bytes, result.rounds);
  result.elapsed_seconds = result.compute_seconds + result.network_seconds;
  return result;
}

}  // namespace opt
