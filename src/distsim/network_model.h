// Cluster network cost model for the distributed-method simulators
// (Table 7). The simulators execute the distributed algorithms' actual
// computation on one machine (so triangle counts are exact) and charge
// their real communication volumes against this model to estimate the
// elapsed time a cluster deployment would see.
#ifndef OPT_DISTSIM_NETWORK_MODEL_H_
#define OPT_DISTSIM_NETWORK_MODEL_H_

#include <cstdint>

namespace opt {

struct NetworkModel {
  /// Aggregate cluster bisection bandwidth (bytes/s). Default ~1 GbE
  /// per node across 31 nodes, discounted for incast.
  double bandwidth_bytes_per_sec = 2.0e9;
  /// Per-communication-round latency (barriers, job scheduling). Hadoop
  /// rounds are far more expensive than MPI rounds; callers override.
  double round_latency_sec = 0.1;

  double TransferSeconds(uint64_t bytes, uint32_t rounds) const {
    return static_cast<double>(bytes) / bandwidth_bytes_per_sec +
           round_latency_sec * rounds;
  }
};

/// Per-method simulation result.
struct DistSimResult {
  uint64_t triangles = 0;
  uint64_t shuffle_bytes = 0;   // data moved between nodes
  uint32_t rounds = 0;
  double compute_seconds = 0;   // max over nodes (measured, scaled)
  double network_seconds = 0;   // from the NetworkModel
  double elapsed_seconds = 0;   // compute + network
  uint32_t nodes = 0;
};

}  // namespace opt

#endif  // OPT_DISTSIM_NETWORK_MODEL_H_
