// Simulators for the paper's distributed competitors (§5.9, Table 7):
//   SV          — Suri & Vassilvitskii's MapReduce partition-triples
//                 triangle counting (WWW'11), Hadoop-style rounds.
//   AKM         — Arifuzzaman et al.'s MPI vertex-iterator ("PaTriC",
//                 CIKM'13) with overlapping partitions.
//   PowerGraph  — Gonzalez et al.'s GAS engine (OSDI'12) with a random
//                 vertex-cut and neighbor-set gather.
// Each simulator runs the algorithm's real computation (exact counts)
// and charges its measured communication volume to a NetworkModel.
#ifndef OPT_DISTSIM_DISTRIBUTED_H_
#define OPT_DISTSIM_DISTRIBUTED_H_

#include "distsim/network_model.h"
#include "graph/csr_graph.h"
#include "util/status.h"

namespace opt {

struct DistSimOptions {
  uint32_t nodes = 31;
  uint32_t cores_per_node = 12;
  NetworkModel network;
  uint64_t seed = 1;
};

/// SV (MapReduce): hash vertices into b groups, ship each edge to every
/// group-triple reducer containing both endpoints, count per reducer.
Result<DistSimResult> SimulateSV(const CSRGraph& g,
                                 const DistSimOptions& options);

/// AKM (MPI): contiguous vertex ranges per node plus surrogate adjacency
/// lists for boundary neighbors; local ordered counting; one reduction.
Result<DistSimResult> SimulateAKM(const CSRGraph& g,
                                  const DistSimOptions& options);

/// PowerGraph (GAS): random vertex-cut edge placement; gather replicates
/// neighbor sets to mirrors; local per-edge intersections.
Result<DistSimResult> SimulatePowerGraph(const CSRGraph& g,
                                         const DistSimOptions& options);

}  // namespace opt

#endif  // OPT_DISTSIM_DISTRIBUTED_H_
