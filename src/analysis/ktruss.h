// k-truss decomposition — triangle-based cohesion analysis (the
// "trigonal connectivity" application family of the paper's
// introduction, and a concrete instance of the subgraph-listing future
// work its conclusion sketches). The k-truss of G is the maximal
// subgraph in which every edge participates in at least k-2 triangles;
// the truss number of an edge is the largest k whose k-truss contains
// it.
#ifndef OPT_ANALYSIS_KTRUSS_H_
#define OPT_ANALYSIS_KTRUSS_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace opt {

struct KTrussResult {
  /// Truss number per edge, indexed like `edges` below.
  std::vector<uint32_t> truss;
  /// The edges (u < v), sorted lexicographically.
  std::vector<std::pair<VertexId, VertexId>> edges;
  /// Largest k with a non-empty k-truss (>= 2 for any graph with edges).
  uint32_t max_truss = 0;
};

/// Peeling-based exact decomposition; O(sum over edges of min-degree)
/// support computation plus near-linear peeling.
KTrussResult KTrussDecomposition(const CSRGraph& g);

}  // namespace opt

#endif  // OPT_ANALYSIS_KTRUSS_H_
