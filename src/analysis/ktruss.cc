#include "analysis/ktruss.h"

#include <algorithm>
#include <unordered_map>

#include "graph/intersect.h"

namespace opt {

namespace {
uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}
}  // namespace

KTrussResult KTrussDecomposition(const CSRGraph& g) {
  KTrussResult result;
  const VertexId n = g.num_vertices();

  // Index edges.
  std::unordered_map<uint64_t, uint32_t> edge_index;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.Successors(u)) {
      edge_index.emplace(EdgeKey(u, v),
                         static_cast<uint32_t>(result.edges.size()));
      result.edges.emplace_back(u, v);
    }
  }
  const auto m = static_cast<uint32_t>(result.edges.size());
  if (m == 0) return result;

  // Triangle support per edge.
  std::vector<uint32_t> support(m, 0);
  std::vector<VertexId> ws;
  for (uint32_t e = 0; e < m; ++e) {
    const auto [u, v] = result.edges[e];
    ws.clear();
    Intersect(g.Neighbors(u), g.Neighbors(v), &ws);
    support[e] = static_cast<uint32_t>(ws.size());
  }

  // Peel edges in increasing support order (bucket queue).
  const uint32_t max_support =
      *std::max_element(support.begin(), support.end());
  std::vector<std::vector<uint32_t>> buckets(max_support + 1);
  std::vector<uint32_t> current(support);
  std::vector<bool> removed(m, false);
  for (uint32_t e = 0; e < m; ++e) buckets[current[e]].push_back(e);

  // Peel in non-decreasing support order. When the edge at `level` is
  // removed, the supports of affected edges only drop from b > level to
  // b-1 >= level, so the scan level never moves backwards.
  result.truss.assign(m, 2);
  uint32_t k = 2;
  uint32_t processed = 0;
  uint32_t level = 0;
  while (processed < m && level <= max_support) {
    if (buckets[level].empty()) {
      ++level;
      continue;
    }
    const uint32_t e = buckets[level].back();
    buckets[level].pop_back();
    if (removed[e] || current[e] != level) continue;  // stale entry
    k = std::max(k, level + 2);
    result.truss[e] = k;
    removed[e] = true;
    ++processed;

    // Removing (u, v) lowers the support of the other two edges of
    // every triangle through it.
    const auto [u, v] = result.edges[e];
    ws.clear();
    Intersect(g.Neighbors(u), g.Neighbors(v), &ws);
    for (VertexId w : ws) {
      const uint32_t e_uw = edge_index.at(EdgeKey(u, w));
      const uint32_t e_vw = edge_index.at(EdgeKey(v, w));
      if (removed[e_uw] || removed[e_vw]) continue;
      for (uint32_t other : {e_uw, e_vw}) {
        if (current[other] > level) {
          --current[other];
          buckets[current[other]].push_back(other);
        }
      }
    }
  }
  result.max_truss = k;
  return result;
}

}  // namespace opt
