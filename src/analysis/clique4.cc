#include "analysis/clique4.h"

#include <atomic>
#include <vector>

#include "graph/intersect.h"
#include "util/thread_pool.h"

namespace opt {

uint64_t Count4Cliques(const CSRGraph& g, uint32_t num_threads) {
  std::atomic<uint64_t> total{0};
  ParallelFor(0, g.num_vertices(), num_threads, [&](size_t a_index) {
    const auto a = static_cast<VertexId>(a_index);
    uint64_t local = 0;
    std::vector<VertexId> common;
    const auto succ_a = g.Successors(a);
    for (VertexId b : succ_a) {
      common.clear();
      Intersect(succ_a, g.Successors(b), &common);
      // Every adjacent pair (c, d) inside the common successor set
      // closes a 4-clique; count pairs via per-c intersection with the
      // suffix.
      for (size_t i = 0; i < common.size(); ++i) {
        const auto succ_c = g.Successors(common[i]);
        local += IntersectCount(
            std::span<const VertexId>(common).subspan(i + 1), succ_c);
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

void List4Cliques(const CSRGraph& g,
                  const std::function<void(VertexId, VertexId, VertexId,
                                           VertexId)>& fn) {
  std::vector<VertexId> common;
  std::vector<VertexId> pairs;
  for (VertexId a = 0; a < g.num_vertices(); ++a) {
    const auto succ_a = g.Successors(a);
    for (VertexId b : succ_a) {
      common.clear();
      Intersect(succ_a, g.Successors(b), &common);
      for (size_t i = 0; i < common.size(); ++i) {
        pairs.clear();
        Intersect(std::span<const VertexId>(common).subspan(i + 1),
                  g.Successors(common[i]), &pairs);
        for (VertexId d : pairs) fn(a, b, common[i], d);
      }
    }
  }
}

}  // namespace opt
