// 4-clique counting — the concrete "subgraph listing" extension the
// paper's conclusion points to as future work. Built on the same
// ordered edge-iterator machinery: a 4-clique {a<b<c<d} is found once,
// at its lowest edge (a, b), as an adjacent pair inside
// n_succ(a) ∩ n_succ(b).
#ifndef OPT_ANALYSIS_CLIQUE4_H_
#define OPT_ANALYSIS_CLIQUE4_H_

#include <cstdint>
#include <functional>

#include "graph/csr_graph.h"

namespace opt {

/// Exact 4-clique count.
uint64_t Count4Cliques(const CSRGraph& g, uint32_t num_threads = 1);

/// Lists every 4-clique (a < b < c < d) through `fn`. Single-threaded.
void List4Cliques(const CSRGraph& g,
                  const std::function<void(VertexId, VertexId, VertexId,
                                           VertexId)>& fn);

}  // namespace opt

#endif  // OPT_ANALYSIS_CLIQUE4_H_
