#include "shard/shard_plan.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "graph/builder.h"
#include "storage/graph_store.h"

namespace opt {

namespace {

constexpr char kManifestMagic[] = "opt_shard_manifest v1";

// The partial_shards wire mask is a u64.
constexpr uint32_t kMaxShards = 64;

}  // namespace

uint64_t ShardManifest::ghost_triangles_total() const {
  uint64_t total = 0;
  for (const ShardInfo& shard : shards) total += shard.ghost_triangles;
  return total;
}

uint64_t ShardManifest::replicated_bytes() const {
  uint64_t total = 0;
  for (const ShardInfo& shard : shards) {
    total += shard.closure_edges * 2 * sizeof(VertexId);
  }
  return total;
}

uint32_t ShardManifest::OwnerOf(VertexId v) const {
  for (const ShardInfo& shard : shards) {
    if (v < shard.range_hi) return shard.id;
  }
  return shards.empty() ? 0 : shards.back().id;
}

std::string ShardManifest::ToString() const {
  std::ostringstream out;
  out << kManifestMagic << "\n";
  out << "graph " << graph << "\n";
  out << "page_size " << page_size << "\n";
  out << "num_vertices " << num_vertices << "\n";
  out << "num_edges " << num_edges << "\n";
  out << "num_shards " << shards.size() << "\n";
  for (const ShardInfo& shard : shards) {
    // base_path comes last so it may contain spaces.
    out << "shard " << shard.id << " " << shard.range_lo << " "
        << shard.range_hi << " " << shard.owned_edges << " "
        << shard.closure_edges << " " << shard.ghost_triangles << " "
        << shard.num_pages << " " << shard.base_path << "\n";
  }
  return out.str();
}

Result<ShardManifest> ShardManifest::Parse(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return Status::Corruption("shard manifest: bad magic line");
  }
  ShardManifest manifest;
  uint32_t declared_shards = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "graph") {
      std::getline(fields, manifest.graph);
      if (!manifest.graph.empty() && manifest.graph.front() == ' ') {
        manifest.graph.erase(0, 1);
      }
    } else if (key == "page_size") {
      fields >> manifest.page_size;
    } else if (key == "num_vertices") {
      fields >> manifest.num_vertices;
    } else if (key == "num_edges") {
      fields >> manifest.num_edges;
    } else if (key == "num_shards") {
      fields >> declared_shards;
    } else if (key == "shard") {
      ShardInfo shard;
      fields >> shard.id >> shard.range_lo >> shard.range_hi >>
          shard.owned_edges >> shard.closure_edges >>
          shard.ghost_triangles >> shard.num_pages;
      if (fields.fail()) {
        return Status::Corruption("shard manifest: bad shard line: " + line);
      }
      std::getline(fields, shard.base_path);
      if (!shard.base_path.empty() && shard.base_path.front() == ' ') {
        shard.base_path.erase(0, 1);
      }
      if (shard.base_path.empty()) {
        return Status::Corruption("shard manifest: shard " +
                                  std::to_string(shard.id) +
                                  " missing base path");
      }
      manifest.shards.push_back(std::move(shard));
    } else {
      return Status::Corruption("shard manifest: unknown key: " + key);
    }
  }
  if (manifest.shards.empty() ||
      manifest.shards.size() != declared_shards) {
    return Status::Corruption("shard manifest: shard count mismatch");
  }
  if (manifest.shards.size() > kMaxShards) {
    return Status::Corruption("shard manifest: more than 64 shards");
  }
  // Ranges must tile [0, num_vertices) in shard-id order.
  VertexId expected_lo = 0;
  for (uint32_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardInfo& shard = manifest.shards[i];
    if (shard.id != i || shard.range_lo != expected_lo ||
        shard.range_hi < shard.range_lo) {
      return Status::Corruption("shard manifest: ranges are not contiguous");
    }
    expected_lo = shard.range_hi;
  }
  if (expected_lo != manifest.num_vertices) {
    return Status::Corruption(
        "shard manifest: ranges do not cover the vertex space");
  }
  return manifest;
}

Status ShardManifest::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot write manifest: " + path);
  out << ToString();
  out.close();
  if (!out) return Status::IOError("short write to manifest: " + path);
  return Status::OK();
}

Result<ShardManifest> ShardManifest::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read manifest: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str());
}

std::vector<VertexId> ComputeRangeEnds(const CSRGraph& g,
                                       uint32_t num_shards) {
  // Identical to the range rule in SimulateAKM so the simulator stays an
  // executable model of the real partitioner.
  const VertexId n = g.num_vertices();
  const uint64_t total = g.num_directed_edges();
  const uint64_t share = std::max<uint64_t>(1, total / num_shards);
  std::vector<VertexId> range_end;
  uint64_t acc = 0;
  for (VertexId v = 0; v < n; ++v) {
    acc += g.degree(v);
    if (acc >= share && range_end.size() + 1 < num_shards) {
      range_end.push_back(v + 1);
      acc = 0;
    }
  }
  // Tiny graphs may not trip the threshold num_shards - 1 times;
  // trailing shards come out empty rather than missing.
  while (range_end.size() < num_shards) range_end.push_back(n);
  return range_end;
}

Result<ShardManifest> PartitionGraph(const CSRGraph& g, Env* env,
                                     const std::string& graph_name,
                                     const std::string& out_prefix,
                                     const ShardPlanOptions& options) {
  if (options.num_shards == 0 || options.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards must be in [1, 64] (the partial mask is 64 bits)");
  }
  const std::vector<VertexId> ends = ComputeRangeEnds(g, options.num_shards);

  ShardManifest manifest;
  manifest.graph = graph_name;
  manifest.page_size = options.page_size;
  manifest.num_vertices = g.num_vertices();
  manifest.num_edges = g.num_directed_edges() / 2;

  VertexId lo = 0;
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    const VertexId hi = ends[i];
    std::vector<Edge> edges;
    std::vector<Edge> closure;
    std::unordered_set<uint64_t> closure_seen;
    for (VertexId u = lo; u < hi; ++u) {
      const auto succ = g.Successors(u);
      for (VertexId v : succ) edges.emplace_back(u, v);
      // Closure: wedges (u; v, w) with both arms past range_hi close a
      // triangle iff (v, w) is a global edge; that edge must be present
      // locally for the shard to count (u, v, w). Quadratic in the
      // boundary-successor count per vertex — the same wedge work a
      // vertex-iterator pays, just restricted to the boundary.
      const auto first_hi =
          std::lower_bound(succ.begin(), succ.end(), hi);
      for (auto v_it = first_hi; v_it != succ.end(); ++v_it) {
        for (auto w_it = v_it + 1; w_it != succ.end(); ++w_it) {
          if (!g.HasEdge(*v_it, *w_it)) continue;
          const uint64_t key =
              (static_cast<uint64_t>(*v_it) << 32) | *w_it;
          if (closure_seen.insert(key).second) {
            closure.emplace_back(*v_it, *w_it);
          }
        }
      }
    }

    ShardInfo shard;
    shard.id = i;
    shard.range_lo = lo;
    shard.range_hi = hi;
    shard.owned_edges = edges.size();
    shard.closure_edges = closure.size();
    shard.base_path = out_prefix + ".shard" + std::to_string(i);

    // Ghost triangles live entirely inside the closure edge set; count
    // them offline so the router can subtract.
    {
      CSRGraph closure_graph = GraphBuilder::FromEdges(closure);
      CountingSink ghosts;
      EdgeIteratorInMemory(closure_graph, &ghosts);
      shard.ghost_triangles = ghosts.count();
    }

    edges.insert(edges.end(), closure.begin(), closure.end());
    CSRGraph shard_graph = GraphBuilder::FromEdges(std::move(edges));
    OPT_RETURN_IF_ERROR(GraphStore::Create(shard_graph, env,
                                           shard.base_path,
                                           {options.page_size}));
    OPT_ASSIGN_OR_RETURN(auto store,
                         GraphStore::Open(env, shard.base_path));
    shard.num_pages = store->num_pages();

    manifest.shards.push_back(std::move(shard));
    lo = hi;
  }
  return manifest;
}

}  // namespace opt
