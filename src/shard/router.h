// QueryRouter: a wire-protocol server that fans client queries out over
// the shards of one partitioned graph and merges the answers.
//
//   COUNT       — parallel fan-out; merged total = sum of per-shard
//                 counts minus the manifest's ghost triangles (exact).
//   LIST        — shards streamed in id order; each record (u, v, {w})
//                 is kept only if the shard owns u, so the merged
//                 stream is the exact global list, grouped by shard
//                 range (record order within a shard follows that
//                 server's own batch order).
//   ADD/REMOVE  — the batch splits by edge ownership (min endpoint);
//                 sub-batches commit per shard with PR 6 atomicity. A
//                 failed shard's sub-batch is retryable verbatim.
//   SUBSCRIBE   — polls per-shard snapshots and merges them under the
//                 router's virtual epoch (sum of restart-monotonic
//                 shard epochs).
//   STATS       — merged counters (summed) + histograms (count-weighted
//                 approximation) from every shard plus the router's own
//                 metrics. SHARD_STATS adds the per-shard breakdown.
//
// Degradation contract: when a shard is unreachable or fails, the
// router answers anyway and sets the shard's bit in `partial_shards`
// (mask of FAILED shards; 0 = complete) instead of failing the query —
// the PR 4 degraded-result contract extended across processes. Only
// when every shard fails does the client see an error.
//
// Transient connect failures during shard (re)starts are absorbed by a
// bounded retry/backoff loop reusing the storage layer's IoRetryPolicy
// shape (deterministic full jitter, exponential, capped), surfaced as
// router.retries / router.giveups metrics.
#ifndef OPT_SHARD_ROUTER_H_
#define OPT_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/wire.h"
#include "shard/shard_set.h"
#include "storage/async_io.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace opt {

struct RouterOptions {
  /// Fan-out worker threads shared by all client connections.
  uint32_t workers = 8;
  /// Per-shard sub-request deadline; client deadlines tighten it.
  uint64_t shard_deadline_ms = 30000;
  /// Connect retry/backoff for shards that are restarting. Reuses the
  /// async-I/O retry policy shape (ReadPageWithRetry).
  IoRetryPolicy connect_retry{
      /*max_attempts=*/6,
      /*backoff_base_micros=*/2000,
      /*backoff_max_micros=*/200000,
      /*op_deadline_micros=*/0,
  };
  /// Idle connections kept per shard.
  uint32_t max_idle_conns_per_shard = 4;
  /// SUBSCRIBE merge poll cadence.
  uint64_t subscribe_poll_ms = 50;
};

class QueryRouter {
 public:
  /// `shards` must outlive the router and already be Spawned/Attached.
  QueryRouter(ShardSet* shards, RouterOptions options = {});
  ~QueryRouter();

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  Status ListenTcp(uint16_t port);
  Status Start();
  void Stop();
  uint16_t bound_port() const { return bound_port_; }

  /// Fleet view for the Prometheus scrape endpoint: count-weight-merged
  /// histograms pulled live from every reachable shard (same
  /// approximation as STATS) plus per-shard `opt_shard_up` health
  /// gauges. The caller (opt_router --metrics-port) concatenates this
  /// with the router's own registry exposition.
  std::string FleetPrometheus();

 private:
  struct PooledConn {
    OptClient client;
    uint64_t generation = 0;
  };

  /// One shard's slice of a fanned-out request.
  struct ShardOutcome {
    Status status = Status::OK();
    CountResult count;
    MutateResult mutate;
    SubscribeCountResult subscribe;
    StatsResult stats;
    TracePullResult trace;
    uint64_t micros = 0;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  Status HandleCount(int fd, const WireMessage& message);
  Status HandleList(int fd, const WireMessage& message);
  Status HandleStats(int fd);
  Status HandleShardStats(int fd);
  Status HandleMutate(int fd, const WireMessage& message, bool add);
  Status HandleSubscribe(int fd, const WireMessage& message);
  /// Merges the router's own span ring with every shard's (TRACE_PULL
  /// fan-out): one section per process, shards relabelled "shard<i>",
  /// ready for AssembleTrace() on the client.
  Status HandleTracePull(int fd, const WireMessage& message);

  Status CheckGraph(const std::string& graph) const;

  /// Pops an idle connection (current generation only) or dials with
  /// the bounded retry/backoff loop.
  Result<PooledConn> AcquireConn(uint32_t shard);
  void ReleaseConn(uint32_t shard, PooledConn conn, bool reusable);

  /// Runs `fn(shard)` for every listed shard on the fan-out pool and
  /// waits; outcomes land in `outcomes[shard]`. Records per-shard
  /// latency and failure metrics.
  void FanOut(const std::vector<uint32_t>& targets,
              const std::function<void(uint32_t, ShardOutcome*)>& fn,
              std::vector<ShardOutcome>* outcomes);

  uint64_t EffectiveDeadline(uint64_t client_deadline_ms) const;

  ShardSet* const shards_;
  const RouterOptions options_;

  std::atomic<int> listen_fd_{-1};
  uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  struct Connection {
    int fd = -1;
    std::thread thread;
  };
  std::vector<std::unique_ptr<Connection>> connections_;

  std::unique_ptr<ThreadPool> pool_;

  std::mutex conn_pool_mutex_;
  std::vector<std::vector<PooledConn>> idle_conns_;  // per shard

  // Per-shard router-side breakdown for SHARD_STATS.
  struct ShardMetrics {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> retries{0};
    HistogramMetric latency_micros;
  };
  std::vector<std::unique_ptr<ShardMetrics>> shard_metrics_;
};

}  // namespace opt

#endif  // OPT_SHARD_ROUTER_H_
