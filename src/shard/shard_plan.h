// Shard planning: splits one graph into N contiguous vertex-range shards
// whose per-shard COUNTs merge back to the exact global answer.
//
// Ownership is by minimum endpoint: shard i owns the contiguous range
// [range_lo, range_hi) and every edge (u, v), u < v, with u in the
// range. Each shard's store additionally carries *closure* edges —
// edges (v, w) with both endpoints past range_hi where some owned u is
// adjacent to both — so the triangle (u, v, w) is locally countable.
// All shard edges are real global edges, so every local triangle is a
// real global triangle; the only double counting is "ghost" triangles
// lying entirely inside the closure edge set (e.g. the three high
// vertices of a K4 whose apex is owned). The partitioner counts those
// offline and records them in the manifest; the router subtracts them,
// making the merged COUNT exact:
//
//   global triangles = sum_i(shard_i COUNT) - sum_i(ghost_i)
//
// LIST needs no correction: the router keeps a record (u, v, {w..})
// only from the shard owning u, which drops ghosts automatically.
//
// Ranges are balanced by adjacency volume with the same rule as
// distsim's SimulateAKM, which makes the simulator's partitioning an
// executable model for the real thing (asserted in tests/test_shard.cc).
#ifndef OPT_SHARD_SHARD_PLAN_H_
#define OPT_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr_graph.h"
#include "storage/env.h"
#include "storage/page.h"
#include "util/status.h"

namespace opt {

struct ShardPlanOptions {
  uint32_t num_shards = 4;
  uint32_t page_size = kDefaultPageSize;
};

struct ShardInfo {
  uint32_t id = 0;
  VertexId range_lo = 0;
  VertexId range_hi = 0;  // exclusive
  std::string base_path;
  uint64_t owned_edges = 0;    // undirected edges with min endpoint owned
  uint64_t closure_edges = 0;  // replicated (v, w) edges past range_hi
  uint64_t ghost_triangles = 0;
  uint32_t num_pages = 0;
};

struct ShardManifest {
  std::string graph;  // name every shard serves the store under
  uint32_t page_size = kDefaultPageSize;
  VertexId num_vertices = 0;
  uint64_t num_edges = 0;  // undirected, across all shards (no closure)
  std::vector<ShardInfo> shards;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards.size());
  }

  uint64_t ghost_triangles_total() const;

  /// Bytes of replicated adjacency (closure edges), for comparison with
  /// the AKM surrogate-list shuffle volume.
  uint64_t replicated_bytes() const;

  /// Shard owning vertex `v`. Ids past the last range clamp to the last
  /// shard so mutation routing stays deterministic (the shard rejects
  /// out-of-range ids itself).
  uint32_t OwnerOf(VertexId v) const;

  /// Shard owning edge {u, v}: the owner of the smaller endpoint.
  uint32_t OwnerOfEdge(VertexId u, VertexId v) const {
    return OwnerOf(u < v ? u : v);
  }

  std::string ToString() const;
  static Result<ShardManifest> Parse(std::string_view text);

  Status Save(const std::string& path) const;
  static Result<ShardManifest> Load(const std::string& path);
};

/// Exclusive range ends for `num_shards` contiguous vertex ranges
/// balanced by adjacency volume — the SimulateAKM rule. Always returns
/// exactly `num_shards` entries, the last equal to g.num_vertices()
/// (trailing shards may be empty on tiny graphs).
std::vector<VertexId> ComputeRangeEnds(const CSRGraph& g,
                                       uint32_t num_shards);

/// Partitions `g` into per-shard GraphStores at
/// `<out_prefix>.shard<i>`(.pages/.meta) plus a manifest (not yet
/// saved; callers typically Save() it to `<out_prefix>.manifest`).
Result<ShardManifest> PartitionGraph(const CSRGraph& g, Env* env,
                                     const std::string& graph_name,
                                     const std::string& out_prefix,
                                     const ShardPlanOptions& options = {});

}  // namespace opt

#endif  // OPT_SHARD_SHARD_PLAN_H_
