// ShardSet: lifecycle manager for the N shard opt_server processes
// behind a router. Two modes:
//
//   Spawn()  — fork/exec one server per shard from an argv template,
//              parse "listening on 127.0.0.1:<port>" from the child's
//              stdout, supervise with waitpid, and respawn crashed
//              shards (a respawned shard reloads its base store; the
//              in-memory delta overlay of the dead process is gone).
//   Attach() — adopt already-running servers at fixed endpoints; no
//              process supervision, health comes from the STATS probe.
//
// A monitor thread health-checks every shard via STATS with a bounded
// receive timeout and tracks per-shard epochs from the
// "graph.<name>.epoch=" stats line. Epochs are *restart-monotonic*:
// when a shard dies its last observed epoch is folded into an offset,
// so epoch(shard) never goes backwards across respawns and the
// router's virtual epoch (sum over shards) stays monotonic.
#ifndef OPT_SHARD_SHARD_SET_H_
#define OPT_SHARD_SHARD_SET_H_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "shard/shard_plan.h"
#include "util/status.h"

namespace opt {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct ShardSetOptions {
  /// Spawn mode: argv prefix to exec per shard (binary first). ShardSet
  /// appends "--port 0 --graph <name>=<base_path>" plus `extra_args`.
  /// The binary must print opt_server's "listening on 127.0.0.1:<port>"
  /// line on stdout.
  std::vector<std::string> command;
  std::vector<std::string> extra_args;
  bool restart_on_exit = true;
  uint32_t spawn_timeout_ms = 15000;
  uint32_t probe_interval_ms = 200;
  uint64_t probe_recv_timeout_ms = 2000;
};

class ShardSet {
 public:
  ShardSet(ShardManifest manifest, ShardSetOptions options = {});
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  /// Spawns one server process per manifest shard and starts the
  /// monitor. Fails (and kills anything already spawned) if any shard
  /// does not report a listening port within spawn_timeout_ms.
  Status Spawn();

  /// Adopts running servers, one endpoint per manifest shard, and
  /// starts the monitor (probe-only).
  Status Attach(std::vector<ShardEndpoint> endpoints);

  /// Stops the monitor and, in spawn mode, SIGTERMs (then SIGKILLs)
  /// every child. Idempotent; also run by the destructor.
  void Stop();

  const ShardManifest& manifest() const { return manifest_; }
  uint32_t num_shards() const { return manifest_.num_shards(); }

  ShardEndpoint endpoint(uint32_t shard) const;
  bool healthy(uint32_t shard) const;
  /// 0 in attach mode.
  pid_t pid(uint32_t shard) const;
  uint64_t restarts(uint32_t shard) const;
  uint64_t total_restarts() const;
  /// Bumps on every respawn; connection pools use it to drop stale
  /// sockets to the previous incarnation.
  uint64_t generation(uint32_t shard) const;

  /// Records an epoch observed in a reply from `shard` (mutations and
  /// subscribes carry them); keeps the per-shard maximum.
  void NoteEpoch(uint32_t shard, uint64_t epoch);
  /// Restart-monotonic epoch: accumulated offset + last observed.
  uint64_t epoch(uint32_t shard) const;
  /// Sum over shards — the router's virtual epoch.
  uint64_t virtual_epoch() const;

  /// Blocks until every shard has passed at least one health probe or
  /// the deadline expires; returns false on timeout.
  bool WaitHealthy(uint64_t timeout_ms);

 private:
  struct Shard {
    ShardEndpoint endpoint;
    pid_t pid = 0;
    int stdout_fd = -1;  // kept open (and drained) so the child never
                         // takes SIGPIPE writing to stdout
    bool healthy = false;
    bool probed_ok_once = false;
    uint64_t restarts = 0;
    uint64_t generation = 0;
    uint64_t epoch_offset = 0;
    uint64_t last_epoch = 0;
  };

  /// Fork/execs shard `i` and parses its port. Called without the lock
  /// held (port parsing can take a while); publishes under the lock.
  Status SpawnOne(uint32_t i);
  void StartMonitor();
  void MonitorLoop();
  void ProbeShard(uint32_t i);
  void ReapAndRespawn();
  void KillAll();

  const ShardManifest manifest_;
  const ShardSetOptions options_;
  bool spawn_mode_ = false;

  mutable std::mutex mutex_;
  std::condition_variable health_cv_;
  std::vector<Shard> shards_;

  std::atomic<bool> stopping_{false};
  std::thread monitor_;
};

}  // namespace opt

#endif  // OPT_SHARD_SHARD_SET_H_
