#include "shard/router.h"

#include "service/query_scheduler.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/trace.h"

namespace opt {

namespace {

Status SendError(int fd, const Status& status) {
  return WriteMessage(fd, MessageType::kError, EncodeError(status));
}

/// `[trace=<hex>] ` prefix for Warn lines tied to a traced request
/// (mirrors the scheduler's tag so one grep follows a request across
/// both processes); empty for untraced requests.
std::string TraceTag(uint64_t trace_id) {
  if (trace_id == 0) return std::string();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[trace=%016llx] ",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf);
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Deterministic full jitter over [backoff/2, backoff], same scheme as
/// the async-I/O engine's ReadPageWithRetry (keyed by shard + attempt
/// instead of pid + attempt).
uint32_t JitteredBackoff(uint32_t backoff, uint32_t shard,
                         uint32_t attempt) {
  uint64_t h = (static_cast<uint64_t>(shard) << 32) | attempt;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  const uint32_t half = backoff / 2;
  return half + static_cast<uint32_t>(h % (half + 1));
}

/// Count-weighted merge of per-shard histogram summaries. Quantiles of
/// quantiles are an approximation (documented in DESIGN.md §11); count,
/// min, max, and mean are exact.
StatsHistogram MergeHistograms(const std::string& name,
                               const std::vector<StatsHistogram>& parts) {
  StatsHistogram merged;
  merged.name = name;
  double mean_weighted = 0, p50_weighted = 0, p95_weighted = 0,
         p99_weighted = 0;
  for (const StatsHistogram& part : parts) {
    if (part.count == 0) continue;
    if (merged.count == 0) {
      merged.min = part.min;
      merged.max = part.max;
    } else {
      merged.min = std::min(merged.min, part.min);
      merged.max = std::max(merged.max, part.max);
    }
    merged.count += part.count;
    const double w = static_cast<double>(part.count);
    mean_weighted += w * part.mean;
    p50_weighted += w * part.p50;
    p95_weighted += w * part.p95;
    p99_weighted += w * part.p99;
  }
  if (merged.count > 0) {
    const double total = static_cast<double>(merged.count);
    merged.mean = mean_weighted / total;
    merged.p50 = p50_weighted / total;
    merged.p95 = p95_weighted / total;
    merged.p99 = p99_weighted / total;
  }
  return merged;
}

}  // namespace

QueryRouter::QueryRouter(ShardSet* shards, RouterOptions options)
    : shards_(shards), options_(std::move(options)) {
  pool_ = std::make_unique<ThreadPool>(std::max(1u, options_.workers));
  idle_conns_.resize(shards_->num_shards());
  shard_metrics_.reserve(shards_->num_shards());
  for (uint32_t i = 0; i < shards_->num_shards(); ++i) {
    shard_metrics_.push_back(std::make_unique<ShardMetrics>());
  }
}

QueryRouter::~QueryRouter() { Stop(); }

Status QueryRouter::ListenTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  listen_fd_ = fd;
  bound_port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status QueryRouter::Start() {
  if (listen_fd_.load() < 0) {
    return Status::InvalidArgument("ListenTcp must succeed before Start");
  }
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryRouter::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  const int listener = listen_fd_.exchange(-1);
  if (listener >= 0) {
    // shutdown() unblocks accept(); close() alone does not on Linux.
    ::shutdown(listener, SHUT_RDWR);
    ::close(listener);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
    ::close(connection->fd);
  }
  std::lock_guard<std::mutex> lock(conn_pool_mutex_);
  for (auto& per_shard : idle_conns_) per_shard.clear();
}

void QueryRouter::AcceptLoop() {
  for (;;) {
    const int listener = listen_fd_.load(std::memory_order_acquire);
    if (listener < 0) return;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    connection->thread = std::thread([this, fd] { HandleConnection(fd); });
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

void QueryRouter::HandleConnection(int fd) {
  for (;;) {
    WireMessage message;
    Status status = ReadMessage(fd, &message);
    if (!status.ok()) return;
    switch (message.type) {
      case MessageType::kCountRequest:
        status = HandleCount(fd, message);
        break;
      case MessageType::kListRequest:
        status = HandleList(fd, message);
        break;
      case MessageType::kStatsRequest:
        status = HandleStats(fd);
        break;
      case MessageType::kShardStatsRequest:
        status = HandleShardStats(fd);
        break;
      case MessageType::kAddEdgesRequest:
        status = HandleMutate(fd, message, /*add=*/true);
        break;
      case MessageType::kRemoveEdgesRequest:
        status = HandleMutate(fd, message, /*add=*/false);
        break;
      case MessageType::kSubscribeCountRequest:
        status = HandleSubscribe(fd, message);
        break;
      case MessageType::kTracePullRequest:
        status = HandleTracePull(fd, message);
        break;
      case MessageType::kProfileRequest:
        status = SendError(
            fd, Status::NotSupported(
                    "PROFILE does not aggregate across shards; profile a "
                    "shard server directly"));
        break;
      case MessageType::kLoadGraphRequest:
        status = SendError(
            fd, Status::NotSupported(
                    "the router serves one partitioned graph; repartition "
                    "and restart to change it"));
        break;
      default:
        status = SendError(
            fd, Status::InvalidArgument(
                    "unexpected message type " +
                    std::to_string(static_cast<int>(message.type))));
        break;
    }
    if (!status.ok()) {
      ::close(fd);
      return;
    }
  }
}

Status QueryRouter::CheckGraph(const std::string& graph) const {
  if (graph != shards_->manifest().graph) {
    return Status::NotFound("router serves graph '" +
                            shards_->manifest().graph + "', not '" + graph +
                            "'");
  }
  return Status::OK();
}

Result<QueryRouter::PooledConn> QueryRouter::AcquireConn(uint32_t shard) {
  {
    std::lock_guard<std::mutex> lock(conn_pool_mutex_);
    auto& idle = idle_conns_[shard];
    const uint64_t current = shards_->generation(shard);
    while (!idle.empty()) {
      PooledConn conn = std::move(idle.back());
      idle.pop_back();
      // Sockets to a previous incarnation are dead on arrival.
      if (conn.generation == current) return conn;
    }
  }
  static Counter* retries = Metrics().GetCounter("router.retries");
  static Counter* giveups = Metrics().GetCounter("router.giveups");
  const IoRetryPolicy& retry = options_.connect_retry;
  uint32_t backoff = retry.backoff_base_micros;
  Status last = Status::Unavailable("no connect attempt made");
  for (uint32_t attempt = 1; attempt <= std::max(1u, retry.max_attempts);
       ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          JitteredBackoff(backoff, shard, attempt)));
      backoff = std::min(retry.backoff_max_micros, backoff * 2);
      retries->Increment();
      shard_metrics_[shard]->retries.fetch_add(1,
                                               std::memory_order_relaxed);
    }
    const ShardEndpoint endpoint = shards_->endpoint(shard);
    PooledConn conn;
    conn.generation = shards_->generation(shard);
    last = conn.client.ConnectTcp(endpoint.host, endpoint.port);
    if (last.ok()) {
      (void)conn.client.SetRecvTimeoutMillis(options_.shard_deadline_ms +
                                             2000);
      return conn;
    }
  }
  giveups->Increment();
  return Status::Unavailable("shard " + std::to_string(shard) +
                             " unreachable: " + last.message());
}

void QueryRouter::ReleaseConn(uint32_t shard, PooledConn conn,
                              bool reusable) {
  if (!reusable || !conn.client.connected()) return;
  std::lock_guard<std::mutex> lock(conn_pool_mutex_);
  auto& idle = idle_conns_[shard];
  if (idle.size() < options_.max_idle_conns_per_shard &&
      conn.generation == shards_->generation(shard)) {
    idle.push_back(std::move(conn));
  }
}

void QueryRouter::FanOut(
    const std::vector<uint32_t>& targets,
    const std::function<void(uint32_t, ShardOutcome*)>& fn,
    std::vector<ShardOutcome>* outcomes) {
  outcomes->clear();
  outcomes->resize(shards_->num_shards());
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t pending = targets.size();
  for (uint32_t shard : targets) {
    pool_->Submit([this, shard, &fn, outcomes, &done_mutex, &done_cv,
                   &pending] {
      ShardOutcome* outcome = &(*outcomes)[shard];
      const uint64_t start = NowMicros();
      fn(shard, outcome);
      outcome->micros = NowMicros() - start;
      ShardMetrics& metrics = *shard_metrics_[shard];
      metrics.requests.fetch_add(1, std::memory_order_relaxed);
      metrics.latency_micros.Record(outcome->micros);
      if (!outcome->status.ok()) {
        metrics.failures.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--pending == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&pending] { return pending == 0; });
}

uint64_t QueryRouter::EffectiveDeadline(uint64_t client_deadline_ms) const {
  if (client_deadline_ms == 0) return options_.shard_deadline_ms;
  return std::min(client_deadline_ms, options_.shard_deadline_ms);
}

Status QueryRouter::HandleCount(int fd, const WireMessage& message) {
  QueryRequest request;
  Status status = DecodeQueryRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  if (Status check = CheckGraph(request.graph); !check.ok()) {
    return SendError(fd, check);
  }
  Metrics().GetCounter("router.requests")->Increment();
  Metrics().GetCounter("router.fanouts")->Increment();
  TraceContextScope remote({request.trace_id, request.parent_span_id});
  TraceSpan router_span("router", "router.count",
                        CurrentTraceRecorder() != nullptr
                            ? "\"graph\":\"" + JsonEscape(request.graph) +
                                  "\""
                            : std::string());
  // Fan-out workers are other threads: hand them the router span's
  // context explicitly so each per-shard rpc span parents under it (and
  // the shard-side spans, via the client's auto-attached context, under
  // the rpc span — one tree across processes).
  const TraceContext fan_ctx{router_span.trace_id(), router_span.span_id()};

  QueryRequest sub = request;
  sub.deadline_millis = EffectiveDeadline(request.deadline_millis);
  ClientQueryOptions sub_options;
  sub_options.memory_pages = sub.memory_pages;
  sub_options.num_threads = sub.num_threads;
  sub_options.deadline_millis = sub.deadline_millis;

  std::vector<uint32_t> targets(shards_->num_shards());
  for (uint32_t i = 0; i < targets.size(); ++i) targets[i] = i;
  std::vector<ShardOutcome> outcomes;
  FanOut(
      targets,
      [this, &sub, &sub_options, fan_ctx](uint32_t shard,
                                          ShardOutcome* outcome) {
        TraceContextScope scope(fan_ctx);
        TraceSpan rpc_span("router", "rpc.count",
                           "\"shard\":" + std::to_string(shard));
        auto conn = AcquireConn(shard);
        if (!conn.ok()) {
          outcome->status = conn.status();
          return;
        }
        auto result = conn->client.Count(sub.graph, sub_options);
        outcome->status = result.status();
        if (result.ok()) outcome->count = *result;
        ReleaseConn(shard, std::move(*conn), result.status().ok());
      },
      &outcomes);

  const ShardManifest& manifest = shards_->manifest();
  CountResult merged;
  merged.source = static_cast<uint8_t>(ResultSource::kExecuted);
  merged.num_shards = shards_->num_shards();
  uint32_t failed = 0;
  for (uint32_t i = 0; i < outcomes.size(); ++i) {
    const ShardOutcome& outcome = outcomes[i];
    if (!outcome.status.ok()) {
      merged.partial_shards |= (1ull << i);
      ++failed;
      continue;
    }
    // Each shard's count includes its ghost triangles; subtract them
    // per contributing shard so partial answers stay internally
    // consistent.
    merged.triangles +=
        outcome.count.triangles - manifest.shards[i].ghost_triangles;
    merged.pool_hits += outcome.count.pool_hits;
    merged.pages_read += outcome.count.pages_read;
    merged.iterations += outcome.count.iterations;
    merged.seconds = std::max(merged.seconds, outcome.count.seconds);
  }
  if (failed == outcomes.size()) {
    Metrics().GetCounter("router.failures")->Increment();
    const std::string first =
        outcomes.empty() ? std::string("none") : outcomes[0].status.message();
    OPT_LOG(Warn) << TraceTag(router_span.trace_id())
                  << "COUNT failed on every shard; first: " << first;
    return SendError(
        fd, Status::Unavailable("all shards failed; first: " + first));
  }
  if (merged.partial_shards != 0) {
    Metrics().GetCounter("router.partial")->Increment();
    OPT_LOG(Warn) << TraceTag(router_span.trace_id())
                  << "partial COUNT: failed shard mask=0x" << std::hex
                  << merged.partial_shards << std::dec;
  }
  return WriteMessage(fd, MessageType::kCountResult,
                      EncodeCountResult(merged));
}

Status QueryRouter::HandleList(int fd, const WireMessage& message) {
  QueryRequest request;
  Status status = DecodeQueryRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  if (Status check = CheckGraph(request.graph); !check.ok()) {
    return SendError(fd, check);
  }
  Metrics().GetCounter("router.requests")->Increment();
  TraceContextScope remote({request.trace_id, request.parent_span_id});
  TraceSpan router_span("router", "router.list",
                        CurrentTraceRecorder() != nullptr
                            ? "\"graph\":\"" + JsonEscape(request.graph) +
                                  "\""
                            : std::string());

  ClientQueryOptions sub_options;
  sub_options.memory_pages = request.memory_pages;
  sub_options.num_threads = request.num_threads;
  sub_options.deadline_millis = EffectiveDeadline(request.deadline_millis);

  const ShardManifest& manifest = shards_->manifest();
  ListEnd merged;
  merged.num_shards = shards_->num_shards();
  Status forward_status = Status::OK();

  // Shards stream sequentially in id order: shard i owns the contiguous
  // vertex range [lo_i, hi_i), so the concatenation of the
  // ownership-filtered streams is the exact global list, grouped by
  // shard range.
  for (uint32_t i = 0; i < shards_->num_shards() && forward_status.ok();
       ++i) {
    const ShardInfo& info = manifest.shards[i];
    const uint64_t start = NowMicros();
    TraceSpan rpc_span("router", "rpc.list",
                       "\"shard\":" + std::to_string(i));
    auto conn = AcquireConn(i);
    Status shard_status;
    if (!conn.ok()) {
      shard_status = conn.status();
    } else {
      auto end = conn->client.List(
          request.graph,
          [&](const ListBatch& batch) {
            ListBatch kept;
            for (const ListBatch::Record& record : batch.records) {
              // Keep a record only if this shard owns its root vertex;
              // ghosts (u past range_hi) drop here.
              if (record.u < info.range_lo || record.u >= info.range_hi) {
                continue;
              }
              merged.triangles += record.ws.size();
              kept.records.push_back(record);
            }
            if (!kept.records.empty() && forward_status.ok()) {
              forward_status = WriteMessage(fd, MessageType::kListBatch,
                                            EncodeListBatch(kept));
            }
          },
          sub_options);
      shard_status = end.status();
      if (end.ok()) merged.seconds += end->seconds;
      ReleaseConn(i, std::move(*conn), end.status().ok());
    }
    ShardMetrics& metrics = *shard_metrics_[i];
    metrics.requests.fetch_add(1, std::memory_order_relaxed);
    metrics.latency_micros.Record(NowMicros() - start);
    if (!shard_status.ok()) {
      metrics.failures.fetch_add(1, std::memory_order_relaxed);
      merged.partial_shards |= (1ull << i);
    }
  }
  if (!forward_status.ok()) return forward_status;  // client went away
  if (merged.partial_shards != 0) {
    Metrics().GetCounter("router.partial")->Increment();
    if (merged.partial_shards ==
        (shards_->num_shards() == 64
             ? ~0ull
             : (1ull << shards_->num_shards()) - 1)) {
      Metrics().GetCounter("router.failures")->Increment();
      return SendError(fd,
                       Status::Unavailable("all shards failed the LIST"));
    }
  }
  return WriteMessage(fd, MessageType::kListEnd, EncodeListEnd(merged));
}

Status QueryRouter::HandleMutate(int fd, const WireMessage& message,
                                 bool add) {
  MutateRequest request;
  Status status = DecodeMutateRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  if (Status check = CheckGraph(request.graph); !check.ok()) {
    return SendError(fd, check);
  }
  Metrics().GetCounter("router.requests")->Increment();
  TraceContextScope remote({request.trace_id, request.parent_span_id});
  TraceSpan router_span("router",
                        add ? "router.delta.add" : "router.delta.remove",
                        CurrentTraceRecorder() != nullptr
                            ? "\"graph\":\"" + JsonEscape(request.graph) +
                                  "\""
                            : std::string());
  const TraceContext fan_ctx{router_span.trace_id(), router_span.span_id()};

  const ShardManifest& manifest = shards_->manifest();
  std::vector<std::vector<std::pair<VertexId, VertexId>>> batches(
      shards_->num_shards());
  for (const auto& edge : request.edges) {
    batches[manifest.OwnerOfEdge(edge.first, edge.second)].push_back(edge);
  }
  std::vector<uint32_t> targets;
  for (uint32_t i = 0; i < batches.size(); ++i) {
    if (!batches[i].empty()) targets.push_back(i);
  }
  if (targets.empty()) {
    return SendError(fd, Status::InvalidArgument("empty edge batch"));
  }

  std::vector<ShardOutcome> outcomes;
  FanOut(
      targets,
      [this, &request, &batches, add, fan_ctx](uint32_t shard,
                                               ShardOutcome* outcome) {
        TraceContextScope scope(fan_ctx);
        TraceSpan rpc_span("router", add ? "rpc.delta.add"
                                         : "rpc.delta.remove",
                           "\"shard\":" + std::to_string(shard));
        auto conn = AcquireConn(shard);
        if (!conn.ok()) {
          outcome->status = conn.status();
          return;
        }
        auto result = add ? conn->client.AddEdges(request.graph,
                                                  batches[shard])
                          : conn->client.RemoveEdges(request.graph,
                                                     batches[shard]);
        outcome->status = result.status();
        if (result.ok()) outcome->mutate = *result;
        // Server-side rejections (InvalidArgument) keep the connection
        // usable; only transport errors burn it.
        ReleaseConn(shard, std::move(*conn),
                    result.status().code() != StatusCode::kIOError);
      },
      &outcomes);

  MutateResult merged;
  merged.num_shards = shards_->num_shards();
  merged.approx_valid = 1;
  uint32_t succeeded = 0;
  Status first_failure = Status::OK();
  for (uint32_t shard : targets) {
    const ShardOutcome& outcome = outcomes[shard];
    if (!outcome.status.ok()) {
      merged.partial_shards |= (1ull << shard);
      if (first_failure.ok()) first_failure = outcome.status;
      merged.approx_valid = 0;
      continue;
    }
    ++succeeded;
    shards_->NoteEpoch(shard, outcome.mutate.epoch);
    merged.batch_triangle_delta += outcome.mutate.batch_triangle_delta;
    merged.total_triangle_delta += outcome.mutate.total_triangle_delta;
    merged.edges_applied += outcome.mutate.edges_applied;
    merged.seconds = std::max(merged.seconds, outcome.mutate.seconds);
    if (outcome.mutate.approx_valid == 0) merged.approx_valid = 0;
    merged.approx_triangles += outcome.mutate.approx_triangles;
  }
  if (succeeded == 0) {
    Metrics().GetCounter("router.failures")->Increment();
    OPT_LOG(Warn) << TraceTag(router_span.trace_id())
                  << "mutation failed on every targeted shard: "
                  << first_failure.ToString();
    return SendError(fd, first_failure);
  }
  // The merged epoch is the router's virtual epoch: the sum of
  // restart-monotonic shard epochs, so it advances on every commit.
  merged.epoch = shards_->virtual_epoch();
  if (merged.partial_shards != 0) {
    Metrics().GetCounter("router.partial")->Increment();
  }
  return WriteMessage(fd, MessageType::kMutateResult,
                      EncodeMutateResult(merged));
}

Status QueryRouter::HandleSubscribe(int fd, const WireMessage& message) {
  SubscribeCountRequest request;
  Status status = DecodeSubscribeCountRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  if (Status check = CheckGraph(request.graph); !check.ok()) {
    return SendError(fd, check);
  }
  Metrics().GetCounter("router.requests")->Increment();
  TraceContextScope remote({request.trace_id, request.parent_span_id});
  TraceSpan router_span("router", "router.subscribe",
                        CurrentTraceRecorder() != nullptr
                            ? "\"graph\":\"" + JsonEscape(request.graph) +
                                  "\""
                            : std::string());
  const TraceContext fan_ctx{router_span.trace_id(), router_span.span_id()};

  const ShardManifest& manifest = shards_->manifest();
  std::vector<uint32_t> targets(shards_->num_shards());
  for (uint32_t i = 0; i < targets.size(); ++i) targets[i] = i;

  const uint64_t deadline =
      NowMicros() + request.timeout_millis * 1000;
  SubscribeCountResult merged;
  for (;;) {
    // One immediate snapshot per shard per poll round; the router, not
    // the shard, owns the long-poll budget so a slow shard cannot pin
    // its pooled connection for the whole timeout.
    std::vector<ShardOutcome> outcomes;
    FanOut(targets,
           [this, &request, fan_ctx](uint32_t shard,
                                     ShardOutcome* outcome) {
             TraceContextScope scope(fan_ctx);
             TraceSpan rpc_span("router", "rpc.subscribe",
                                "\"shard\":" + std::to_string(shard));
             auto conn = AcquireConn(shard);
             if (!conn.ok()) {
               outcome->status = conn.status();
               return;
             }
             auto snap = conn->client.SubscribeCount(request.graph,
                                                     /*after_epoch=*/0,
                                                     /*timeout_millis=*/0);
             outcome->status = snap.status();
             if (snap.ok()) outcome->subscribe = *snap;
             ReleaseConn(shard, std::move(*conn), snap.status().ok());
           },
           &outcomes);

    merged = SubscribeCountResult{};
    merged.num_shards = shards_->num_shards();
    merged.exact_known = 1;
    merged.approx_valid = 1;
    uint32_t succeeded = 0;
    for (uint32_t i = 0; i < outcomes.size(); ++i) {
      const ShardOutcome& outcome = outcomes[i];
      if (!outcome.status.ok()) {
        merged.partial_shards |= (1ull << i);
        merged.exact_known = 0;
        merged.approx_valid = 0;
        continue;
      }
      ++succeeded;
      shards_->NoteEpoch(i, outcome.subscribe.epoch);
      if (outcome.subscribe.exact_known) {
        merged.triangles += outcome.subscribe.triangles -
                            manifest.shards[i].ghost_triangles;
      } else {
        merged.exact_known = 0;
      }
      merged.delta_triangles += outcome.subscribe.delta_triangles;
      merged.edges_added += outcome.subscribe.edges_added;
      merged.edges_removed += outcome.subscribe.edges_removed;
      if (outcome.subscribe.approx_valid == 0) merged.approx_valid = 0;
      merged.approx_triangles += outcome.subscribe.approx_triangles;
    }
    if (succeeded == 0) {
      Metrics().GetCounter("router.failures")->Increment();
      return SendError(fd, Status::Unavailable("all shards failed"));
    }
    merged.epoch = shards_->virtual_epoch();
    if (merged.epoch > request.after_epoch) {
      merged.timed_out = 0;
      break;
    }
    if (NowMicros() >= deadline) {
      merged.timed_out = 1;
      break;
    }
    const uint64_t remaining_ms = (deadline - NowMicros()) / 1000;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<uint64_t>(options_.subscribe_poll_ms,
                           std::max<uint64_t>(1, remaining_ms))));
  }
  if (merged.partial_shards != 0) {
    Metrics().GetCounter("router.partial")->Increment();
  }
  return WriteMessage(fd, MessageType::kSubscribeCountResult,
                      EncodeSubscribeCountResult(merged));
}

Status QueryRouter::HandleStats(int fd) {
  Metrics().GetCounter("router.requests")->Increment();
  std::vector<uint32_t> targets(shards_->num_shards());
  for (uint32_t i = 0; i < targets.size(); ++i) targets[i] = i;
  std::vector<ShardOutcome> outcomes;
  FanOut(targets,
         [this](uint32_t shard, ShardOutcome* outcome) {
           auto conn = AcquireConn(shard);
           if (!conn.ok()) {
             outcome->status = conn.status();
             return;
           }
           auto stats = conn->client.StatsFull();
           outcome->status = stats.status();
           if (stats.ok()) outcome->stats = *stats;
           ReleaseConn(shard, std::move(*conn), stats.status().ok());
         },
         &outcomes);

  uint64_t mask = 0;
  StatsResult merged;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, std::vector<StatsHistogram>> histograms;
  for (uint32_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].status.ok()) {
      mask |= (1ull << i);
      continue;
    }
    for (const StatsCounter& counter : outcomes[i].stats.counters) {
      counters[counter.name] += counter.value;
    }
    for (const StatsHistogram& histogram : outcomes[i].stats.histograms) {
      histograms[histogram.name].push_back(histogram);
    }
  }
  // The router's own registry (router.*, shardset.*) rides along so one
  // STATS shows both sides of the fan-out.
  for (const auto& [name, value] : Metrics().Counters()) {
    counters[name] += value;
  }
  for (const MetricsRegistry::HistogramEntry& entry :
       Metrics().Histograms()) {
    StatsHistogram histogram;
    histogram.name = entry.name;
    histogram.count = entry.snapshot.count;
    histogram.min = entry.snapshot.min;
    histogram.max = entry.snapshot.max;
    histogram.mean = entry.snapshot.Mean();
    histogram.p50 = entry.snapshot.P50();
    histogram.p95 = entry.snapshot.Quantile(0.95);
    histogram.p99 = entry.snapshot.Quantile(0.99);
    histograms[entry.name].push_back(histogram);
  }
  for (const auto& [name, parts] : histograms) {
    merged.histograms.push_back(MergeHistograms(name, parts));
  }
  for (const auto& [name, value] : counters) {
    merged.counters.push_back({name, value});
  }

  std::ostringstream text;
  const ShardManifest& manifest = shards_->manifest();
  text << "router.graph=" << manifest.graph << '\n'
       << "router.num_shards=" << shards_->num_shards() << '\n'
       << "router.virtual_epoch=" << shards_->virtual_epoch() << '\n'
       << "router.partial_shards=" << mask << '\n'
       << "router.ghost_triangles=" << manifest.ghost_triangles_total()
       << '\n';
  for (uint32_t i = 0; i < shards_->num_shards(); ++i) {
    const ShardEndpoint endpoint = shards_->endpoint(i);
    text << "router.shard." << i << ".address=" << endpoint.host << ':'
         << endpoint.port << '\n'
         << "router.shard." << i << ".healthy=" << (shards_->healthy(i) ? 1 : 0)
         << '\n'
         << "router.shard." << i << ".epoch=" << shards_->epoch(i) << '\n'
         << "router.shard." << i << ".restarts=" << shards_->restarts(i)
         << '\n';
  }
  merged.text = text.str();
  return WriteMessage(fd, MessageType::kStatsResult,
                      EncodeStatsResult(merged));
}

Status QueryRouter::HandleShardStats(int fd) {
  const ShardManifest& manifest = shards_->manifest();
  ShardStatsResult result;
  result.graph = manifest.graph;
  for (uint32_t i = 0; i < shards_->num_shards(); ++i) {
    ShardStatsEntry entry;
    entry.id = i;
    const ShardEndpoint endpoint = shards_->endpoint(i);
    entry.address = endpoint.host + ":" + std::to_string(endpoint.port);
    entry.healthy = shards_->healthy(i) ? 1 : 0;
    entry.pid = static_cast<uint64_t>(shards_->pid(i));
    entry.range_lo = manifest.shards[i].range_lo;
    entry.range_hi = manifest.shards[i].range_hi;
    entry.epoch = shards_->epoch(i);
    entry.restarts = shards_->restarts(i);
    entry.ghost_triangles = manifest.shards[i].ghost_triangles;
    const ShardMetrics& metrics = *shard_metrics_[i];
    entry.requests = metrics.requests.load(std::memory_order_relaxed);
    entry.failures = metrics.failures.load(std::memory_order_relaxed);
    entry.retries = metrics.retries.load(std::memory_order_relaxed);
    const HistogramSnapshot snapshot = metrics.latency_micros.Snapshot();
    entry.latency_p50_micros = snapshot.P50();
    entry.latency_p95_micros = snapshot.Quantile(0.95);
    entry.latency_p99_micros = snapshot.Quantile(0.99);
    result.shards.push_back(std::move(entry));
  }
  return WriteMessage(fd, MessageType::kShardStatsResult,
                      EncodeShardStatsResult(result));
}

Status QueryRouter::HandleTracePull(int fd, const WireMessage& message) {
  TracePullRequest request;
  Status status = DecodeTracePullRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  Metrics().GetCounter("router.requests")->Increment();

  std::vector<uint32_t> targets(shards_->num_shards());
  for (uint32_t i = 0; i < targets.size(); ++i) targets[i] = i;
  std::vector<ShardOutcome> outcomes;
  FanOut(targets,
         [this, &request](uint32_t shard, ShardOutcome* outcome) {
           auto conn = AcquireConn(shard);
           if (!conn.ok()) {
             outcome->status = conn.status();
             return;
           }
           auto pulled = conn->client.TracePull(request.drain != 0);
           outcome->status = pulled.status();
           if (pulled.ok()) outcome->trace = std::move(*pulled);
           ReleaseConn(shard, std::move(*conn), pulled.status().ok());
         },
         &outcomes);

  TracePullResult merged;
  // The router's own section first, then each shard's, relabelled by
  // shard id (a shard reports itself as "opt_server"; the router knows
  // which slot it answered from). Unreachable shards just contribute no
  // section — the assembled trace is partial, not an error.
  if (TraceRecorder* recorder = CurrentTraceRecorder()) {
    ProcessTrace section;
    section.pid = static_cast<uint64_t>(::getpid());
    section.label = "router";
    section.unix_origin_micros = recorder->unix_origin_micros();
    section.events =
        request.drain != 0 ? recorder->Drain() : recorder->Events();
    section.dropped_spans = recorder->dropped();
    merged.processes.push_back(std::move(section));
  }
  for (uint32_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].status.ok()) continue;
    for (ProcessTrace& section : outcomes[i].trace.processes) {
      section.label = "shard" + std::to_string(i);
      merged.processes.push_back(std::move(section));
    }
  }
  return WriteMessage(fd, MessageType::kTracePullResult,
                      EncodeTracePullResult(merged));
}

std::string QueryRouter::FleetPrometheus() {
  std::vector<uint32_t> targets(shards_->num_shards());
  for (uint32_t i = 0; i < targets.size(); ++i) targets[i] = i;
  std::vector<ShardOutcome> outcomes;
  FanOut(targets,
         [this](uint32_t shard, ShardOutcome* outcome) {
           auto conn = AcquireConn(shard);
           if (!conn.ok()) {
             outcome->status = conn.status();
             return;
           }
           auto stats = conn->client.StatsFull();
           outcome->status = stats.status();
           if (stats.ok()) outcome->stats = std::move(*stats);
           ReleaseConn(shard, std::move(*conn), stats.status().ok());
         },
         &outcomes);

  std::map<std::string, uint64_t> counters;
  std::map<std::string, std::vector<StatsHistogram>> histograms;
  for (const ShardOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) continue;
    for (const StatsCounter& counter : outcome.stats.counters) {
      counters[counter.name] += counter.value;
    }
    for (const StatsHistogram& histogram : outcome.stats.histograms) {
      histograms[histogram.name].push_back(histogram);
    }
  }

  std::ostringstream out;
  out << "# TYPE opt_shard_up gauge\n";
  for (uint32_t i = 0; i < shards_->num_shards(); ++i) {
    out << "opt_shard_up{shard=\"" << i << "\"} "
        << (shards_->healthy(i) ? 1 : 0) << '\n';
  }
  for (const auto& [name, value] : counters) {
    const std::string fleet = SanitizeMetricName("fleet." + name);
    out << "# TYPE " << fleet << " counter\n"
        << fleet << ' ' << value << '\n';
  }
  for (const auto& [name, parts] : histograms) {
    const StatsHistogram merged = MergeHistograms(name, parts);
    const std::string fleet = SanitizeMetricName("fleet." + name);
    out << "# TYPE " << fleet << " summary\n";
    out << fleet << "{quantile=\"0.5\"} " << merged.p50 << '\n';
    out << fleet << "{quantile=\"0.95\"} " << merged.p95 << '\n';
    out << fleet << "{quantile=\"0.99\"} " << merged.p99 << '\n';
    out << fleet << "_sum "
        << merged.mean * static_cast<double>(merged.count) << '\n';
    out << fleet << "_count " << merged.count << '\n';
  }
  return out.str();
}

}  // namespace opt
