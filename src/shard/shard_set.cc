#include "shard/shard_set.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "service/client.h"
#include "util/metrics.h"

namespace opt {

namespace {

uint64_t NowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Extracts the value of "graph.<name>.epoch=" from a STATS text blob.
bool ParseEpochLine(const std::string& text, const std::string& graph,
                    uint64_t* epoch) {
  const std::string needle = "graph." + graph + ".epoch=";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *epoch = std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

}  // namespace

ShardSet::ShardSet(ShardManifest manifest, ShardSetOptions options)
    : manifest_(std::move(manifest)), options_(std::move(options)) {
  shards_.resize(manifest_.num_shards());
}

ShardSet::~ShardSet() { Stop(); }

Status ShardSet::Spawn() {
  if (options_.command.empty()) {
    return Status::InvalidArgument("Spawn() needs a command template");
  }
  spawn_mode_ = true;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    const Status status = SpawnOne(i);
    if (!status.ok()) {
      Stop();
      return status;
    }
  }
  StartMonitor();
  return Status::OK();
}

Status ShardSet::Attach(std::vector<ShardEndpoint> endpoints) {
  if (endpoints.size() != num_shards()) {
    return Status::InvalidArgument(
        "endpoint count does not match the manifest shard count");
  }
  spawn_mode_ = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (uint32_t i = 0; i < num_shards(); ++i) {
      shards_[i].endpoint = std::move(endpoints[i]);
      shards_[i].generation = 1;
    }
  }
  StartMonitor();
  return Status::OK();
}

Status ShardSet::SpawnOne(uint32_t i) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }

  std::vector<std::string> args = options_.command;
  args.push_back("--port");
  args.push_back("0");
  args.push_back("--graph");
  args.push_back(manifest_.graph + "=" + manifest_.shards[i].base_path);
  args.insert(args.end(), options_.extra_args.begin(),
              options_.extra_args.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t child = ::fork();
  if (child < 0) {
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    return Status::IOError(std::string("fork: ") + std::strerror(errno));
  }
  if (child == 0) {
    // Child: die with the supervisor, route stdout into the pipe, exec.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    ::execvp(argv[0], argv.data());
    ::_exit(127);
  }
  ::close(pipefd[1]);

  // Parse "listening on 127.0.0.1:<port>" with a deadline.
  const uint64_t deadline = NowMillis() + options_.spawn_timeout_ms;
  std::string buffer;
  long port = -1;
  while (port < 0) {
    const uint64_t now = NowMillis();
    if (now >= deadline) break;
    pollfd pfd{pipefd[0], POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(deadline - now));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    char chunk[256];
    const ssize_t n = ::read(pipefd[0], chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF: the child died before listening
    buffer.append(chunk, static_cast<size_t>(n));
    const size_t pos = buffer.find("listening on 127.0.0.1:");
    if (pos != std::string::npos) {
      const size_t digits = pos + std::strlen("listening on 127.0.0.1:");
      const size_t eol = buffer.find('\n', digits);
      if (eol != std::string::npos) {
        port = std::strtol(buffer.c_str() + digits, nullptr, 10);
      }
    }
  }
  if (port <= 0 || port > 65535) {
    ::kill(child, SIGKILL);
    int ignored;
    ::waitpid(child, &ignored, 0);
    ::close(pipefd[0]);
    return Status::Unavailable("shard " + std::to_string(i) +
                               " did not report a listening port");
  }
  // Keep the read end open (the child would take SIGPIPE on a closed
  // stdout) but non-blocking so the monitor can drain it.
  ::fcntl(pipefd[0], F_SETFL, O_NONBLOCK);

  std::lock_guard<std::mutex> lock(mutex_);
  Shard& shard = shards_[i];
  shard.pid = child;
  shard.stdout_fd = pipefd[0];
  shard.endpoint = {"127.0.0.1", static_cast<uint16_t>(port)};
  shard.healthy = false;  // the next probe confirms
  ++shard.generation;
  return Status::OK();
}

void ShardSet::StartMonitor() {
  stopping_.store(false);
  monitor_ = std::thread([this] { MonitorLoop(); });
}

void ShardSet::MonitorLoop() {
  while (!stopping_.load()) {
    if (spawn_mode_) ReapAndRespawn();
    for (uint32_t i = 0; i < num_shards() && !stopping_.load(); ++i) {
      ProbeShard(i);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    health_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.probe_interval_ms),
                        [this] { return stopping_.load(); });
  }
}

void ShardSet::ReapAndRespawn() {
  for (uint32_t i = 0; i < num_shards(); ++i) {
    pid_t pid;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      Shard& shard = shards_[i];
      if (shard.stdout_fd >= 0) {
        // Drain anything the child printed so the pipe never fills.
        char sink[512];
        while (::read(shard.stdout_fd, sink, sizeof(sink)) > 0) {
        }
      }
      pid = shard.pid;
    }
    if (pid > 0) {
      int wstatus;
      if (::waitpid(pid, &wstatus, WNOHANG) == pid) {
        std::lock_guard<std::mutex> lock(mutex_);
        Shard& shard = shards_[i];
        shard.pid = 0;
        shard.healthy = false;
        // Fold the dead incarnation's epoch into the offset so the
        // restart-monotonic epoch never regresses.
        shard.epoch_offset += shard.last_epoch;
        shard.last_epoch = 0;
        if (shard.stdout_fd >= 0) {
          ::close(shard.stdout_fd);
          shard.stdout_fd = -1;
        }
      }
    }
    bool respawn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      respawn = shards_[i].pid == 0 && options_.restart_on_exit &&
                !stopping_.load();
    }
    if (respawn && SpawnOne(i).ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++shards_[i].restarts;
      Metrics().GetCounter("shardset.restarts")->Increment();
    }
  }
}

void ShardSet::ProbeShard(uint32_t i) {
  ShardEndpoint ep;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ep = shards_[i].endpoint;
  }
  if (ep.port == 0) return;
  bool ok = false;
  uint64_t observed_epoch = 0;
  bool have_epoch = false;
  OptClient client;
  if (client.ConnectTcp(ep.host, ep.port).ok()) {
    (void)client.SetRecvTimeoutMillis(options_.probe_recv_timeout_ms);
    auto stats = client.Stats();
    if (stats.ok()) {
      ok = true;
      have_epoch = ParseEpochLine(*stats, manifest_.graph, &observed_epoch);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Shard& shard = shards_[i];
  shard.healthy = ok;
  if (ok) {
    shard.probed_ok_once = true;
    if (have_epoch) {
      shard.last_epoch = std::max(shard.last_epoch, observed_epoch);
    }
    health_cv_.notify_all();
  }
}

void ShardSet::KillAll() {
  std::vector<pid_t> pids;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Shard& shard : shards_) {
      if (shard.pid > 0) pids.push_back(shard.pid);
      shard.pid = 0;
      shard.healthy = false;
      if (shard.stdout_fd >= 0) {
        ::close(shard.stdout_fd);
        shard.stdout_fd = -1;
      }
    }
  }
  for (pid_t pid : pids) ::kill(pid, SIGTERM);
  const uint64_t deadline = NowMillis() + 2000;
  for (pid_t pid : pids) {
    for (;;) {
      int wstatus;
      const pid_t reaped = ::waitpid(pid, &wstatus, WNOHANG);
      if (reaped == pid || (reaped < 0 && errno == ECHILD)) break;
      if (NowMillis() >= deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &wstatus, 0);
        break;
      }
      ::usleep(10 * 1000);
    }
  }
}

void ShardSet::Stop() {
  if (stopping_.exchange(true)) {
    if (monitor_.joinable()) monitor_.join();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    health_cv_.notify_all();
  }
  if (monitor_.joinable()) monitor_.join();
  if (spawn_mode_) KillAll();
}

ShardEndpoint ShardSet::endpoint(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[shard].endpoint;
}

bool ShardSet::healthy(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[shard].healthy;
}

pid_t ShardSet::pid(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[shard].pid;
}

uint64_t ShardSet::restarts(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[shard].restarts;
}

uint64_t ShardSet::total_restarts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.restarts;
  return total;
}

uint64_t ShardSet::generation(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[shard].generation;
}

void ShardSet::NoteEpoch(uint32_t shard, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_[shard].last_epoch = std::max(shards_[shard].last_epoch, epoch);
}

uint64_t ShardSet::epoch(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[shard].epoch_offset + shards_[shard].last_epoch;
}

uint64_t ShardSet::virtual_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.epoch_offset + shard.last_epoch;
  }
  return total;
}

bool ShardSet::WaitHealthy(uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return health_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [this] {
                               for (const Shard& shard : shards_) {
                                 if (!shard.healthy) return false;
                               }
                               return true;
                             });
}

}  // namespace opt
