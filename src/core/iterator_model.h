// The OPT framework's three plug points (paper §3.2/§3.5): identifying
// internal triangles, identifying external candidate vertices, and
// identifying external triangles. Instances exist for the edge-iterator
// model (Algorithms 6/8/10) and the vertex-iterator model (Algorithms
// 11/12/13); MGT plugs in as a degenerate configuration (§3.5).
#ifndef OPT_CORE_ITERATOR_MODEL_H_
#define OPT_CORE_ITERATOR_MODEL_H_

#include <vector>

#include "core/page_range_view.h"
#include "core/triangle_sink.h"
#include "storage/graph_store.h"
#include "storage/page.h"

namespace opt {

/// Reusable per-thread scratch to keep the inner loops allocation-free.
struct ModelScratch {
  std::vector<VertexId> intersection;
};

class IteratorModel {
 public:
  virtual ~IteratorModel() = default;

  virtual const char* name() const = 0;

  /// InternalTriangleImpl (Algorithm 6 / 11): emits the internal
  /// triangles contributed by the record of `u`. `internal` covers the
  /// vertex range [plan.v_lo, plan.v_hi].
  virtual void InternalTriangles(const PageRangeView& internal,
                                 const IterationPlan& plan, VertexId u,
                                 TriangleSink* sink,
                                 ModelScratch* scratch) const = 0;

  /// ExternalCandidateVertexImpl (Algorithm 8 / 12) at segment
  /// granularity: appends to `out` the external candidate vertices that
  /// this loaded segment of an internal record implies. Works per segment
  /// so candidates can be collected while other internal pages are still
  /// in flight.
  virtual void CollectCandidates(const IterationPlan& plan,
                                 const Segment& segment,
                                 std::vector<VertexId>* out) const = 0;

  /// ExternalTriangleImpl (Algorithm 10 / 13) for one loaded external
  /// record: derives the internal requesters V_req from the record's own
  /// adjacency list and emits all external triangles involving it.
  virtual void ExternalTriangles(const PageRangeView& internal,
                                 const IterationPlan& plan,
                                 VertexId external_vertex,
                                 const AdjacencyRef& external_adj,
                                 TriangleSink* sink,
                                 ModelScratch* scratch) const = 0;
};

/// EdgeIterator-with-ordering instance (Algorithms 6, 8, 10).
class EdgeIteratorModel : public IteratorModel {
 public:
  const char* name() const override { return "edge-iterator"; }

  void InternalTriangles(const PageRangeView& internal,
                         const IterationPlan& plan, VertexId u,
                         TriangleSink* sink,
                         ModelScratch* scratch) const override;

  void CollectCandidates(const IterationPlan& plan, const Segment& segment,
                         std::vector<VertexId>* out) const override;

  void ExternalTriangles(const PageRangeView& internal,
                         const IterationPlan& plan, VertexId external_vertex,
                         const AdjacencyRef& external_adj, TriangleSink* sink,
                         ModelScratch* scratch) const override;
};

/// VertexIterator-with-ordering instance (Algorithms 11, 12, 13).
class VertexIteratorModel : public IteratorModel {
 public:
  const char* name() const override { return "vertex-iterator"; }

  void InternalTriangles(const PageRangeView& internal,
                         const IterationPlan& plan, VertexId u,
                         TriangleSink* sink,
                         ModelScratch* scratch) const override;

  void CollectCandidates(const IterationPlan& plan, const Segment& segment,
                         std::vector<VertexId>* out) const override;

  void ExternalTriangles(const PageRangeView& internal,
                         const IterationPlan& plan, VertexId external_vertex,
                         const AdjacencyRef& external_adj, TriangleSink* sink,
                         ModelScratch* scratch) const override;
};

}  // namespace opt

#endif  // OPT_CORE_ITERATOR_MODEL_H_
