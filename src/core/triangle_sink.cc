#include "core/triangle_sink.h"

#include <algorithm>

#include "util/coding.h"

namespace opt {

void VectorSink::Emit(VertexId u, VertexId v, std::span<const VertexId> ws) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (VertexId w : ws) triangles_.push_back({u, v, w});
}

std::vector<Triangle> VectorSink::Sorted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Triangle> out = triangles_;
  std::sort(out.begin(), out.end());
  return out;
}

size_t VectorSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return triangles_.size();
}

PerVertexCountSink::PerVertexCountSink(VertexId num_vertices)
    : counts_(num_vertices) {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void PerVertexCountSink::Emit(VertexId u, VertexId v,
                              std::span<const VertexId> ws) {
  counts_[u].fetch_add(ws.size(), std::memory_order_relaxed);
  counts_[v].fetch_add(ws.size(), std::memory_order_relaxed);
  for (VertexId w : ws) {
    counts_[w].fetch_add(1, std::memory_order_relaxed);
  }
  total_.fetch_add(ws.size(), std::memory_order_relaxed);
}

std::vector<uint64_t> PerVertexCountSink::Counts() const {
  std::vector<uint64_t> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

ListingSink::ListingSink(Env* env, std::string path, size_t flush_threshold,
                         bool asynchronous)
    : env_(env), path_(std::move(path)), flush_threshold_(flush_threshold),
      asynchronous_(asynchronous) {
  auto file = env_->OpenWritable(path_);
  if (file.ok()) {
    file_ = std::move(file.value());
  } else {
    std::lock_guard<std::mutex> lock(status_mutex_);
    write_status_ = file.status();
  }
  if (asynchronous_) {
    writer_ = std::thread([this] { WriterLoop(); });
  }
}

ListingSink::~ListingSink() {
  Status s = Finish();
  (void)s;
}

void ListingSink::Emit(VertexId u, VertexId v, std::span<const VertexId> ws) {
  if (ws.empty()) return;
  char header[12];
  EncodeFixed32(header, u);
  EncodeFixed32(header + 4, v);
  EncodeFixed32(header + 8, static_cast<uint32_t>(ws.size()));
  std::string block_to_flush;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffer_.append(header, sizeof(header));
    buffer_.append(reinterpret_cast<const char*>(ws.data()),
                   ws.size() * sizeof(VertexId));
    if (buffer_.size() >= flush_threshold_) {
      block_to_flush.swap(buffer_);
    }
  }
  triangles_.fetch_add(ws.size(), std::memory_order_relaxed);
  if (!block_to_flush.empty()) {
    if (asynchronous_) {
      blocks_.Push(std::move(block_to_flush));
    } else {
      WriteBlock(block_to_flush);
    }
  }
}

void ListingSink::WriteBlock(const std::string& block) {
  if (file_ == nullptr) return;
  Status s = file_->Append(Slice(block));
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (write_status_.ok()) write_status_ = s;
    return;
  }
  bytes_written_.fetch_add(block.size(), std::memory_order_relaxed);
}

Status ListingSink::Finish() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) {
      std::lock_guard<std::mutex> status_lock(status_mutex_);
      return write_status_;
    }
    finished_ = true;
    if (!buffer_.empty()) {
      std::string tail;
      tail.swap(buffer_);
      if (asynchronous_) {
        blocks_.Push(std::move(tail));
      } else {
        WriteBlock(tail);
      }
    }
  }
  blocks_.Close();
  if (writer_.joinable()) writer_.join();
  if (file_ != nullptr) {
    Status s = file_->Sync();
    if (s.ok()) s = file_->Close();
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(status_mutex_);
      if (write_status_.ok()) write_status_ = s;
    }
  }
  std::lock_guard<std::mutex> lock(status_mutex_);
  return write_status_;
}

void ListingSink::WriterLoop() {
  for (;;) {
    auto block = blocks_.Pop();
    if (!block.has_value()) return;
    WriteBlock(*block);
  }
}

}  // namespace opt
