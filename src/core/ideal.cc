#include "core/ideal.h"

#include <memory>
#include <vector>

#include "util/aligned_buffer.h"

#include "core/page_range_view.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace opt {

Status RunIdeal(GraphStore* store, const IteratorModel& model,
                TriangleSink* sink, uint32_t num_threads,
                IdealStats* stats) {
  Stopwatch total_watch;
  const uint32_t pages = store->num_pages();
  const uint32_t page_size = store->page_size();
  if (store->num_vertices() == 0) {
    if (stats != nullptr) *stats = IdealStats();
    return sink->Finish();
  }

  Stopwatch load_watch;
  AlignedBuffer buffer(static_cast<size_t>(pages) * page_size);
  std::vector<const char*> page_data(pages);
  for (uint32_t pid = 0; pid < pages; ++pid) {
    char* dst = buffer.data() + static_cast<size_t>(pid) * page_size;
    OPT_RETURN_IF_ERROR(store->file()->ReadPage(pid, dst));
    OPT_RETURN_IF_ERROR(PageView(dst, page_size).Validate(pid));
    page_data[pid] = dst;
  }
  PageRangeView view;
  OPT_RETURN_IF_ERROR(view.Build(*store, 0, page_data));
  const double load_seconds = load_watch.ElapsedSeconds();

  Stopwatch cpu_watch;
  IterationPlan plan;
  plan.v_lo = 0;
  plan.v_hi = store->num_vertices() - 1;
  plan.pid_lo = 0;
  plan.pid_hi = pages - 1;

  ParallelFor(0, pages, num_threads, [&](size_t pid) {
    ModelScratch scratch;
    PageView page(page_data[pid], page_size);
    const uint32_t slots = page.num_slots();
    for (uint32_t s = 0; s < slots; ++s) {
      const Segment seg = page.GetSegment(s);
      if (!seg.IsFirstSegment()) continue;
      model.InternalTriangles(view, plan, seg.vertex, sink, &scratch);
    }
  });
  const double cpu_seconds = cpu_watch.ElapsedSeconds();

  OPT_RETURN_IF_ERROR(sink->Finish());
  if (stats != nullptr) {
    stats->load_seconds = load_seconds;
    stats->cpu_seconds = cpu_seconds;
    stats->elapsed_seconds = total_watch.ElapsedSeconds();
  }
  return Status::OK();
}

}  // namespace opt
