// Assembles the adjacency lists stored on a run of loaded pages into
// O(1)-addressable per-vertex views. Used for both the internal area
// (whole iteration extent) and external chunks (one page, or a spanning
// vertex's page run). Because records are laid out in ascending vertex-id
// order, a page run covers a contiguous vertex range; only *fully*
// covered records (all segments present) are addressable.
#ifndef OPT_CORE_PAGE_RANGE_VIEW_H_
#define OPT_CORE_PAGE_RANGE_VIEW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/graph_store.h"
#include "storage/page.h"
#include "util/status.h"

namespace opt {

/// A resident adjacency list: full sorted n(v) plus the boundary between
/// n_prec(v) and n_succ(v).
struct AdjacencyRef {
  std::span<const VertexId> all;
  uint32_t succ_begin = 0;  // index of the first neighbor with id > v

  std::span<const VertexId> succ() const { return all.subspan(succ_begin); }
  std::span<const VertexId> prec() const {
    return all.subspan(0, succ_begin);
  }
};

class PageRangeView {
 public:
  PageRangeView() = default;

  /// Parses pages [first_pid, first_pid + frames.size()) from `frames`
  /// (already read and, if desired, CRC-validated by the caller).
  Status Build(const GraphStore& store, uint32_t first_pid,
               std::span<const char* const> page_data);

  /// True if v's record is entirely within this view.
  bool HasFull(VertexId v) const {
    if (v < base_vertex_ || v >= base_vertex_ + entries_.size()) return false;
    return entries_[v - base_vertex_].full;
  }

  /// Adjacency of a fully covered vertex. Precondition: HasFull(v).
  AdjacencyRef Get(VertexId v) const {
    const Entry& e = entries_[v - base_vertex_];
    return {std::span<const VertexId>(e.ptr, e.len), e.succ_begin};
  }

  /// First / last fully covered vertices (kInvalidVertex if none).
  VertexId first_full() const { return first_full_; }
  VertexId last_full() const { return last_full_; }

 private:
  struct Entry {
    const VertexId* ptr = nullptr;
    uint32_t len = 0;
    uint32_t succ_begin = 0;
    bool full = false;
  };

  VertexId base_vertex_ = 0;
  VertexId first_full_ = kInvalidVertex;
  VertexId last_full_ = kInvalidVertex;
  std::vector<Entry> entries_;
  // Backing storage for adjacency lists that span pages.
  std::vector<std::vector<VertexId>> scratch_;
};

}  // namespace opt

#endif  // OPT_CORE_PAGE_RANGE_VIEW_H_
