// Triangle value type shared by sinks, tests, and baselines.
#ifndef OPT_CORE_TRIANGLE_H_
#define OPT_CORE_TRIANGLE_H_

#include <cstdint>
#include <tuple>

#include "graph/csr_graph.h"

namespace opt {

/// A triangle with the paper's canonical orientation id(u) < id(v) < id(w).
struct Triangle {
  VertexId u;
  VertexId v;
  VertexId w;

  bool operator==(const Triangle& o) const {
    return u == o.u && v == o.v && w == o.w;
  }
  bool operator<(const Triangle& o) const {
    return std::tie(u, v, w) < std::tie(o.u, o.v, o.w);
  }
};

}  // namespace opt

#endif  // OPT_CORE_TRIANGLE_H_
