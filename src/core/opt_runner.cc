#include "core/opt_runner.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <optional>
#include <thread>

#include "core/page_range_view.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace opt {

namespace {

/// Registry counters fed once per Run() from OptRunStats. The cache-hit
/// counters are the paper's Δin / Δex: pages the buffer pool saved the
/// run from re-reading (§3.3's cost identity, exposed live via STATS).
struct RunCounters {
  Counter* runs = Metrics().GetCounter("opt.runs");
  Counter* iterations = Metrics().GetCounter("opt.iterations");
  Counter* internal_pages_read =
      Metrics().GetCounter("opt.internal.pages_read");
  Counter* internal_cache_hits =
      Metrics().GetCounter("opt.internal.cache_hits");
  Counter* external_pages_read =
      Metrics().GetCounter("opt.external.pages_read");
  Counter* external_cache_hits =
      Metrics().GetCounter("opt.external.cache_hits");
  /// Per-kernel intersection activity (opt.intersect.<kernel>.calls /
  /// .elements — the bitmap.* counters of the hub path live here too).
  Counter* intersect_calls[kNumIntersectKernels];
  Counter* intersect_elements[kNumIntersectKernels];
  /// Hub routing: bitmaps materialized, and the last run's footprint.
  Counter* hub_bitmaps_built = Metrics().GetCounter("opt.hub.bitmaps_built");
  Gauge* hub_bitmap_peak_bytes =
      Metrics().GetGauge("opt.hub.bitmap_peak_bytes");
  Gauge* hub_degree_threshold =
      Metrics().GetGauge("opt.hub.degree_threshold");
  /// PMU deltas (DESIGN.md §13). Totals plus a per-phase breakdown so
  /// STATS can answer "where do the cycles go" without a trace. The
  /// populated subset depends on perf.backend — cycles/LLC columns stay
  /// zero under the sw/rusage rungs, and that absence is the signal.
  Counter* perf_cycles = Metrics().GetCounter("opt.perf.cycles");
  Counter* perf_instructions = Metrics().GetCounter("opt.perf.instructions");
  Counter* perf_llc_loads = Metrics().GetCounter("opt.perf.llc_loads");
  Counter* perf_llc_misses = Metrics().GetCounter("opt.perf.llc_misses");
  Counter* perf_branch_misses =
      Metrics().GetCounter("opt.perf.branch_misses");
  Counter* perf_task_clock_ns =
      Metrics().GetCounter("opt.perf.task_clock_ns");
  Counter* perf_page_faults = Metrics().GetCounter("opt.perf.page_faults");
  Counter* perf_context_switches =
      Metrics().GetCounter("opt.perf.context_switches");
  Counter* phase_cycles[3];
  Counter* phase_instructions[3];
  Counter* phase_llc_misses[3];
  Counter* phase_task_clock_ns[3];
  /// Multiplexing honesty: time_running/time_enabled of the last run,
  /// in ppm. Below 1e6 the PMU was time-shared and counts undercount.
  Gauge* perf_multiplex_ppm = Metrics().GetGauge("perf.multiplex_ppm");

  RunCounters() {
    for (int k = 0; k < kNumIntersectKernels; ++k) {
      const std::string base =
          std::string("opt.intersect.") +
          IntersectKernelName(static_cast<IntersectKernel>(k));
      intersect_calls[k] = Metrics().GetCounter(base + ".calls");
      intersect_elements[k] = Metrics().GetCounter(base + ".elements");
    }
    static const char* kPhases[3] = {"phaseA", "phaseB", "phaseC"};
    for (int p = 0; p < 3; ++p) {
      const std::string base = std::string("opt.perf.") + kPhases[p];
      phase_cycles[p] = Metrics().GetCounter(base + ".cycles");
      phase_instructions[p] = Metrics().GetCounter(base + ".instructions");
      phase_llc_misses[p] = Metrics().GetCounter(base + ".llc_misses");
      phase_task_clock_ns[p] = Metrics().GetCounter(base + ".task_clock_ns");
    }
    PublishPerfBackendMetrics();
  }
};

RunCounters& GlobalRunCounters() {
  static RunCounters counters;
  return counters;
}

void PublishRunStats(const OptRunStats& stats) {
  RunCounters& counters = GlobalRunCounters();
  counters.runs->Increment();
  counters.iterations->Increment(stats.iterations);
  counters.internal_pages_read->Increment(stats.internal_pages_read);
  counters.internal_cache_hits->Increment(stats.internal_cache_hits);
  counters.external_pages_read->Increment(stats.external_pages_read);
  counters.external_cache_hits->Increment(stats.external_cache_hits);
  for (int k = 0; k < kNumIntersectKernels; ++k) {
    counters.intersect_calls[k]->Increment(stats.intersect.calls[k]);
    counters.intersect_elements[k]->Increment(stats.intersect.elements[k]);
  }
  if (stats.hub_bitmaps_built > 0) {
    counters.hub_bitmaps_built->Increment(stats.hub_bitmaps_built);
    counters.hub_bitmap_peak_bytes->Set(
        static_cast<int64_t>(stats.hub_bitmap_peak_bytes));
    counters.hub_degree_threshold->Set(
        static_cast<int64_t>(stats.hub_degree_threshold));
  }
  const PerfReading total = stats.PerfTotal();
  counters.perf_cycles->Increment(total.cycles);
  counters.perf_instructions->Increment(total.instructions);
  counters.perf_llc_loads->Increment(total.llc_loads);
  counters.perf_llc_misses->Increment(total.llc_misses);
  counters.perf_branch_misses->Increment(total.branch_misses);
  counters.perf_task_clock_ns->Increment(total.task_clock_ns);
  counters.perf_page_faults->Increment(total.page_faults);
  counters.perf_context_switches->Increment(total.context_switches);
  const PerfReading* phases[3] = {&stats.perf_phase_a, &stats.perf_phase_b,
                                  &stats.perf_phase_c};
  for (int p = 0; p < 3; ++p) {
    counters.phase_cycles[p]->Increment(phases[p]->cycles);
    counters.phase_instructions[p]->Increment(phases[p]->instructions);
    counters.phase_llc_misses[p]->Increment(phases[p]->llc_misses);
    counters.phase_task_clock_ns[p]->Increment(phases[p]->task_clock_ns);
  }
  if (total.time_enabled_ns > 0) {
    counters.perf_multiplex_ppm->Set(
        static_cast<int64_t>(total.MultiplexRatio() * 1e6));
  }
}

/// One external read unit: a run of consecutive pages covering every
/// candidate assigned to it (Algorithm 4 groups candidates by page;
/// adjacency lists spanning pages widen the run, and overlapping runs
/// are merged so no page is ever read concurrently by two requests).
struct Chunk {
  uint32_t first_pid = 0;
  uint32_t page_count = 0;
  std::vector<VertexId> candidates;
};

/// All mutable state of one Run(); shared by the worker roles.
struct RunContext {
  // Immutable during an iteration.
  GraphStore* store = nullptr;
  const IteratorModel* model = nullptr;
  OptOptions options;
  TriangleSink* sink = nullptr;

  BufferPool* pool = nullptr;
  uint32_t owner = 0;  // page-key namespace within the pool
  AsyncIoEngine* engine = nullptr;
  CompletionQueue completions;

  // Observability hooks (both optional; null → no-ops).
  OverlapProfiler* profiler = nullptr;
  FlightRecorder* flight = nullptr;

  // Per-iteration state.
  IterationPlan plan;
  std::vector<Frame*> internal_frames;
  std::vector<const char*> internal_page_data;
  PageRangeView internal_view;

  // Hub routing (bitmap kernels): rebuilt from the internal view at the
  // end of phase B, read-only while phase C workers run, so no
  // synchronization is needed beyond the thread spawn/join edges.
  bool hub_routing = false;
  HubBitmapIndex hub_index;

  std::mutex candidate_mutex;
  std::vector<VertexId> candidates;

  std::mutex later_mutex;              // Algorithm 9's atomic block
  std::deque<Chunk> later;
  uint32_t ext_capacity = 0;  // in-flight external page budget (m_ex)
  uint32_t ext_used = 0;      // guarded by later_mutex

  CompletionGroup group_in;
  CompletionGroup group_ex;

  std::atomic<uint32_t> internal_cursor{0};
  std::atomic<uint32_t> internal_pages_done{0};
  uint32_t internal_page_count = 0;

  // Error propagation: first error wins; workers drain without working.
  std::mutex error_mutex;
  Status first_error;
  std::atomic<bool> abort{false};

  // Instrumentation (micros, summed across threads).
  std::atomic<uint64_t> internal_cpu_micros{0};
  std::atomic<uint64_t> external_cpu_micros{0};
  std::atomic<uint64_t> external_pages{0};
  std::atomic<uint64_t> external_hits{0};

  // PMU deltas per phase, folded across iterations and (phase C) across
  // worker threads. Null when collect_perf is off — PerfScope treats a
  // null accumulator as inert.
  PerfAccumulator perf_a, perf_b, perf_c;
  PerfAccumulator* PerfSink(PerfAccumulator* acc) {
    return options.collect_perf ? acc : nullptr;
  }

  PageKey Key(uint32_t pid) const { return MakePageKey(owner, pid); }

  void RecordError(const Status& status) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error.ok()) first_error = status;
    abort.store(true, std::memory_order_release);
  }

  bool aborted() const { return abort.load(std::memory_order_acquire); }

  /// Polls the external cancellation flag (deadline watchdogs); turns it
  /// into the run-wide abort. Returns the combined abort state.
  bool CheckCancel() {
    if (!aborted() && options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      if (flight != nullptr) flight->Record(FlightEventType::kCancel);
      RecordError(Status::Aborted("query cancelled"));
    }
    return aborted();
  }

  void RecordFetch(BufferPool::FetchOutcome outcome, uint32_t pid) {
    if (flight == nullptr) return;
    switch (outcome) {
      case BufferPool::FetchOutcome::kHit:
        flight->Record(FlightEventType::kFetchHit, pid);
        break;
      case BufferPool::FetchOutcome::kInFlight:
        flight->Record(FlightEventType::kFetchInFlight, pid);
        break;
      case BufferPool::FetchOutcome::kMiss:
        flight->Record(FlightEventType::kFetchMiss, pid);
        break;
    }
  }

  bool InternalDone() const {
    return internal_pages_done.load(std::memory_order_acquire) >=
           internal_page_count;
  }
};

/// Parses one internal page and appends the model's external candidates
/// (Algorithm 7: IdentifyExternalCandidateVertex).
void CollectCandidatesFromPage(RunContext* ctx, const char* data) {
  PageView page(data, ctx->store->page_size());
  std::vector<VertexId> local;
  const uint32_t slots = page.num_slots();
  for (uint32_t s = 0; s < slots; ++s) {
    const Segment seg = page.GetSegment(s);
    if (seg.vertex < ctx->plan.v_lo || seg.vertex > ctx->plan.v_hi) continue;
    ctx->model->CollectCandidates(ctx->plan, seg, &local);
  }
  if (!local.empty()) {
    std::lock_guard<std::mutex> lock(ctx->candidate_mutex);
    ctx->candidates.insert(ctx->candidates.end(), local.begin(),
                           local.end());
  }
}

/// Runs the internal triangulation for one page of the internal area
/// (the page-granular parallel loop of Algorithm 5).
void ProcessInternalPage(RunContext* ctx, uint32_t page_index,
                         ModelScratch* scratch) {
  Stopwatch watch;
  HubRoutingScope hub_scope(ctx->hub_routing ? &ctx->hub_index : nullptr);
  OverlapProfiler::SetWork(/*internal_work=*/true);
  if (!ctx->CheckCancel()) {
    PageView page(ctx->internal_page_data[page_index],
                  ctx->store->page_size());
    const uint32_t slots = page.num_slots();
    for (uint32_t s = 0; s < slots; ++s) {
      const Segment seg = page.GetSegment(s);
      // A record is processed once, by the page holding its first segment.
      if (!seg.IsFirstSegment()) continue;
      if (seg.vertex < ctx->plan.v_lo || seg.vertex > ctx->plan.v_hi) {
        continue;
      }
      ctx->model->InternalTriangles(ctx->internal_view, ctx->plan,
                                    seg.vertex, ctx->sink, scratch);
    }
  }
  ctx->internal_cpu_micros.fetch_add(
      static_cast<uint64_t>(watch.ElapsedMicros()),
      std::memory_order_relaxed);
  ctx->internal_pages_done.fetch_add(1, std::memory_order_acq_rel);
}

/// Claims and runs one internal page. Returns false when none remain.
bool RunOneInternalUnit(RunContext* ctx, ModelScratch* scratch) {
  const uint32_t i =
      ctx->internal_cursor.fetch_add(1, std::memory_order_relaxed);
  if (i >= ctx->internal_page_count) return false;
  ProcessInternalPage(ctx, i, scratch);
  return true;
}

void SubmitChunk(RunContext* ctx, Chunk chunk);

/// The L_now/L_later regulator of Algorithm 4: submits queued chunks
/// while the in-flight external page budget (m_ex) allows. Completions
/// return budget and pump again, which realizes Algorithm 9's chained
/// asynchronous reads. On abort the remaining queue is dropped instead
/// of read — cancellation should not pay for I/O it will ignore.
void PumpExternal(RunContext* ctx) {
  std::vector<Chunk> to_submit;
  uint32_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(ctx->later_mutex);
    if (ctx->aborted()) {
      dropped = static_cast<uint32_t>(ctx->later.size());
      ctx->later.clear();
    } else {
      while (!ctx->later.empty() &&
             ctx->ext_used + ctx->later.front().page_count <=
                 ctx->ext_capacity) {
        ctx->ext_used += ctx->later.front().page_count;
        to_submit.push_back(std::move(ctx->later.front()));
        ctx->later.pop_front();
      }
    }
  }
  for (auto& chunk : to_submit) SubmitChunk(ctx, std::move(chunk));
  for (uint32_t i = 0; i < dropped; ++i) ctx->group_ex.Done();
}

/// Algorithm 9: ExternalTriangle for one loaded chunk, then chain the
/// next read from L_later.
void ProcessChunk(RunContext* ctx, Chunk chunk,
                  std::vector<Frame*> frames) {
  Stopwatch watch;
  HubRoutingScope hub_scope(ctx->hub_routing ? &ctx->hub_index : nullptr);
  TraceSpan chunk_span(
      "opt", "external.chunk",
      CurrentTraceRecorder() != nullptr
          ? "\"first_pid\":" + std::to_string(chunk.first_pid) +
                ",\"pages\":" + std::to_string(chunk.page_count) +
                ",\"candidates\":" + std::to_string(chunk.candidates.size())
          : std::string());
  // Frames fetched as in-flight were loaded by a concurrent query
  // sharing the pool; their validity is published by that query's I/O
  // workers, never by our completion drain, so this wait always makes
  // progress.
  OverlapProfiler::SetRole(ThreadRole::kIoWait);
  Status frames_ready;
  for (size_t i = 0; i < frames.size(); ++i) {
    frames_ready =
        ctx->pool->WaitValid(frames[i], ctx->options.io_wait_timeout_millis);
    if (!frames_ready.ok()) {
      if (ctx->flight != nullptr && frames_ready.IsUnavailable()) {
        ctx->flight->Record(FlightEventType::kWaitTimeout,
                            chunk.first_pid + static_cast<uint32_t>(i));
      }
      ctx->RecordError(frames_ready);
      break;
    }
  }
  OverlapProfiler::SetWork(/*internal_work=*/false);
  if (frames_ready.ok() && !ctx->CheckCancel()) {
    std::vector<const char*> data;
    data.reserve(frames.size());
    for (Frame* f : frames) data.push_back(f->data);
    PageRangeView view;
    Status s = view.Build(*ctx->store, chunk.first_pid, data);
    if (!s.ok()) {
      ctx->RecordError(s);
    } else {
      ModelScratch scratch;
      for (VertexId v : chunk.candidates) {
        // Refresh the slot each candidate so a long chunk never trips
        // the sampler's stall guard mid-CPU-burst.
        OverlapProfiler::SetWork(/*internal_work=*/false);
        if (!view.HasFull(v)) {
          ctx->RecordError(Status::Corruption(
              "external candidate " + std::to_string(v) +
              " not fully covered by its chunk"));
          break;
        }
        ctx->model->ExternalTriangles(ctx->internal_view, ctx->plan, v,
                                      view.Get(v), ctx->sink, &scratch);
      }
    }
  }
  for (Frame* f : frames) ctx->pool->Unpin(f);
  ctx->external_cpu_micros.fetch_add(
      static_cast<uint64_t>(watch.ElapsedMicros()),
      std::memory_order_relaxed);

  // Return the budget and chain further requests (the paper's atomic
  // block, lines 9-13).
  {
    std::lock_guard<std::mutex> lock(ctx->later_mutex);
    ctx->ext_used -= chunk.page_count;
  }
  PumpExternal(ctx);
  ctx->group_ex.Done();
}

/// Issues the asynchronous reads for one chunk; pages already cached in
/// the buffer pool — by this run's earlier iterations or by concurrent
/// queries on a shared pool — are reused without I/O (the Δ-I/O savings
/// of §3.3).
void SubmitChunk(RunContext* ctx, Chunk chunk) {
  struct ChunkState {
    RunContext* ctx;
    Chunk chunk;
    std::vector<Frame*> frames;
    std::atomic<uint32_t> pending{0};
  };
  auto state = std::make_shared<ChunkState>();
  state->ctx = ctx;
  state->frames.resize(chunk.page_count, nullptr);

  std::vector<uint32_t> missing;
  for (uint32_t i = 0; i < chunk.page_count; ++i) {
    const uint32_t pid = chunk.first_pid + i;
    auto fetch = ctx->pool->Fetch(ctx->Key(pid));
    if (!fetch.ok()) {
      ctx->RecordError(fetch.status());
      // Roll back: owned misses must be published as failed before the
      // pin drops, or concurrent waiters would hang on them forever.
      for (uint32_t j : missing) ctx->pool->MarkFailed(state->frames[j]);
      for (uint32_t j = 0; j < i; ++j) ctx->pool->Unpin(state->frames[j]);
      {
        std::lock_guard<std::mutex> lock(ctx->later_mutex);
        ctx->ext_used -= chunk.page_count;
      }
      ctx->group_ex.Done();
      return;
    }
    state->frames[i] = fetch->frame;
    ctx->RecordFetch(fetch->outcome, pid);
    if (fetch->outcome == BufferPool::FetchOutcome::kMiss) {
      missing.push_back(i);
    } else {
      ctx->external_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ctx->external_pages.fetch_add(missing.size(), std::memory_order_relaxed);
  state->chunk = std::move(chunk);

  if (missing.empty()) {
    // Fully cached: skip the device, go straight to the callback queue.
    ctx->completions.Push([state] {
      ProcessChunk(state->ctx, std::move(state->chunk),
                   std::move(state->frames));
    });
    return;
  }
  state->pending.store(static_cast<uint32_t>(missing.size()),
                       std::memory_order_release);
  for (uint32_t index : missing) {
    const uint32_t pid = state->chunk.first_pid + index;
    Frame* frame = state->frames[index];
    ReadRequest request;
    request.file = ctx->store->file();
    request.first_pid = pid;
    request.page_count = 1;
    request.frames = {frame};
    request.completion_queue = &ctx->completions;
    // The I/O worker validates and publishes the frame (MarkValid /
    // MarkFailed) before this callback is queued.
    request.pool = ctx->pool;
    request.validate = ctx->options.validate_pages;
    request.page_size = ctx->store->page_size();
    request.flight = ctx->flight;
    request.callback = [state](const Status& status) {
      RunContext* ctx = state->ctx;
      if (!status.ok()) ctx->RecordError(status);
      if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        ProcessChunk(ctx, std::move(state->chunk),
                     std::move(state->frames));
      }
    };
    ctx->engine->Submit(std::move(request));
  }
}

/// True when the iteration's external triangulation has fully finished.
bool ExternalDone(RunContext* ctx) { return ctx->group_ex.Finished(); }

/// Drains completion tasks until the external side is finished; with
/// morphing, steals internal pages while the queue is empty.
void DrainExternal(RunContext* ctx, bool allow_morph,
                   ModelScratch* scratch) {
  bool morph_traced = false;
  while (!ExternalDone(ctx)) {
    if (auto task = ctx->completions.TryPop()) {
      (*task)();
      continue;
    }
    if (allow_morph && RunOneInternalUnit(ctx, scratch)) {
      if (!morph_traced) {
        // First steal only: one marker per morph transition, not one
        // per stolen page.
        TraceInstant("morph", "morph.steal_internal");
        if (ctx->profiler != nullptr) ctx->profiler->RecordMorph();
        if (ctx->flight != nullptr) {
          ctx->flight->Record(FlightEventType::kMorphStealInternal);
        }
        morph_traced = true;
      }
      continue;
    }
    OverlapProfiler::SetRole(ThreadRole::kIoWait);
    if (auto task = ctx->completions.PopFor(200)) (*task)();
  }
}

/// The callback-thread role for one iteration's overlapped phase:
/// external triangulation first, then (if morphing) internal stealing.
void CallbackRole(RunContext* ctx) {
  TraceSpan role_span("opt", "external.callback_role");
  OverlapProfiler::ThreadScope profile_scope(ctx->profiler,
                                             ThreadRole::kExternal);
  PerfScope perf_scope(ctx->PerfSink(&ctx->perf_c));
  ModelScratch scratch;
  DrainExternal(ctx, ctx->options.thread_morphing, &scratch);
  if (ctx->options.thread_morphing) {
    while (RunOneInternalUnit(ctx, &scratch)) {
    }
  }
}

/// Extra workers prefer internal pages, then morph into callbacks.
void FlexRole(RunContext* ctx) {
  TraceSpan role_span("opt", "internal.flex_role");
  OverlapProfiler::ThreadScope profile_scope(ctx->profiler,
                                             ThreadRole::kInternal);
  PerfScope perf_scope(ctx->PerfSink(&ctx->perf_c));
  ModelScratch scratch;
  while (RunOneInternalUnit(ctx, &scratch)) {
  }
  if (ctx->options.thread_morphing) {
    if (!ExternalDone(ctx)) {
      TraceInstant("morph", "morph.to_external");
      if (ctx->profiler != nullptr) ctx->profiler->RecordMorph();
      if (ctx->flight != nullptr) {
        ctx->flight->Record(FlightEventType::kMorphToExternal);
      }
    }
    DrainExternal(ctx, /*allow_morph=*/true, &scratch);
  }
}

/// Scoped shared-pool capacity claim: guarantees this run can keep its
/// m_in + ext_capacity (+ slack) frames pinned without starving the
/// other queries on the pool. Released capacity stays behind as cache.
struct FrameReservation {
  BufferPool* pool;
  uint32_t n;
  FrameReservation(BufferPool* pool, uint32_t n) : pool(pool), n(n) {
    pool->ReserveFrames(n);
  }
  ~FrameReservation() { pool->ReleaseFrames(n); }
  void GrowTo(uint32_t total) {
    if (total > n) {
      pool->ReserveFrames(total - n);
      n = total;
    }
  }
};

}  // namespace

OptRunner::OptRunner(GraphStore* store, const IteratorModel* model,
                     const OptOptions& options)
    : store_(store), model_(model), options_(options) {}

Status OptRunner::Run(TriangleSink* sink, OptRunStats* stats) {
  if (options_.m_in == 0 || options_.m_ex == 0) {
    return Status::InvalidArgument("m_in and m_ex must be positive");
  }
  if (options_.kernel.has_value()) {
    OPT_RETURN_IF_ERROR(SetIntersectKernel(*options_.kernel));
  }
  if (options_.m_in < store_->MaxRecordPages()) {
    return Status::ResourceExhausted(
        "internal area (" + std::to_string(options_.m_in) +
        " pages) smaller than the largest adjacency list (" +
        std::to_string(store_->MaxRecordPages()) + " pages)");
  }
  if (options_.shared_pool != nullptr &&
      options_.shared_pool->page_size() != store_->page_size()) {
    return Status::InvalidArgument(
        "shared pool page size (" +
        std::to_string(options_.shared_pool->page_size()) +
        ") does not match the store's (" +
        std::to_string(store_->page_size()) + ")");
  }
  if (store_->num_vertices() == 0) {
    if (stats != nullptr) *stats = OptRunStats();
    return sink->Finish();
  }

  Stopwatch total_watch;
  TraceSpan run_span("opt", "opt.run",
                     "\"vertices\":" +
                         std::to_string(store_->num_vertices()) +
                         ",\"m_in\":" + std::to_string(options_.m_in) +
                         ",\"m_ex\":" + std::to_string(options_.m_ex));
  // Declaration order is load-bearing: the context (and its completion
  // queue) and the pool must outlive the engine, whose destructor joins
  // the I/O workers — a worker's completion push or frame publication
  // may otherwise race their destruction at the end of Run(). The
  // profiler outlives every ThreadScope referencing it (helpers join in
  // phase C; the main scope below is destroyed first).
  std::optional<OverlapProfiler> profiler;
  if (options_.profile) {
    OverlapProfiler::Options profile_options;
    profile_options.period_micros =
        options_.profile_period_micros == 0 ? 1000
                                            : options_.profile_period_micros;
    profiler.emplace(profile_options);
  }
  OverlapProfiler::ThreadScope main_profile_scope(
      profiler.has_value() ? &*profiler : nullptr, ThreadRole::kInternal);
  RunContext ctx;
  // m_in + m_ex frames as in the paper; grows per iteration only if a
  // merged chunk around spanning adjacency lists exceeds m_ex. A shared
  // pool instead *reserves* that capacity so concurrent queries compose.
  std::optional<BufferPool> private_pool;
  BufferPool* pool = options_.shared_pool;
  if (pool == nullptr) {
    private_pool.emplace(store_->page_size(),
                         options_.m_in + options_.m_ex + 2);
    pool = &*private_pool;
  }
  FrameReservation reservation(pool, options_.m_in + options_.m_ex + 2);
  AsyncIoEngine engine(options_.io_queue_depth, options_.io_retry);

  ctx.store = store_;
  ctx.model = model_;
  ctx.options = options_;
  ctx.sink = sink;
  ctx.pool = pool;
  ctx.owner = options_.shared_pool != nullptr ? options_.pool_owner : 0;
  ctx.engine = &engine;
  ctx.profiler = profiler.has_value() ? &*profiler : nullptr;
  ctx.flight = options_.flight;

  OptRunStats run_stats;
  // Hub routing applies only under a bitmap kernel. Resolve the split
  // against the store's full-degree histogram once per run; per-hub
  // bitmaps are then materialized each iteration from the internal area.
  if (IsBitmapKernel(ActiveIntersectKernel())) {
    const HubSplitSpec split = options_.hub_split.has_value()
                                   ? *options_.hub_split
                                   : DefaultHubSplit();
    if (split.mode != HubSplitSpec::Mode::kOff) {
      OPT_ASSIGN_OR_RETURN(const std::vector<uint32_t> degrees,
                           store_->ComputeDegrees());
      const uint32_t threshold = ResolveHubDegreeThreshold(
          split, degrees, store_->num_vertices());
      if (threshold != kNoHubThreshold) {
        ctx.hub_index.Reset(store_->num_vertices(), threshold);
        ctx.hub_routing = true;
        run_stats.hub_degree_threshold = threshold;
      }
    }
  }
  const VertexId n = store_->num_vertices();
  VertexId v_start = 0;
  while (v_start < n && !ctx.CheckCancel()) {
    OPT_ASSIGN_OR_RETURN(ctx.plan,
                         store_->PlanIteration(v_start, options_.m_in));
    IterationStats iter;
    iter.v_lo = ctx.plan.v_lo;
    iter.v_hi = ctx.plan.v_hi;
    const IntersectCounters intersect_start = SnapshotIntersectCounters();
    TraceSpan iter_span("opt", "iteration",
                        "\"v_lo\":" + std::to_string(ctx.plan.v_lo) +
                            ",\"v_hi\":" + std::to_string(ctx.plan.v_hi));

    // ----- Phase A: fill the internal area (Algorithm 3 lines 5-8) -----
    std::optional<TraceSpan> phase_span;
    phase_span.emplace("opt", "phaseA.load");
    // Main-thread PMU scope, re-aimed at each phase boundary (workers
    // fold into perf_c via their own scopes). optional::emplace stops
    // the previous scope before snapshotting the next, so no cycle is
    // counted twice.
    std::optional<PerfScope> perf_scope;
    perf_scope.emplace(ctx.PerfSink(&ctx.perf_a));
    Stopwatch load_watch;
    const uint32_t pages = ctx.plan.num_pages();
    ctx.internal_frames.assign(pages, nullptr);
    ctx.internal_page_data.assign(pages, nullptr);
    ctx.internal_page_count = pages;
    ctx.internal_cursor.store(0);
    ctx.internal_pages_done.store(0);
    ctx.candidates.clear();
    ctx.internal_cpu_micros.store(0);
    ctx.external_cpu_micros.store(0);
    ctx.external_pages.store(0);
    ctx.external_hits.store(0);

    for (uint32_t i = 0; i < pages; ++i) {
      const uint32_t pid = ctx.plan.pid_lo + i;
      auto fetch = pool->Fetch(ctx.Key(pid));
      if (!fetch.ok()) {
        ctx.RecordError(fetch.status());
        break;
      }
      Frame* f = fetch->frame;
      ctx.internal_frames[i] = f;
      ctx.RecordFetch(fetch->outcome, pid);
      if (fetch->outcome == BufferPool::FetchOutcome::kMiss) {
        ctx.group_in.Add();
        ReadRequest request;
        request.file = store_->file();
        request.first_pid = pid;
        request.page_count = 1;
        request.frames = {f};
        request.completion_queue = &ctx.completions;
        // Validation and MarkValid/MarkFailed happen on the I/O worker.
        request.pool = pool;
        request.validate = options_.validate_pages;
        request.page_size = store_->page_size();
        request.flight = ctx.flight;
        RunContext* pctx = &ctx;
        request.callback = [pctx, f](const Status& status) {
          if (!status.ok()) {
            pctx->RecordError(status);
          } else if (!pctx->aborted()) {
            CollectCandidatesFromPage(pctx, f->data);
          }
          pctx->group_in.Done();
        };
        engine.Submit(std::move(request));
        continue;
      }
      // Buffered by a previous iteration's external loads or by a
      // concurrent query — the paper's Δin I/O saving either way.
      iter.internal_cache_hits++;
      if (fetch->outcome == BufferPool::FetchOutcome::kInFlight) {
        OverlapProfiler::SetRole(ThreadRole::kIoWait);
        const Status w =
            pool->WaitValid(f, options_.io_wait_timeout_millis);
        if (!w.ok()) {
          if (ctx.flight != nullptr && w.IsUnavailable()) {
            ctx.flight->Record(FlightEventType::kWaitTimeout, pid);
          }
          ctx.RecordError(w);
          break;
        }
      }
      OverlapProfiler::SetWork(/*internal_work=*/true);
      CollectCandidatesFromPage(&ctx, f->data);
    }
    // The main thread drains completion callbacks while remaining reads
    // are in flight (micro-level overlap of load and candidate parsing).
    while (!ctx.group_in.Finished()) {
      OverlapProfiler::SetRole(ThreadRole::kIoWait);
      if (auto task = ctx.completions.PopFor(200)) {
        OverlapProfiler::SetWork(/*internal_work=*/true);
        (*task)();
      }
    }
    OverlapProfiler::SetWork(/*internal_work=*/true);
    if (ctx.aborted()) {
      for (Frame* f : ctx.internal_frames) {
        if (f != nullptr) pool->Unpin(f);
      }
      break;
    }
    iter.internal_pages = pages;
    iter.load_seconds = load_watch.ElapsedSeconds();

    // ----- Phase B: plan the external loads (Algorithm 4) -----
    phase_span.emplace("opt", "phaseB.plan");
    perf_scope.emplace(ctx.PerfSink(&ctx.perf_b));
    Stopwatch plan_watch;
    for (uint32_t i = 0; i < pages; ++i) {
      ctx.internal_page_data[i] = ctx.internal_frames[i]->data;
    }
    Status view_status = ctx.internal_view.Build(
        *store_, ctx.plan.pid_lo, ctx.internal_page_data);
    if (!view_status.ok()) {
      ctx.RecordError(view_status);
      for (Frame* f : ctx.internal_frames) pool->Unpin(f);
      break;
    }

    // Materialize this iteration's hub bitmaps from the internal view —
    // after the view is built, before any phase C thread spawns, so the
    // index is immutable while workers read it through HubRoutingScope.
    if (ctx.hub_routing) {
      ctx.hub_index.Clear();
      for (VertexId v = ctx.plan.v_lo; v <= ctx.plan.v_hi; ++v) {
        if (ctx.internal_view.HasFull(v)) {
          ctx.hub_index.Add(v, ctx.internal_view.Get(v).all);
        }
      }
      run_stats.hub_bitmaps_built += ctx.hub_index.num_hubs();
      run_stats.hub_bitmap_peak_bytes = std::max(
          run_stats.hub_bitmap_peak_bytes,
          static_cast<uint64_t>(ctx.hub_index.memory_bytes()));
    }

    std::sort(ctx.candidates.begin(), ctx.candidates.end());
    ctx.candidates.erase(
        std::unique(ctx.candidates.begin(), ctx.candidates.end()),
        ctx.candidates.end());
    iter.candidates = ctx.candidates.size();

    // Group candidates into page-run chunks, merge overlaps, order by
    // descending page id so the pages nearest the internal area are
    // loaded last and survive in the pool for the next iteration.
    std::vector<Chunk> chunks;
    {
      std::map<uint32_t, Chunk> by_range;  // keyed by first_pid
      for (VertexId v : ctx.candidates) {
        const uint32_t fp = store_->FirstPageOfVertex(v);
        const uint32_t lp = store_->LastPageOfVertex(v);
        auto it = by_range.find(fp);
        if (it == by_range.end()) {
          Chunk c;
          c.first_pid = fp;
          c.page_count = lp - fp + 1;
          c.candidates.push_back(v);
          by_range.emplace(fp, std::move(c));
        } else {
          it->second.page_count =
              std::max(it->second.page_count, lp - fp + 1);
          it->second.candidates.push_back(v);
        }
      }
      // Merge overlapping page ranges (spanning records sharing boundary
      // pages) so no page has two concurrent in-flight reads.
      for (auto& [fp, chunk] : by_range) {
        if (!chunks.empty()) {
          Chunk& prev = chunks.back();
          if (fp <= prev.first_pid + prev.page_count - 1) {
            const uint32_t new_end =
                std::max(prev.first_pid + prev.page_count,
                         fp + chunk.page_count);
            prev.page_count = new_end - prev.first_pid;
            prev.candidates.insert(prev.candidates.end(),
                                   chunk.candidates.begin(),
                                   chunk.candidates.end());
            continue;
          }
        }
        chunks.push_back(std::move(chunk));
      }
      if (options_.backward_external_order) {
        std::reverse(chunks.begin(), chunks.end());  // descending page id
      }
    }
    iter.chunks = chunks.size();

    // The in-flight budget (m_ex) regulates L_now vs L_later; an
    // oversized merged chunk raises it (and the reserved pool capacity
    // grows to match).
    uint32_t largest_chunk = 0;
    for (const auto& chunk : chunks) {
      largest_chunk = std::max(largest_chunk, chunk.page_count);
    }
    {
      std::lock_guard<std::mutex> lock(ctx.later_mutex);
      ctx.later.clear();
      ctx.ext_capacity = std::max(options_.m_ex, largest_chunk);
      ctx.ext_used = 0;
      for (auto& chunk : chunks) ctx.later.push_back(std::move(chunk));
    }
    reservation.GrowTo(options_.m_in + ctx.ext_capacity + 2);
    ctx.group_ex.Add(static_cast<uint32_t>(chunks.size()));
    run_stats.serial_seconds +=
        iter.load_seconds + plan_watch.ElapsedSeconds();

    // ----- Phase C: overlapped triangulation (Algorithm 3 lines 9-11) --
    phase_span.emplace("opt", "phaseC.overlap");
    perf_scope.emplace(ctx.PerfSink(&ctx.perf_c));
    Stopwatch overlap_watch;
    PumpExternal(&ctx);

    if (options_.macro_overlap) {
      std::vector<std::thread> helpers;
      helpers.emplace_back(CallbackRole, &ctx);
      for (uint32_t t = 2; t < options_.num_threads; ++t) {
        helpers.emplace_back(FlexRole, &ctx);
      }
      // Main thread: internal triangulation, then morph into a callback
      // drainer (or plain wait when morphing is off).
      ModelScratch scratch;
      {
        TraceSpan internal_span("opt", "internal.main");
        while (RunOneInternalUnit(&ctx, &scratch)) {
        }
      }
      if (options_.thread_morphing) {
        if (!ExternalDone(&ctx)) {
          TraceInstant("morph", "morph.to_external");
          if (ctx.profiler != nullptr) ctx.profiler->RecordMorph();
          if (ctx.flight != nullptr) {
            ctx.flight->Record(FlightEventType::kMorphToExternal);
          }
        }
        DrainExternal(&ctx, /*allow_morph=*/true, &scratch);
      }
      OverlapProfiler::SetRole(ThreadRole::kIoWait);
      ctx.group_ex.Wait();
      for (auto& h : helpers) h.join();
    } else {
      // OPT_serial: internal first, then external, one thread. The async
      // reads issued above progress meanwhile (micro-level overlap).
      ModelScratch scratch;
      {
        TraceSpan internal_span("opt", "internal.main");
        while (RunOneInternalUnit(&ctx, &scratch)) {
        }
      }
      DrainExternal(&ctx, /*allow_morph=*/false, &scratch);
      OverlapProfiler::SetRole(ThreadRole::kIoWait);
      ctx.group_ex.Wait();
    }
    phase_span.reset();
    perf_scope.reset();
    if (options_.collect_perf && CurrentTraceRecorder() != nullptr) {
      // Counter tracks next to the PR 5 overlap tracks: cumulative CPU
      // per phase (stacked staircase) plus the run's efficiency ratios.
      const PerfReading pa = ctx.perf_a.Snapshot();
      const PerfReading pb = ctx.perf_b.Snapshot();
      const PerfReading pc = ctx.perf_c.Snapshot();
      TraceCounter(
          "perf", "perf.task_clock_ms",
          "\"phaseA\":" + std::to_string(pa.task_clock_ns / 1000000) +
              ",\"phaseB\":" + std::to_string(pb.task_clock_ns / 1000000) +
              ",\"phaseC\":" + std::to_string(pc.task_clock_ns / 1000000));
      PerfReading sum = pa;
      sum.Accumulate(pb);
      sum.Accumulate(pc);
      if (sum.cycles > 0) {
        TraceCounter("perf", "perf.ipc",
                     "\"ipc\":" + std::to_string(sum.Ipc()));
      }
      if (sum.llc_loads > 0) {
        TraceCounter(
            "perf", "perf.llc_miss_pct",
            "\"pct\":" + std::to_string(sum.LlcMissRate() * 100.0));
      }
    }
    iter.overlap_seconds = overlap_watch.ElapsedSeconds();
    run_stats.parallel_seconds += iter.overlap_seconds;

    // ----- Phase D: unpin the internal area (Algorithm 3 lines 12-13) --
    for (Frame* f : ctx.internal_frames) pool->Unpin(f);

    iter.internal_cpu_seconds =
        static_cast<double>(ctx.internal_cpu_micros.load()) * 1e-6;
    iter.external_cpu_seconds =
        static_cast<double>(ctx.external_cpu_micros.load()) * 1e-6;
    iter.external_pages = ctx.external_pages.load();
    iter.external_cache_hits = ctx.external_hits.load();
    iter.intersect = IntersectCounters::Delta(SnapshotIntersectCounters(),
                                              intersect_start);
    run_stats.intersect.Accumulate(iter.intersect);

    run_stats.iterations++;
    run_stats.internal_pages_read +=
        iter.internal_pages - iter.internal_cache_hits;
    run_stats.internal_cache_hits += iter.internal_cache_hits;
    run_stats.external_pages_read += iter.external_pages;
    run_stats.external_cache_hits += iter.external_cache_hits;
    run_stats.per_iteration.push_back(iter);

    if (ctx.aborted()) break;
    v_start = ctx.plan.v_hi + 1;
  }

  run_stats.perf_backend = ActivePerfBackend();
  run_stats.perf_phase_a = ctx.perf_a.Snapshot();
  run_stats.perf_phase_b = ctx.perf_b.Snapshot();
  run_stats.perf_phase_c = ctx.perf_c.Snapshot();

  // Publish the run's page accounting into the live registry whether the
  // run succeeded or aborted — partial I/O still happened and the Δin/Δex
  // identity must account for it.
  PublishRunStats(run_stats);

  {
    std::lock_guard<std::mutex> lock(ctx.error_mutex);
    if (!ctx.first_error.ok()) {
      // Unrecoverable *device* faults (retry budget exhausted on EIO,
      // waiter timed out) degrade this query, not the process: the
      // typed Unavailable tells the service layer the store is intact
      // and a retry may succeed. Corruption is different — a page whose
      // CRC still fails after every reread is data damage, not device
      // flakiness — so it keeps its code (VerifyAllPages locates it)
      // instead of inviting clients to retry forever against a damaged
      // store. Cancellation, planning errors, and sink failures keep
      // their own codes too.
      if (ctx.first_error.IsIOError() || ctx.first_error.IsUnavailable()) {
        const Status degraded =
            Status::Unavailable("triangulation degraded by I/O fault: " +
                                ctx.first_error.ToString());
        if (ctx.flight != nullptr) {
          ctx.flight->Record(FlightEventType::kDegrade,
                             static_cast<uint64_t>(degraded.code()));
        }
        return degraded;
      }
      return ctx.first_error;
    }
  }
  OPT_RETURN_IF_ERROR(sink->Finish());
  run_stats.elapsed_seconds = total_watch.ElapsedSeconds();
  if (profiler.has_value()) {
    profiler->Stop();
    run_stats.profiled = true;
    run_stats.overlap = profiler->Report();
    // Fit the cost model (§3.3): c is the measured per-page read
    // latency; Cost(ideal) is the run's CPU work plus one sequential
    // pass over the internal areas; the prediction adds c(Δex − Δin)
    // where Δin is pages the pool saved the internal fill and Δex is
    // pages the external loads actually re-read.
    const AsyncIoStats& io = engine.stats();
    const uint64_t pages_read =
        io.pages_read.load(std::memory_order_relaxed);
    const double c =
        pages_read == 0
            ? 0.0
            : static_cast<double>(
                  io.read_micros.load(std::memory_order_relaxed)) *
                  1e-6 / static_cast<double>(pages_read);
    double cpu_seconds = 0;
    for (const IterationStats& iter : run_stats.per_iteration) {
      cpu_seconds += iter.internal_cpu_seconds + iter.external_cpu_seconds;
    }
    const uint64_t one_pass_pages =
        run_stats.internal_pages_read + run_stats.internal_cache_hits;
    OverlapCostModel& cost = run_stats.overlap.cost;
    cost.c_seconds_per_page = c;
    cost.delta_in_pages = run_stats.internal_cache_hits;
    cost.delta_ex_pages = run_stats.external_pages_read;
    cost.ideal_seconds =
        cpu_seconds + c * static_cast<double>(one_pass_pages);
    cost.predicted_seconds =
        cost.ideal_seconds +
        c * (static_cast<double>(cost.delta_ex_pages) -
             static_cast<double>(cost.delta_in_pages));
    cost.measured_seconds = run_stats.elapsed_seconds;
    cost.residual_seconds = cost.measured_seconds - cost.predicted_seconds;
  }
  if (stats != nullptr) *stats = std::move(run_stats);
  return Status::OK();
}

}  // namespace opt
