#include "core/page_range_view.h"

#include <algorithm>
#include <cassert>

namespace opt {

Status PageRangeView::Build(const GraphStore& store, uint32_t first_pid,
                            std::span<const char* const> page_data) {
  entries_.clear();
  scratch_.clear();
  first_full_ = kInvalidVertex;
  last_full_ = kInvalidVertex;
  if (page_data.empty()) return Status::OK();

  const uint32_t page_size = store.page_size();

  // Determine the vertex extent of the run.
  base_vertex_ = kInvalidVertex;
  VertexId max_vertex = 0;
  for (size_t i = 0; i < page_data.size(); ++i) {
    PageView page(page_data[i], page_size);
    const uint32_t slots = page.num_slots();
    if (slots == 0) continue;
    const VertexId first = page.GetSegment(0).vertex;
    const VertexId last = page.GetSegment(slots - 1).vertex;
    if (base_vertex_ == kInvalidVertex) base_vertex_ = first;
    base_vertex_ = std::min(base_vertex_, first);
    max_vertex = std::max(max_vertex, last);
  }
  if (base_vertex_ == kInvalidVertex) return Status::OK();  // empty pages
  entries_.resize(max_vertex - base_vertex_ + 1);

  // In-progress multi-segment assembly (records appear in page order, so
  // a spanning record's segments arrive consecutively).
  VertexId pending_vertex = kInvalidVertex;
  std::vector<VertexId> pending;
  uint32_t pending_expected = 0;

  auto finalize = [&](VertexId v, const VertexId* ptr, uint32_t len) {
    Entry& e = entries_[v - base_vertex_];
    e.ptr = ptr;
    e.len = len;
    e.full = true;
    e.succ_begin = static_cast<uint32_t>(
        std::upper_bound(ptr, ptr + len, v) - ptr);
    if (first_full_ == kInvalidVertex || v < first_full_) first_full_ = v;
    if (last_full_ == kInvalidVertex || v > last_full_) last_full_ = v;
  };

  for (size_t i = 0; i < page_data.size(); ++i) {
    PageView page(page_data[i], page_size);
    const uint32_t slots = page.num_slots();
    for (uint32_t s = 0; s < slots; ++s) {
      const Segment seg = page.GetSegment(s);
      if (seg.vertex >= static_cast<uint64_t>(base_vertex_) +
                            entries_.size() ||
          seg.vertex < base_vertex_) {
        return Status::Corruption("segment vertex out of run extent");
      }
      if (seg.IsFirstSegment() && seg.IsLastSegment()) {
        // Common case: single-segment record, zero copy.
        finalize(seg.vertex, seg.neighbors.data(),
                 static_cast<uint32_t>(seg.neighbors.size()));
        pending_vertex = kInvalidVertex;
        continue;
      }
      if (seg.IsFirstSegment()) {
        pending_vertex = seg.vertex;
        pending.assign(seg.neighbors.begin(), seg.neighbors.end());
        pending_expected = seg.total_degree;
        continue;
      }
      // Continuation segment.
      if (seg.vertex != pending_vertex ||
          seg.offset != pending.size()) {
        // The run does not contain the record's earlier segments (view
        // starts mid-record) — the record is not fully covered; skip.
        pending_vertex = kInvalidVertex;
        pending.clear();
        continue;
      }
      pending.insert(pending.end(), seg.neighbors.begin(),
                     seg.neighbors.end());
      if (seg.IsLastSegment()) {
        if (pending.size() != pending_expected) {
          return Status::Corruption("segment chain length mismatch");
        }
        scratch_.emplace_back(std::move(pending));
        pending.clear();
        const auto& stored = scratch_.back();
        finalize(pending_vertex, stored.data(),
                 static_cast<uint32_t>(stored.size()));
        pending_vertex = kInvalidVertex;
      }
    }
  }
  (void)first_pid;
  return Status::OK();
}

}  // namespace opt
