// The paper's `ideal` method (§3.3): one sequential scan of the graph
// into an unbounded memory buffer followed by pure in-memory
// triangulation — Cost_ideal = cP(G) + Cost_CPU. OPT's relative elapsed
// time is measured against this (Figure 3a).
#ifndef OPT_CORE_IDEAL_H_
#define OPT_CORE_IDEAL_H_

#include "core/iterator_model.h"
#include "core/triangle_sink.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

struct IdealStats {
  double load_seconds = 0;
  double cpu_seconds = 0;
  double elapsed_seconds = 0;
};

/// Loads the whole store into memory (fails only on I/O errors — the
/// harness guarantees the graph fits) and runs the model's internal
/// triangulation over everything, page-parallel across `num_threads`.
Status RunIdeal(GraphStore* store, const IteratorModel& model,
                TriangleSink* sink, uint32_t num_threads,
                IdealStats* stats = nullptr);

}  // namespace opt

#endif  // OPT_CORE_IDEAL_H_
