#include "core/iterator_model.h"

#include <algorithm>

#include "graph/hub_bitmap.h"
#include "graph/intersect.h"

namespace opt {

// ---------------------------------------------------------------------------
// EdgeIterator instance (Algorithms 6, 8, 10).
// ---------------------------------------------------------------------------

void EdgeIteratorModel::InternalTriangles(const PageRangeView& internal,
                                          const IterationPlan& plan,
                                          VertexId u, TriangleSink* sink,
                                          ModelScratch* scratch) const {
  const AdjacencyRef au = internal.Get(u);
  const auto succ_u = au.succ();
  for (VertexId v : succ_u) {
    if (v > plan.v_hi) break;  // sorted: the rest are external pairs
    const AdjacencyRef av = internal.Get(v);
    scratch->intersection.clear();
    // Hub-routed: both spans are slices of full adjacencies, so the
    // bitmap path (when v or u is a hub) is exact.
    Intersect(u, v, succ_u, av.succ(), &scratch->intersection);
    if (!scratch->intersection.empty()) {
      sink->Emit(u, v, scratch->intersection);
    }
  }
}

void EdgeIteratorModel::CollectCandidates(const IterationPlan& plan,
                                          const Segment& segment,
                                          std::vector<VertexId>* out) const {
  // Algorithm 8: v in n_succ(u) with n(v) outside the internal area.
  // Residency is the id-range test v <= v_hi, so candidates are exactly
  // the neighbors beyond v_hi (they are also > u, hence in n_succ(u)).
  const auto& nbrs = segment.neighbors;
  auto it = std::upper_bound(nbrs.begin(), nbrs.end(), plan.v_hi);
  out->insert(out->end(), it, nbrs.end());
}

void EdgeIteratorModel::ExternalTriangles(const PageRangeView& internal,
                                          const IterationPlan& plan,
                                          VertexId external_vertex,
                                          const AdjacencyRef& external_adj,
                                          TriangleSink* sink,
                                          ModelScratch* scratch) const {
  // Algorithm 9 line 5 derives V_req from the loaded record itself:
  // the internal requesters are n_prec(v) ∩ [v_lo, v_hi].
  const auto prec = external_adj.prec();
  auto lo = std::lower_bound(prec.begin(), prec.end(), plan.v_lo);
  auto hi = std::upper_bound(lo, prec.end(), plan.v_hi);
  const auto succ_v = external_adj.succ();
  for (auto it = lo; it != hi; ++it) {
    const VertexId u = *it;
    const AdjacencyRef au = internal.Get(u);
    scratch->intersection.clear();
    // Algorithm 10: W_uv = n_succ(u) ∩ n_succ(v). Hub-routed: u is an
    // internal vertex (it may own a bitmap); the external vertex never
    // does, so this pair takes at most the sparse-probe path.
    Intersect(u, external_vertex, au.succ(), succ_v,
              &scratch->intersection);
    if (!scratch->intersection.empty()) {
      sink->Emit(u, external_vertex, scratch->intersection);
    }
  }
}

// ---------------------------------------------------------------------------
// VertexIterator instance (Algorithms 11, 12, 13).
// ---------------------------------------------------------------------------

void VertexIteratorModel::InternalTriangles(const PageRangeView& internal,
                                            const IterationPlan& plan,
                                            VertexId u, TriangleSink* sink,
                                            ModelScratch* scratch) const {
  // Algorithm 11: for v in n_succ(u) with n(v) resident, check every
  // (v, w) combination with w in n_succ(u), id(w) > id(v), against E_in.
  const AdjacencyRef au = internal.Get(u);
  const auto succ_u = au.succ();
  for (size_t i = 0; i < succ_u.size(); ++i) {
    const VertexId v = succ_u[i];
    if (v > plan.v_hi) break;
    const AdjacencyRef av = internal.Get(v);
    const auto succ_v = av.succ();
    scratch->intersection.clear();
    for (size_t j = i + 1; j < succ_u.size(); ++j) {
      const VertexId w = succ_u[j];
      // (v, w) ∈ E_in ⟺ w ∈ n(v); w > v so search n_succ(v).
      if (std::binary_search(succ_v.begin(), succ_v.end(), w)) {
        scratch->intersection.push_back(w);
      }
    }
    if (!scratch->intersection.empty()) {
      sink->Emit(u, v, scratch->intersection);
    }
  }
}

void VertexIteratorModel::CollectCandidates(const IterationPlan& plan,
                                            const Segment& segment,
                                            std::vector<VertexId>* out) const {
  // Algorithm 12: for a resident record v, every u ∈ n_prec(v) whose
  // list is not resident (u < v_lo) becomes an external candidate.
  const auto& nbrs = segment.neighbors;
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), plan.v_lo);
  out->insert(out->end(), nbrs.begin(), it);
}

void VertexIteratorModel::ExternalTriangles(const PageRangeView& internal,
                                            const IterationPlan& plan,
                                            VertexId external_vertex,
                                            const AdjacencyRef& external_adj,
                                            TriangleSink* sink,
                                            ModelScratch* scratch) const {
  // The loaded record is the low-id outer vertex u; its requesters are
  // v ∈ n_succ(u) ∩ [v_lo, v_hi] (resident lists).
  const VertexId u = external_vertex;
  const auto succ_u = external_adj.succ();
  auto lo = std::lower_bound(succ_u.begin(), succ_u.end(), plan.v_lo);
  auto hi = std::upper_bound(lo, succ_u.end(), plan.v_hi);
  for (auto it = lo; it != hi; ++it) {
    const VertexId v = *it;
    const AdjacencyRef av = internal.Get(v);
    const auto succ_v = av.succ();
    scratch->intersection.clear();
    // Algorithm 13: w ∈ n_succ(u) with id(w) > id(v) and (v, w) ∈ E_in.
    for (auto jt = std::upper_bound(succ_u.begin(), succ_u.end(), v);
         jt != succ_u.end(); ++jt) {
      if (std::binary_search(succ_v.begin(), succ_v.end(), *jt)) {
        scratch->intersection.push_back(*jt);
      }
    }
    if (!scratch->intersection.empty()) {
      sink->Emit(u, v, scratch->intersection);
    }
  }
}

}  // namespace opt
