// Triangle output sinks. All triangulation methods emit through this
// interface using the paper's *nested representation* (§3.2): triangles
// sharing the prefix (u, v) arrive as one call <u, v, {w1..wk}>, which
// avoids re-serializing common prefixes. Sinks must be thread safe: OPT
// emits concurrently from the internal and external triangulation.
#ifndef OPT_CORE_TRIANGLE_SINK_H_
#define OPT_CORE_TRIANGLE_SINK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/triangle.h"
#include "storage/env.h"
#include "util/blocking_queue.h"
#include "util/status.h"

namespace opt {

class TriangleSink {
 public:
  virtual ~TriangleSink() = default;

  /// Reports the triangles (u, v, w) for every w in `ws`. `ws` is sorted
  /// ascending and every w satisfies id(u) < id(v) < id(w).
  virtual void Emit(VertexId u, VertexId v,
                    std::span<const VertexId> ws) = 0;

  /// Flushes buffered output. Called once when triangulation completes.
  virtual Status Finish() { return Status::OK(); }
};

/// Counts triangles; O(1) memory.
class CountingSink : public TriangleSink {
 public:
  void Emit(VertexId, VertexId, std::span<const VertexId> ws) override {
    count_.fetch_add(ws.size(), std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset() { count_.store(0); }

 private:
  std::atomic<uint64_t> count_{0};
};

/// Collects all triangles in memory (tests and small graphs only).
class VectorSink : public TriangleSink {
 public:
  void Emit(VertexId u, VertexId v, std::span<const VertexId> ws) override;
  /// Sorted, deduplicated triangle list. Call after triangulation.
  std::vector<Triangle> Sorted() const;
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Triangle> triangles_;
};

/// Per-vertex triangle participation counts (for clustering coefficients
/// and the data-mining examples).
class PerVertexCountSink : public TriangleSink {
 public:
  explicit PerVertexCountSink(VertexId num_vertices);
  void Emit(VertexId u, VertexId v, std::span<const VertexId> ws) override;
  /// Copy of the per-vertex counts.
  std::vector<uint64_t> Counts() const;
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> total_{0};
};

/// Streams the nested representation to a file through a background
/// writer thread — the paper's asynchronous bulk output writing (§5.2).
/// Record format (binary, little-endian u32): u, v, k, w1..wk.
class ListingSink : public TriangleSink {
 public:
  /// Buffers `flush_threshold` bytes before handing a block to the
  /// writer thread. With `asynchronous` false the flush happens inline
  /// on the emitting thread — the synchronous bulk-write mode the
  /// paper's competitors use in the Table 3 experiment.
  ListingSink(Env* env, std::string path, size_t flush_threshold = 1 << 20,
              bool asynchronous = true);
  ~ListingSink() override;

  void Emit(VertexId u, VertexId v, std::span<const VertexId> ws) override;
  Status Finish() override;

  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t triangles_written() const {
    return triangles_.load(std::memory_order_relaxed);
  }

 private:
  void WriterLoop();
  void WriteBlock(const std::string& block);

  Env* env_;
  std::string path_;
  size_t flush_threshold_;
  bool asynchronous_;

  std::mutex mutex_;          // guards buffer_
  std::string buffer_;
  BlockingQueue<std::string> blocks_;
  std::thread writer_;
  std::unique_ptr<WritableFile> file_;
  Status write_status_;
  std::mutex status_mutex_;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> triangles_{0};
  bool finished_ = false;
};

/// Fans out to several sinks (e.g. counting + listing).
class TeeSink : public TriangleSink {
 public:
  explicit TeeSink(std::vector<TriangleSink*> sinks)
      : sinks_(std::move(sinks)) {}
  void Emit(VertexId u, VertexId v, std::span<const VertexId> ws) override {
    for (TriangleSink* s : sinks_) s->Emit(u, v, ws);
  }
  Status Finish() override {
    for (TriangleSink* s : sinks_) OPT_RETURN_IF_ERROR(s->Finish());
    return Status::OK();
  }

 private:
  std::vector<TriangleSink*> sinks_;
};

}  // namespace opt

#endif  // OPT_CORE_TRIANGLE_SINK_H_
