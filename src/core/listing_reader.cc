#include "core/listing_reader.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/coding.h"

namespace opt {

Status ReadListing(
    Env* env, const std::string& path,
    const std::function<void(VertexId, VertexId,
                             std::span<const VertexId>)>& fn) {
  OPT_ASSIGN_OR_RETURN(uint64_t size, env->FileSize(path));
  OPT_ASSIGN_OR_RETURN(auto file, env->OpenRandomAccess(path));
  if (size % 4 != 0) {
    return Status::Corruption("listing size not a multiple of 4 in " +
                              path);
  }
  constexpr size_t kChunk = 1 << 20;
  std::vector<char> buffer;
  std::vector<VertexId> ws;
  uint64_t offset = 0;
  size_t carry = 0;  // unconsumed bytes at the start of buffer
  while (offset < size || carry > 0) {
    const size_t to_read =
        static_cast<size_t>(std::min<uint64_t>(kChunk, size - offset));
    buffer.resize(carry + to_read);
    if (to_read > 0) {
      OPT_RETURN_IF_ERROR(
          file->Read(offset, to_read, buffer.data() + carry));
      offset += to_read;
    }
    size_t pos = 0;
    while (buffer.size() - pos >= 12) {
      const VertexId u = DecodeFixed32(buffer.data() + pos);
      const VertexId v = DecodeFixed32(buffer.data() + pos + 4);
      const uint32_t k = DecodeFixed32(buffer.data() + pos + 8);
      if (k == 0) {
        return Status::Corruption("empty listing record in " + path);
      }
      const size_t record = 12 + static_cast<size_t>(k) * 4;
      if (buffer.size() - pos < record) break;  // need more bytes
      ws.resize(k);
      std::memcpy(ws.data(), buffer.data() + pos + 12, k * 4);
      fn(u, v, ws);
      pos += record;
    }
    carry = buffer.size() - pos;
    if (carry > 0) {
      std::memmove(buffer.data(), buffer.data() + pos, carry);
    }
    buffer.resize(carry);
    if (offset >= size) {
      if (carry > 0) {
        return Status::Corruption("truncated listing record in " + path);
      }
      break;
    }
  }
  return Status::OK();
}

Result<std::vector<Triangle>> ReadListingTriangles(Env* env,
                                                   const std::string& path) {
  std::vector<Triangle> out;
  OPT_RETURN_IF_ERROR(ReadListing(
      env, path,
      [&](VertexId u, VertexId v, std::span<const VertexId> ws) {
        for (VertexId w : ws) out.push_back({u, v, w});
      }));
  std::sort(out.begin(), out.end());
  return out;
}

Result<uint64_t> CountListingTriangles(Env* env, const std::string& path) {
  uint64_t count = 0;
  OPT_RETURN_IF_ERROR(ReadListing(
      env, path, [&](VertexId, VertexId, std::span<const VertexId> ws) {
        count += ws.size();
      }));
  return count;
}

}  // namespace opt
