// The OPT framework (paper §3): overlapped, parallel, disk-based
// triangulation. Drives iterations over the on-disk graph; each
// iteration fills the internal area, identifies external candidate
// vertices in read-completion callbacks, then overlaps internal
// triangulation (main thread + page-parallel workers) with external
// triangulation (callback thread draining async-read completions), with
// optional thread morphing between the two roles (§3.4).
#ifndef OPT_CORE_OPT_RUNNER_H_
#define OPT_CORE_OPT_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/iterator_model.h"
#include "core/triangle_sink.h"
#include "graph/hub_bitmap.h"
#include "graph/intersect.h"
#include "obs/flight_recorder.h"
#include "obs/overlap_profiler.h"
#include "obs/perf_counters.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

struct OptOptions {
  /// Internal-area size in pages (m_in). Must be >= the store's
  /// MaxRecordPages(). The paper's default split is m_in = m_ex = m/2.
  uint32_t m_in = 0;
  /// External-area size in pages (m_ex): caps concurrently in-flight
  /// external read requests (the L_now/L_later split of Algorithm 4).
  uint32_t m_ex = 0;
  /// Total CPU workers in the overlapped phase: 1 main thread, 1
  /// callback thread, and num_threads-2 extra page-parallel workers.
  /// Ignored (treated as 1) when macro_overlap is false.
  uint32_t num_threads = 2;
  /// False selects OPT_serial: the external triangulation runs after the
  /// internal triangulation on the single main thread. The micro-level
  /// CPU/I-O overlap (async reads in flight during CPU work) remains.
  bool macro_overlap = true;
  /// Thread morphing (§3.4): an idle role steals the other role's work.
  bool thread_morphing = true;
  /// Asynchronous-read worker count (emulated SSD queue depth).
  uint32_t io_queue_depth = 16;
  /// Verify page CRCs on every load.
  bool validate_pages = true;
  /// Algorithm 4's external load order: true (paper) loads far pages
  /// first so the pages adjacent to the internal area are loaded last
  /// and survive in the buffer pool for the next iteration's internal
  /// fill (the Δin saving of §3.3). False loads in ascending page
  /// order — an ablation knob that forfeits the saving.
  bool backward_external_order = true;
  /// Intersection kernel for the run's inner loops (ablation knob).
  /// Unset leaves the process-wide dispatch table as-is (auto = best
  /// CPU-supported kernel); a set value installs that kernel at Run()
  /// start. Selection is process-wide, so concurrent runners with
  /// different explicit kernels will interleave.
  std::optional<IntersectKernel> kernel;
  /// Hub/tail split for the bitmap kernels (`--hub_split`). Only
  /// consulted when the active kernel is a bitmap kernel: the run scans
  /// the store's degree histogram once, resolves the split to a degree
  /// threshold, and materializes per-hub bitmaps each iteration from the
  /// internal area. Unset falls back to the process-wide default
  /// (SetDefaultHubSplit, itself defaulting to `auto`).
  std::optional<HubSplitSpec> hub_split;
  /// Externally owned pool (service mode). Pages survive across runs,
  /// so repeated queries hit instead of re-reading — the Δ I/O saving
  /// amortized across a workload — and concurrent queries share frames.
  /// The pool's page size must match the store's. Null (the default)
  /// gives the run a private pool, as the batch tools always did.
  BufferPool* shared_pool = nullptr;
  /// Page-key namespace tag within `shared_pool` (one per registered
  /// graph; see GraphRegistry). Ignored for private pools.
  uint32_t pool_owner = 0;
  /// Cooperative cancellation (deadlines, client disconnects): checked
  /// at page/chunk granularity; once true the run finishes the in-flight
  /// I/O it owes the shared pool, skips remaining triangulation, and
  /// returns Status::Aborted.
  const std::atomic<bool>* cancel = nullptr;
  /// Retry policy for the run's async page reads. The default retries
  /// transient device faults a few times with backoff; IoRetryPolicy::
  /// None() restores fail-fast.
  IoRetryPolicy io_retry;
  /// Bound on waiting for a page another query is loading (shared
  /// pools). 0 waits forever; with a bound, a reader that dies without
  /// publishing MarkValid/MarkFailed costs this much wall time and a
  /// typed Unavailable instead of a hung query.
  uint64_t io_wait_timeout_millis = 10000;
  /// Run the overlap profiler for this run: worker threads publish role
  /// timelines, a sampler folds them into OptRunStats::overlap (macro /
  /// micro overlap fractions, morph count, cost-model residual).
  bool profile = false;
  /// Sampling period of the profiler (ignored unless `profile`).
  uint64_t profile_period_micros = 1000;
  /// Optional per-query flight recorder: fetch outcomes, I/O retries,
  /// morphs, degradation are recorded as structured events for
  /// postmortems. Null disables. Must outlive the Run() call.
  FlightRecorder* flight = nullptr;
  /// Collect hardware (or fallback-backend) counter deltas per phase:
  /// two counter reads per phase per thread per iteration, so cheap
  /// enough to stay on in production. The backend in use is reported in
  /// OptRunStats::perf_backend — all-zero readings under `none` are an
  /// honest "no PMU", never an error.
  bool collect_perf = true;
};

/// Per-iteration instrumentation (Figure 4).
struct IterationStats {
  VertexId v_lo = 0;
  VertexId v_hi = 0;
  uint32_t internal_pages = 0;
  uint32_t internal_cache_hits = 0;   // Δin: pages not re-read (paper §3.3)
  uint64_t external_pages = 0;
  uint64_t external_cache_hits = 0;
  uint64_t candidates = 0;
  uint64_t chunks = 0;
  double load_seconds = 0;            // internal-area fill (phase A) wall
  double overlap_seconds = 0;         // triangulation (phase C) wall
  double internal_cpu_seconds = 0;    // summed across threads
  double external_cpu_seconds = 0;    // summed across threads
  /// Per-kernel intersection activity during this iteration (delta of
  /// the process-wide counters; concurrent runners mix their counts).
  IntersectCounters intersect;
};

struct OptRunStats {
  uint32_t iterations = 0;
  uint64_t internal_pages_read = 0;
  uint64_t internal_cache_hits = 0;
  uint64_t external_pages_read = 0;
  uint64_t external_cache_hits = 0;
  double elapsed_seconds = 0;
  /// Non-parallelizable wall time (loads, planning) vs parallelizable
  /// triangulation wall time — the Amdahl decomposition of Table 5.
  double serial_seconds = 0;
  double parallel_seconds = 0;
  /// Summed per-kernel intersection counters across iterations.
  IntersectCounters intersect;
  /// Hub routing (bitmap kernels only; all zero otherwise): the degree
  /// threshold the split resolved to, bitmaps materialized summed across
  /// iterations, and the largest bitmap footprint of any iteration.
  uint32_t hub_degree_threshold = 0;
  uint64_t hub_bitmaps_built = 0;
  uint64_t hub_bitmap_peak_bytes = 0;
  std::vector<IterationStats> per_iteration;
  /// Hardware/software counter deltas per phase (A = internal fill,
  /// B = external planning, C = overlapped triangulation), summed over
  /// iterations and — for phase C — across worker threads. The backend
  /// that produced them (DESIGN.md §13's fallback ladder) qualifies the
  /// numbers: cycles/LLC columns are only populated under perf_event_hw.
  PerfBackend perf_backend = PerfBackend::kNone;
  PerfReading perf_phase_a;
  PerfReading perf_phase_b;
  PerfReading perf_phase_c;
  PerfReading PerfTotal() const {
    PerfReading total = perf_phase_a;
    total.Accumulate(perf_phase_b);
    total.Accumulate(perf_phase_c);
    return total;
  }
  /// Filled when OptOptions::profile was set: sampled overlap fractions
  /// plus the fitted cost-model residual (DESIGN.md §9).
  bool profiled = false;
  OverlapReport overlap;

  /// Measured parallel fraction p for Amdahl's law (Table 5).
  double ParallelFraction() const {
    const double total = serial_seconds + parallel_seconds;
    return total <= 0 ? 0.0 : parallel_seconds / total;
  }
};

class OptRunner {
 public:
  /// `store` and `model` must outlive the runner. The runner owns no
  /// global state; concurrent runners on different stores are fine.
  OptRunner(GraphStore* store, const IteratorModel* model,
            const OptOptions& options);

  /// Runs the full triangulation, emitting into `sink` (which must be
  /// thread safe). Fills `stats` if non-null.
  Status Run(TriangleSink* sink, OptRunStats* stats = nullptr);

 private:
  GraphStore* store_;
  const IteratorModel* model_;
  OptOptions options_;
};

}  // namespace opt

#endif  // OPT_CORE_OPT_RUNNER_H_
