// Reader for the nested-representation triangle listing produced by
// ListingSink (§3.2): records of (u, v, k, w1..wk) little-endian u32.
// Lets downstream consumers (analytics, verification) stream a listing
// without materializing it.
#ifndef OPT_CORE_LISTING_READER_H_
#define OPT_CORE_LISTING_READER_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/triangle.h"
#include "storage/env.h"
#include "util/status.h"

namespace opt {

/// Streams every record of a listing file to `fn(u, v, ws)`. Validates
/// framing; fails with Corruption on truncated or malformed records.
Status ReadListing(
    Env* env, const std::string& path,
    const std::function<void(VertexId, VertexId,
                             std::span<const VertexId>)>& fn);

/// Convenience: materializes the whole listing as sorted triangles.
Result<std::vector<Triangle>> ReadListingTriangles(Env* env,
                                                   const std::string& path);

/// Counts triangles in a listing without materializing them.
Result<uint64_t> CountListingTriangles(Env* env, const std::string& path);

}  // namespace opt

#endif  // OPT_CORE_LISTING_READER_H_
