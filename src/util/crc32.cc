#include "util/crc32.h"

namespace opt {

namespace {

// Table-driven CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
struct Crc32cTable {
  uint32_t table[8][256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78U : 0);
      }
      table[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        table[k][i] =
            (table[k - 1][i] >> 8) ^ table[0][table[k - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32cTable& GetTable() {
  static const Crc32cTable t;
  return t;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  const auto& t = GetTable().table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // 8 bytes at a time (slicing-by-8).
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    crc ^= static_cast<uint32_t>(word);
    const uint32_t high = static_cast<uint32_t>(word >> 32);
    crc = t[7][crc & 0xFF] ^ t[6][(crc >> 8) & 0xFF] ^
          t[5][(crc >> 16) & 0xFF] ^ t[4][crc >> 24] ^
          t[3][high & 0xFF] ^ t[2][(high >> 8) & 0xFF] ^
          t[1][(high >> 16) & 0xFF] ^ t[0][high >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace opt
