// Wall-clock stopwatch used by the experiment harness.
#ifndef OPT_UTIL_STOPWATCH_H_
#define OPT_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace opt {

class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall-clock time over multiple start/stop intervals; used to
/// attribute per-iteration time to the main and callback thread roles
/// (Figure 4 instrumentation).
class TimeAccumulator {
 public:
  void Start() { watch_.Restart(); running_ = true; }
  void Stop() {
    if (running_) {
      total_ += watch_.ElapsedSeconds();
      running_ = false;
    }
  }
  void Reset() { total_ = 0.0; running_ = false; }
  double TotalSeconds() const { return total_; }

 private:
  Stopwatch watch_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace opt

#endif  // OPT_UTIL_STOPWATCH_H_
