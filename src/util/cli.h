// Tiny --flag=value / --flag value command-line parser used by the tools,
// examples, and bench binaries.
#ifndef OPT_UTIL_CLI_H_
#define OPT_UTIL_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace opt {

class CommandLine {
 public:
  /// Parses argv. Flags take the form --name=value, --name value, or
  /// --name (boolean true). Everything else becomes a positional argument.
  static Result<CommandLine> Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  /// Returns the flag value when it is one of `choices` (or `def` when
  /// the flag is absent); InvalidArgument names the allowed values
  /// otherwise. Used for enum-like knobs such as --kernel.
  Result<std::string> GetChoice(const std::string& name,
                                const std::vector<std::string>& choices,
                                const std::string& def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace opt

#endif  // OPT_UTIL_CLI_H_
