#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace opt {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;
LogSink g_log_sink;  // guarded by g_log_mutex; empty = stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void InitLogLevelFromEnv() {
  const char* value = std::getenv("OPT_LOG_LEVEL");
  if (value == nullptr || *value == '\0') return;
  std::string lowered;
  for (const char* p = value; *p != '\0'; ++p) {
    lowered += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lowered == "debug" || lowered == "0") {
    SetLogLevel(LogLevel::kDebug);
  } else if (lowered == "info" || lowered == "1") {
    SetLogLevel(LogLevel::kInfo);
  } else if (lowered == "warn" || lowered == "warning" || lowered == "2") {
    SetLogLevel(LogLevel::kWarn);
  } else if (lowered == "error" || lowered == "3") {
    SetLogLevel(LogLevel::kError);
  } else {
    std::fprintf(stderr, "ignoring unknown OPT_LOG_LEVEL '%s'\n", value);
  }
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_log_sink = std::move(sink);
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  using namespace std::chrono;
  const auto now = system_clock::now().time_since_epoch();
  const auto ms = duration_cast<milliseconds>(now).count();
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_log_sink) {
    char prefix[96];
    std::snprintf(prefix, sizeof(prefix), "[%s %lld.%03lld %s:%d] ",
                  LevelName(level), static_cast<long long>(ms / 1000),
                  static_cast<long long>(ms % 1000), base, line);
    g_log_sink(level, prefix + message);
  } else {
    std::fprintf(stderr, "[%s %lld.%03lld %s:%d] %s\n", LevelName(level),
                 static_cast<long long>(ms / 1000),
                 static_cast<long long>(ms % 1000), base, line,
                 message.c_str());
  }
  if (level == LogLevel::kError && message.rfind("CHECK failed", 0) == 0) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace opt
