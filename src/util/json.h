// Minimal recursive-descent JSON parser — just enough to read the
// bench baseline files (tools/bench_check) and google-benchmark output.
// No external dependency, no streaming; whole document in memory.
#ifndef OPT_UTIL_JSON_H_
#define OPT_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace opt {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool def = false) const {
    return is_bool() ? bool_ : def;
  }
  double AsDouble(double def = 0.0) const {
    return is_number() ? number_ : def;
  }
  int64_t AsInt(int64_t def = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : def;
  }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return array_; }
  const std::map<std::string, JsonValue>& fields() const { return object_; }

  /// Object member lookup; returns a shared null value when absent or
  /// when this value is not an object.
  const JsonValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const {
    return is_object() && object_.count(key) > 0;
  }

  /// Parses a full document (trailing whitespace allowed, trailing
  /// garbage is an error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  friend class JsonParser;
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace opt

#endif  // OPT_UTIL_JSON_H_
