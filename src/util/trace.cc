#include "util/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "util/metrics.h"

namespace opt {

namespace {

std::atomic<TraceRecorder*> g_recorder{nullptr};

thread_local TraceContext g_context;

/// Small dense thread ids so Perfetto rows read "thread 1..N" instead of
/// hashed pthread handles.
uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// splitmix64 — cheap, well-mixed, and deterministic per (pid, seq), so
/// ids are unique across the cooperating processes of one fleet without
/// coordination.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t NewId() {
  static std::atomic<uint64_t> seq{1};
  const uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
  const uint64_t id =
      Mix64((static_cast<uint64_t>(::getpid()) << 32) ^ n);
  return id == 0 ? 1 : id;
}

void AppendIdArgs(std::string* out, const TraceEvent& event) {
  if (event.trace_id == 0 && event.span_id == 0 &&
      event.parent_span_id == 0) {
    return;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "\"trace_id\":\"%016llx\",\"span_id\":\"%016llx\","
                "\"parent_span_id\":\"%016llx\"",
                static_cast<unsigned long long>(event.trace_id),
                static_cast<unsigned long long>(event.span_id),
                static_cast<unsigned long long>(event.parent_span_id));
  if (!out->empty()) *out += ',';
  *out += buf;
}

void AppendEventJson(std::string* out, const TraceEvent& event,
                     uint64_t pid, uint64_t ts_micros) {
  char buf[160];
  *out += "{\"name\":\"" + JsonEscape(event.name) + "\",\"cat\":\"" +
          JsonEscape(event.category) + "\",\"ph\":\"";
  *out += event.phase;
  *out += '"';
  std::snprintf(buf, sizeof(buf), ",\"pid\":%llu,\"tid\":%u,\"ts\":%llu",
                static_cast<unsigned long long>(pid), event.tid,
                static_cast<unsigned long long>(ts_micros));
  *out += buf;
  if (event.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%llu",
                  static_cast<unsigned long long>(event.dur_micros));
    *out += buf;
  }
  if (event.phase == 'i') *out += ",\"s\":\"t\"";  // thread-scoped instant
  std::string args = event.args_json;
  AppendIdArgs(&args, event);
  *out += ",\"args\":{" + args + "}}";
}

uint64_t UnixNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

TraceContext CurrentTraceContext() { return g_context; }

TraceContextScope::TraceContextScope(TraceContext context)
    : saved_(g_context) {
  g_context = context;
}

TraceContextScope::~TraceContextScope() { g_context = saved_; }

uint64_t NewTraceId() { return NewId(); }
uint64_t NewSpanId() { return NewId(); }

TraceRecorder::TraceRecorder(size_t max_events)
    : max_events_(std::max<size_t>(max_events, 1)),
      start_(std::chrono::steady_clock::now()),
      unix_origin_micros_(UnixNowMicros()) {}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void TraceRecorder::Record(TraceEvent event) {
  event.tid = ThisThreadId();
  static Counter* dropped_metric =
      Metrics().GetCounter("trace.dropped_spans");
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() < max_events_) {
    events_.push_back(std::move(event));
    return;
  }
  // Ring full: overwrite the oldest slot, keep the newest window.
  events_[next_] = std::move(event);
  next_ = (next_ + 1) % max_events_;
  wrapped_ = true;
  ++dropped_;
  dropped_metric->Increment();
}

void TraceRecorder::RecordComplete(std::string name, const char* category,
                                   uint64_t ts_micros, uint64_t dur_micros,
                                   uint64_t trace_id, uint64_t span_id,
                                   uint64_t parent_span_id,
                                   std::string args_json) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'X';
  event.ts_micros = ts_micros;
  event.dur_micros = dur_micros;
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  event.args_json = std::move(args_json);
  Record(std::move(event));
}

void TraceRecorder::RecordInstant(std::string name, const char* category,
                                  std::string args_json) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'i';
  event.ts_micros = NowMicros();
  event.trace_id = g_context.trace_id;
  event.parent_span_id = g_context.span_id;
  event.args_json = std::move(args_json);
  Record(std::move(event));
}

void TraceRecorder::RecordCounter(std::string name, const char* category,
                                  std::string args_json) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'C';
  event.ts_micros = NowMicros();
  event.args_json = std::move(args_json);
  Record(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::SnapshotLocked() const {
  if (!wrapped_) return events_;
  // Unroll the ring oldest-first: [next_, end) then [0, next_).
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  out.insert(out.end(), events_.begin() + static_cast<long>(next_),
             events_.end());
  out.insert(out.end(), events_.begin(),
             events_.begin() + static_cast<long>(next_));
  return out;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return SnapshotLocked();
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out = SnapshotLocked();
  events_.clear();
  next_ = 0;
  wrapped_ = false;
  return out;
}

size_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Events();
  const uint64_t pid = static_cast<uint64_t>(::getpid());
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    AppendEventJson(&out, event, pid, event.ts_micros);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open trace output " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace output " + path);
  }
  return Status::OK();
}

std::string AssembleTrace(const std::vector<ProcessTrace>& parts) {
  // Shared time axis: the earliest process origin is t=0; each event's
  // timestamp is its process origin offset plus its local trace clock.
  uint64_t t0 = 0;
  bool have_t0 = false;
  for (const ProcessTrace& part : parts) {
    if (!have_t0 || part.unix_origin_micros < t0) {
      t0 = part.unix_origin_micros;
      have_t0 = true;
    }
  }

  struct SpanSite {
    size_t part;
    const TraceEvent* event;
    uint64_t ts;  // rebased
  };
  std::map<uint64_t, SpanSite> spans_by_id;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[192];
  for (size_t p = 0; p < parts.size(); ++p) {
    const ProcessTrace& part = parts[p];
    // Perfetto process row label.
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%llu,"
                  "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                  static_cast<unsigned long long>(part.pid),
                  JsonEscape(part.label).c_str());
    out += buf;
    const uint64_t base = part.unix_origin_micros - t0;
    for (const TraceEvent& event : part.events) {
      const uint64_t ts = base + event.ts_micros;
      out += ',';
      AppendEventJson(&out, event, part.pid, ts);
      if (event.phase == 'X' && event.span_id != 0) {
        spans_by_id[event.span_id] = {p, &event, ts};
      }
    }
  }
  // Cross-process flow arrows: for every span whose parent lives in a
  // different process, draw parent → child. The flow id is the child's
  // span id (unique), the 's' anchors inside the parent slice, the 'f'
  // ("bp":"e") anchors at the child slice's start.
  for (const auto& [span_id, child] : spans_by_id) {
    const uint64_t parent_id = child.event->parent_span_id;
    if (parent_id == 0) continue;
    auto it = spans_by_id.find(parent_id);
    if (it == spans_by_id.end()) continue;
    const SpanSite& parent = it->second;
    if (parts[parent.part].pid == parts[child.part].pid) continue;
    // 's' must sit inside the parent slice; the child started after the
    // parent did (clock skew aside), so clamp into the parent's window.
    uint64_t s_ts = child.ts;
    const uint64_t parent_end = parent.ts + parent.event->dur_micros;
    if (s_ts < parent.ts) s_ts = parent.ts;
    if (s_ts > parent_end) s_ts = parent_end;
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"rpc\",\"cat\":\"flow\",\"ph\":\"s\","
                  "\"id\":\"%llx\",\"pid\":%llu,\"tid\":%u,\"ts\":%llu}",
                  static_cast<unsigned long long>(span_id),
                  static_cast<unsigned long long>(parts[parent.part].pid),
                  parent.event->tid,
                  static_cast<unsigned long long>(s_ts));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"rpc\",\"cat\":\"flow\",\"ph\":\"f\","
                  "\"bp\":\"e\",\"id\":\"%llx\",\"pid\":%llu,\"tid\":%u,"
                  "\"ts\":%llu}",
                  static_cast<unsigned long long>(span_id),
                  static_cast<unsigned long long>(parts[child.part].pid),
                  child.event->tid,
                  static_cast<unsigned long long>(child.ts));
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void StartTracing(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

void StopTracing() { g_recorder.store(nullptr, std::memory_order_release); }

TraceRecorder* CurrentTraceRecorder() {
  return g_recorder.load(std::memory_order_acquire);
}

TraceSpan::TraceSpan(const char* category, std::string name,
                     std::string args_json)
    : recorder_(CurrentTraceRecorder()),
      parent_(g_context),
      category_(category),
      name_(std::move(name)),
      args_json_(std::move(args_json)) {
  // Span bookkeeping runs when there is a local recorder *or* an
  // ambient propagated trace — the latter keeps parent/child linkage
  // intact through processes that aren't recording locally. With
  // neither, the span is inert (one atomic load + a TLS read).
  active_ = recorder_ != nullptr || parent_.trace_id != 0;
  if (!active_) return;
  context_.trace_id = parent_.trace_id;
  context_.span_id = NewSpanId();
  g_context = context_;
  if (recorder_ != nullptr) start_micros_ = recorder_->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  g_context = parent_;
  if (recorder_ == nullptr) return;
  const uint64_t end = recorder_->NowMicros();
  recorder_->RecordComplete(std::move(name_), category_, start_micros_,
                            end - start_micros_, context_.trace_id,
                            context_.span_id, parent_.span_id,
                            std::move(args_json_));
}

uint64_t TraceSpan::trace_id() const { return context_.trace_id; }
uint64_t TraceSpan::span_id() const { return context_.span_id; }

void TraceInstant(const char* category, std::string name,
                  std::string args_json) {
  TraceRecorder* recorder = CurrentTraceRecorder();
  if (recorder == nullptr) return;
  recorder->RecordInstant(std::move(name), category, std::move(args_json));
}

void TraceCounter(const char* category, std::string name,
                  std::string args_json) {
  TraceRecorder* recorder = CurrentTraceRecorder();
  if (recorder == nullptr) return;
  recorder->RecordCounter(std::move(name), category, std::move(args_json));
}

}  // namespace opt
