#include "util/trace.h"

#include <cstdio>
#include <utility>

namespace opt {

namespace {

std::atomic<TraceRecorder*> g_recorder{nullptr};

/// Small dense thread ids so Perfetto rows read "thread 1..N" instead of
/// hashed pthread handles.
uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

TraceRecorder::TraceRecorder(size_t max_events)
    : max_events_(max_events), start_(std::chrono::steady_clock::now()) {}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void TraceRecorder::Record(TraceEvent event) {
  event.tid = ThisThreadId();
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::RecordComplete(std::string name, const char* category,
                                   uint64_t ts_micros, uint64_t dur_micros,
                                   std::string args_json) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'X';
  event.ts_micros = ts_micros;
  event.dur_micros = dur_micros;
  event.args_json = std::move(args_json);
  Record(std::move(event));
}

void TraceRecorder::RecordInstant(std::string name, const char* category,
                                  std::string args_json) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'i';
  event.ts_micros = NowMicros();
  event.args_json = std::move(args_json);
  Record(std::move(event));
}

void TraceRecorder::RecordCounter(std::string name, const char* category,
                                  std::string args_json) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'C';
  event.ts_micros = NowMicros();
  event.args_json = std::move(args_json);
  Record(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

size_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  char buf[128];
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(event.name) + "\",\"cat\":\"" +
           JsonEscape(event.category) + "\",\"ph\":\"";
    out += event.phase;
    out += '"';
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u,\"ts\":%llu",
                  event.tid,
                  static_cast<unsigned long long>(event.ts_micros));
    out += buf;
    if (event.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%llu",
                    static_cast<unsigned long long>(event.dur_micros));
      out += buf;
    }
    if (event.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    out += ",\"args\":{" + event.args_json + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open trace output " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace output " + path);
  }
  return Status::OK();
}

void StartTracing(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

void StopTracing() { g_recorder.store(nullptr, std::memory_order_release); }

TraceRecorder* CurrentTraceRecorder() {
  return g_recorder.load(std::memory_order_acquire);
}

TraceSpan::TraceSpan(const char* category, std::string name,
                     std::string args_json)
    : recorder_(CurrentTraceRecorder()),
      category_(category),
      name_(std::move(name)),
      args_json_(std::move(args_json)) {
  if (recorder_ != nullptr) start_micros_ = recorder_->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  const uint64_t end = recorder_->NowMicros();
  recorder_->RecordComplete(std::move(name_), category_, start_micros_,
                            end - start_micros_, std::move(args_json_));
}

void TraceInstant(const char* category, std::string name,
                  std::string args_json) {
  TraceRecorder* recorder = CurrentTraceRecorder();
  if (recorder == nullptr) return;
  recorder->RecordInstant(std::move(name), category, std::move(args_json));
}

void TraceCounter(const char* category, std::string name,
                  std::string args_json) {
  TraceRecorder* recorder = CurrentTraceRecorder();
  if (recorder == nullptr) return;
  recorder->RecordCounter(std::move(name), category, std::move(args_json));
}

}  // namespace opt
