// Page-aligned heap buffer, required for O_DIRECT reads and used for
// all page arenas so any Env can fill them.
#ifndef OPT_UTIL_ALIGNED_BUFFER_H_
#define OPT_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>

namespace opt {

class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  /// Allocates `size` bytes aligned to `alignment` (which must be a
  /// power of two; the size is rounded up to a multiple of it).
  explicit AlignedBuffer(size_t size, size_t alignment = 4096) {
    const size_t rounded = (size + alignment - 1) / alignment * alignment;
    data_ = static_cast<char*>(std::aligned_alloc(alignment, rounded));
    size_ = rounded;
  }

  ~AlignedBuffer() { std::free(data_); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  char* data() { return data_; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace opt

#endif  // OPT_UTIL_ALIGNED_BUFFER_H_
