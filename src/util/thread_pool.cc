#include "util/thread_pool.h"

#include <cassert>

namespace opt {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!shutdown_);
    tasks_.push(std::move(task));
    ++outstanding_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --outstanding_;
      if (outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (num_threads > n) num_threads = n;
  std::atomic<size_t> cursor{begin};
  std::vector<std::thread> workers;
  workers.reserve(num_threads - 1);
  auto body = [&] {
    for (;;) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      fn(i);
    }
  };
  for (size_t t = 1; t < num_threads; ++t) workers.emplace_back(body);
  body();
  for (auto& w : workers) w.join();
}

}  // namespace opt
