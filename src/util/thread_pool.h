// A fixed-size worker pool with a parallel-for helper. OPT's page-parallel
// internal triangulation (Algorithm 5) runs on this pool; the paper used
// OpenMP, which we do not assume to be available.
#ifndef OPT_UTIL_THREAD_POOL_H_
#define OPT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace opt {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t outstanding_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [begin, end) across `num_threads` threads using a
/// shared atomic cursor (dynamic scheduling, like `omp for schedule(dynamic)`).
/// With num_threads <= 1 runs inline.
void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace opt

#endif  // OPT_UTIL_THREAD_POOL_H_
