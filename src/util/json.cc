#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace opt {

namespace {
const JsonValue& NullValue() {
  static const JsonValue* kNull = new JsonValue();
  return *kNull;
}
}  // namespace

const JsonValue& JsonValue::Get(const std::string& key) const {
  if (!is_object()) return NullValue();
  auto it = object_.find(key);
  return it == object_.end() ? NullValue() : it->second;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing garbage at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  Status Err(const std::string& what) {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    if (++depth_ > 64) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    Status s;
    switch (text_[pos_]) {
      case '{': s = ParseObject(out); break;
      case '[': s = ParseArray(out); break;
      case '"':
        out->type_ = JsonValue::Type::kString;
        s = ParseString(&out->string_);
        break;
      case 't':
      case 'f': s = ParseLiteral(out); break;
      case 'n': s = ParseLiteral(out); break;
      default: s = ParseNumber(out); break;
    }
    --depth_;
    return s;
  }

  Status ParseObject(JsonValue* out) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      std::string key;
      if (Status s = ParseString(&key); !s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      JsonValue v;
      if (Status s = ParseValue(&v); !s.ok()) return s;
      out->object_.emplace(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue v;
      if (Status s = ParseValue(&v); !s.ok()) return s;
      out->array_.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Err("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Bench files are ASCII; decode the escape but fold
            // non-ASCII code points to '?' instead of full UTF-8.
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err("bad \\u escape");
            }
            out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default: return Err("bad escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Err("unterminated string");
  }

  Status ParseLiteral(JsonValue* out) {
    auto match = [&](const char* lit) {
      const size_t n = std::strlen(lit);
      if (text_.compare(pos_, n, lit) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (match("false")) {
      out->type_ = JsonValue::Type::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (match("null")) {
      out->type_ = JsonValue::Type::kNull;
      return Status::OK();
    }
    return Err("bad literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // JSON grammar: the integer part is "0" or [1-9][0-9]* — a leading
    // zero followed by more digits is malformed, not octal.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      return Err("leading zero in number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return Err("bad number '" + token + "'");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace opt
