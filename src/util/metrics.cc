#include "util/metrics.h"

#include <cstdio>

namespace opt {

namespace {

template <typename Map>
typename Map::mapped_type::element_type* GetOrCreate(std::mutex& mutex,
                                                     Map& map,
                                                     const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = map[name];
  if (slot == nullptr) {
    slot = std::make_unique<typename Map::mapped_type::element_type>();
  }
  return slot.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return GetOrCreate(mutex_, counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return GetOrCreate(mutex_, gauges_, name);
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetOrCreate(mutex_, histograms_, name);
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<MetricsRegistry::HistogramEntry> MetricsRegistry::Histograms()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramEntry> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back({name, histogram->Snapshot()});
  }
  return out;
}

std::string MetricsRegistry::ExposeText() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : Counters()) {
    std::snprintf(line, sizeof(line), "%s=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : Gauges()) {
    std::snprintf(line, sizeof(line), "%s=%lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const HistogramEntry& entry : Histograms()) {
    const HistogramSnapshot& s = entry.snapshot;
    std::snprintf(line, sizeof(line),
                  "%s.count=%llu\n%s.min=%llu\n%s.max=%llu\n"
                  "%s.mean=%.2f\n%s.p50=%.2f\n%s.p95=%.2f\n%s.p99=%.2f\n",
                  entry.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  entry.name.c_str(), static_cast<unsigned long long>(s.min),
                  entry.name.c_str(), static_cast<unsigned long long>(s.max),
                  entry.name.c_str(), s.Mean(), entry.name.c_str(), s.P50(),
                  entry.name.c_str(), s.P95(), entry.name.c_str(), s.P99());
    out += line;
  }
  return out;
}

std::string MetricsRegistry::ExposePrometheus() const {
  std::string out;
  char line[320];
  for (const auto& [name, value] : Counters()) {
    const std::string san = SanitizeMetricName(name);
    std::snprintf(line, sizeof(line), "# TYPE %s counter\n%s %llu\n",
                  san.c_str(), san.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : Gauges()) {
    const std::string san = SanitizeMetricName(name);
    std::snprintf(line, sizeof(line), "# TYPE %s gauge\n%s %lld\n",
                  san.c_str(), san.c_str(), static_cast<long long>(value));
    out += line;
  }
  for (const HistogramEntry& entry : Histograms()) {
    const HistogramSnapshot& s = entry.snapshot;
    const std::string san = SanitizeMetricName(entry.name);
    // Summary: quantile-labelled samples plus _sum/_count. The exact
    // sum isn't tracked per-bucket, so _sum is mean × count — exact in
    // aggregate, which is all Prometheus rate math needs.
    std::snprintf(line, sizeof(line),
                  "# TYPE %s summary\n"
                  "%s{quantile=\"0.5\"} %.2f\n"
                  "%s{quantile=\"0.95\"} %.2f\n"
                  "%s{quantile=\"0.99\"} %.2f\n"
                  "%s_sum %.2f\n%s_count %llu\n",
                  san.c_str(), san.c_str(), s.P50(), san.c_str(), s.P95(),
                  san.c_str(), s.P99(), san.c_str(),
                  s.Mean() * static_cast<double>(s.count), san.c_str(),
                  static_cast<unsigned long long>(s.count));
    out += line;
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& Metrics() {
  // Leaked so metric pointers cached in function-local statics anywhere
  // in the process stay valid through static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || c == ':' || (digit && i > 0)) {
      out += c;
    } else if (digit) {  // leading digit
      out += '_';
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 >= value.size()) {
      out += value[i];
      continue;
    }
    ++i;
    switch (value[i]) {
      case 'n': out += '\n'; break;
      case '\\': out += '\\'; break;
      case '"': out += '"'; break;
      default:  // unknown escape: keep both bytes
        out += '\\';
        out += value[i];
    }
  }
  return out;
}

MetricsWindow::MetricsWindow(MetricsRegistry* registry, size_t slots)
    : registry_(registry), slots_(slots < 2 ? 2 : slots) {}

MetricsWindow::~MetricsWindow() { Stop(); }

void MetricsWindow::Start(uint64_t interval_millis) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  SampleNow();  // anchor the window immediately
  sampler_ = std::thread([this, interval_millis] {
    SamplerLoop(interval_millis);
  });
}

void MetricsWindow::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void MetricsWindow::SamplerLoop(uint64_t interval_millis) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    stop_cv_.wait_for(lock, std::chrono::milliseconds(interval_millis),
                      [this] { return !running_; });
    if (!running_) break;
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void MetricsWindow::SampleNow() {
  Sample sample;
  sample.at = std::chrono::steady_clock::now();
  sample.counters = registry_->Counters();  // already name-sorted
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < slots_) {
    ring_.push_back(std::move(sample));
    next_ = ring_.size() % slots_;
    return;
  }
  ring_[next_] = std::move(sample);
  next_ = (next_ + 1) % slots_;
  wrapped_ = true;
}

bool MetricsWindow::WindowLocked(const Sample** oldest,
                                 const Sample** newest) const {
  if (ring_.size() < 2) return false;
  if (!wrapped_ && ring_.size() < slots_) {
    *oldest = &ring_.front();
    *newest = &ring_.back();
    return true;
  }
  *oldest = &ring_[next_ % ring_.size()];
  *newest = &ring_[(next_ + ring_.size() - 1) % ring_.size()];
  return true;
}

std::vector<MetricsWindow::Rate> MetricsWindow::Rates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Sample* oldest = nullptr;
  const Sample* newest = nullptr;
  std::vector<Rate> out;
  if (!WindowLocked(&oldest, &newest)) return out;
  const double seconds =
      std::chrono::duration<double>(newest->at - oldest->at).count();
  if (seconds <= 0.0) return out;
  // Both samples are name-sorted; merge-join them. A counter absent
  // from the old sample registered mid-window: its baseline is 0.
  size_t i = 0;
  out.reserve(newest->counters.size());
  for (const auto& [name, value] : newest->counters) {
    while (i < oldest->counters.size() && oldest->counters[i].first < name) {
      ++i;
    }
    uint64_t base = 0;
    if (i < oldest->counters.size() && oldest->counters[i].first == name) {
      base = oldest->counters[i].second;
    }
    const uint64_t delta = value >= base ? value - base : 0;
    out.push_back({name, delta, static_cast<double>(delta) / seconds,
                   seconds});
  }
  return out;
}

bool MetricsWindow::WindowedRatio(const std::string& numerator,
                                  const std::string& denominator,
                                  double* out) const {
  uint64_t num = 0;
  uint64_t den = 0;
  for (const Rate& rate : Rates()) {
    if (rate.name == numerator) num = rate.delta;
    if (rate.name == denominator) den = rate.delta;
  }
  if (den == 0) return false;
  *out = static_cast<double>(num) / static_cast<double>(den);
  return true;
}

std::string MetricsWindow::ExposePrometheus() const {
  const std::vector<Rate> rates = Rates();
  std::string out;
  if (rates.empty()) return out;
  char line[320];
  std::snprintf(line, sizeof(line),
                "# TYPE opt_metrics_window_seconds gauge\n"
                "opt_metrics_window_seconds %.3f\n",
                rates.front().window_seconds);
  out += line;
  for (const Rate& rate : rates) {
    const std::string san = SanitizeMetricName(rate.name) + "_per_sec";
    std::snprintf(line, sizeof(line), "# TYPE %s gauge\n%s %.3f\n",
                  san.c_str(), san.c_str(), rate.per_second);
    out += line;
  }
  return out;
}

}  // namespace opt
