#include "util/metrics.h"

#include <cstdio>

namespace opt {

namespace {

template <typename Map>
typename Map::mapped_type::element_type* GetOrCreate(std::mutex& mutex,
                                                     Map& map,
                                                     const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = map[name];
  if (slot == nullptr) {
    slot = std::make_unique<typename Map::mapped_type::element_type>();
  }
  return slot.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return GetOrCreate(mutex_, counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return GetOrCreate(mutex_, gauges_, name);
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetOrCreate(mutex_, histograms_, name);
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<MetricsRegistry::HistogramEntry> MetricsRegistry::Histograms()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramEntry> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back({name, histogram->Snapshot()});
  }
  return out;
}

std::string MetricsRegistry::ExposeText() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : Counters()) {
    std::snprintf(line, sizeof(line), "%s=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : Gauges()) {
    std::snprintf(line, sizeof(line), "%s=%lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const HistogramEntry& entry : Histograms()) {
    const HistogramSnapshot& s = entry.snapshot;
    std::snprintf(line, sizeof(line),
                  "%s.count=%llu\n%s.min=%llu\n%s.max=%llu\n"
                  "%s.mean=%.2f\n%s.p50=%.2f\n%s.p95=%.2f\n%s.p99=%.2f\n",
                  entry.name.c_str(),
                  static_cast<unsigned long long>(s.count),
                  entry.name.c_str(), static_cast<unsigned long long>(s.min),
                  entry.name.c_str(), static_cast<unsigned long long>(s.max),
                  entry.name.c_str(), s.Mean(), entry.name.c_str(), s.P50(),
                  entry.name.c_str(), s.P95(), entry.name.c_str(), s.P99());
    out += line;
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& Metrics() {
  // Leaked so metric pointers cached in function-local statics anywhere
  // in the process stay valid through static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace opt
