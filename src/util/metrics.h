// Process-wide metrics registry: named counters, gauges, and histograms
// shared by every subsystem (buffer pool, async I/O, OPT runner, query
// scheduler, server). The registry is the measurement substrate behind
// the STATS wire op, `opt_server --metrics-dump-interval`, and the bench
// binaries' percentile output.
//
// Usage pattern — look the metric up once, then update lock-free:
//
//   static Counter* hits = Metrics().GetCounter("pool.fetch.hits");
//   hits->Increment();
//
// Lookup takes the registry mutex; the returned pointers are stable for
// the life of the process (the registry is a leaked singleton so metric
// updates from static destructors can never dangle). Counters and gauges
// update with relaxed atomics; histograms take a short per-histogram
// mutex in Record() — cheap relative to the I/O-bound paths they time.
//
// Exposition: ExposeText() renders everything as the same `name=value`
// line format the server's STATS text uses, expanding histograms into
// .count/.min/.max/.mean/.p50/.p95/.p99 lines (see DESIGN.md §7 for the
// metric-name taxonomy).
#ifndef OPT_UTIL_METRICS_H_
#define OPT_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace opt {

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Thread-safe wrapper around Histogram for concurrent recording.
///
/// Invariant: a Snapshot() is always internally consistent — count, sum,
/// and the bucket array describe the same set of Add() calls. Reset()
/// publishes a whole fresh histogram under the lock (one swap, never a
/// field-by-field clear of live state), so no snapshot can pair the old
/// state's count with the new state's zero sum or vice versa, and the
/// guarantee survives refactors that weaken Clear() itself.
class HistogramMetric {
 public:
  void Record(uint64_t value) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.Add(value);
  }
  HistogramSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_.Snapshot();
  }
  void Reset() {
    Histogram fresh;
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_ = std::move(fresh);
  }

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
};

class MetricsRegistry {
 public:
  /// Returns the existing metric of that name, or registers a new one.
  /// A name must keep one kind for the process lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  struct HistogramEntry {
    std::string name;
    HistogramSnapshot snapshot;
  };
  /// Name-sorted value snapshots of everything registered.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, int64_t>> Gauges() const;
  std::vector<HistogramEntry> Histograms() const;

  /// `name=value` lines for counters and gauges; histograms expand into
  /// name.count / .min / .max / .mean / .p50 / .p95 / .p99 lines.
  std::string ExposeText() const;

  /// Prometheus exposition-format text: every name sanitized via
  /// SanitizeMetricName, counters/gauges as `# TYPE` + sample lines,
  /// histograms as summaries (quantile-labelled samples plus _sum and
  /// _count). This is what the `--metrics-port` HTTP scrape endpoint
  /// serves.
  std::string ExposePrometheus() const;

  /// Zeroes every counter and histogram (gauges keep their last value).
  /// For tests and bench runs that need a clean slate; the registered
  /// metric objects stay valid.
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// The process-wide registry (leaked singleton — see file comment).
MetricsRegistry& Metrics();

/// Maps an internal dotted metric name ("graph.g.rmat-20.vertices") to a
/// legal Prometheus identifier ([a-zA-Z_:][a-zA-Z0-9_:]*): '.' and '-'
/// and any other illegal byte become '_', and a leading digit gets a
/// '_' prefix.
std::string SanitizeMetricName(const std::string& name);

/// Escapes a value for use inside a Prometheus label ("k=\"v\""):
/// backslash, double-quote, and newline get backslash escapes.
/// UnescapeLabelValue inverts it exactly (round-trip tested).
std::string EscapeLabelValue(const std::string& value);
std::string UnescapeLabelValue(const std::string& value);

/// Periodic-snapshot ring over a registry's counters, turning monotonic
/// totals into windowed rates (qps, pages/s, hit-rate deltas). Either
/// run the built-in sampler thread (Start/Stop) or drive sampling by
/// hand with SampleNow() — tests do the latter for determinism.
///
/// The window is [oldest retained sample, newest sample]; with `slots`
/// samples at `interval_millis` spacing the rates smooth over roughly
/// slots × interval of history.
class MetricsWindow {
 public:
  explicit MetricsWindow(MetricsRegistry* registry, size_t slots = 64);
  ~MetricsWindow();

  MetricsWindow(const MetricsWindow&) = delete;
  MetricsWindow& operator=(const MetricsWindow&) = delete;

  /// Spawns the sampler thread. Idempotent.
  void Start(uint64_t interval_millis);
  void Stop();

  /// Takes one snapshot of every registered counter right now.
  void SampleNow();

  struct Rate {
    std::string name;    // raw registry name
    uint64_t delta = 0;  // increase across the window
    double per_second = 0.0;
    double window_seconds = 0.0;
  };
  /// Per-counter rates across the retained window (empty until two
  /// samples exist). Counters that appeared mid-window rate from their
  /// first observed value.
  std::vector<Rate> Rates() const;

  /// Windowed ratio delta(num)/delta(den) — e.g. a cache hit rate over
  /// the last window rather than since process start. False when fewer
  /// than two samples exist or delta(den) == 0.
  bool WindowedRatio(const std::string& numerator,
                     const std::string& denominator, double* out) const;

  /// Prometheus lines for every windowed rate: `<san>_per_sec <value>`
  /// gauges plus `opt_metrics_window_seconds`.
  std::string ExposePrometheus() const;

 private:
  struct Sample {
    std::chrono::steady_clock::time_point at;
    std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  };
  void SamplerLoop(uint64_t interval_millis);
  bool WindowLocked(const Sample** oldest, const Sample** newest) const;

  MetricsRegistry* const registry_;
  const size_t slots_;
  mutable std::mutex mutex_;
  std::vector<Sample> ring_;
  size_t next_ = 0;
  bool wrapped_ = false;
  std::thread sampler_;
  bool running_ = false;
  std::condition_variable stop_cv_;
};

}  // namespace opt

#endif  // OPT_UTIL_METRICS_H_
