// Process-wide metrics registry: named counters, gauges, and histograms
// shared by every subsystem (buffer pool, async I/O, OPT runner, query
// scheduler, server). The registry is the measurement substrate behind
// the STATS wire op, `opt_server --metrics-dump-interval`, and the bench
// binaries' percentile output.
//
// Usage pattern — look the metric up once, then update lock-free:
//
//   static Counter* hits = Metrics().GetCounter("pool.fetch.hits");
//   hits->Increment();
//
// Lookup takes the registry mutex; the returned pointers are stable for
// the life of the process (the registry is a leaked singleton so metric
// updates from static destructors can never dangle). Counters and gauges
// update with relaxed atomics; histograms take a short per-histogram
// mutex in Record() — cheap relative to the I/O-bound paths they time.
//
// Exposition: ExposeText() renders everything as the same `name=value`
// line format the server's STATS text uses, expanding histograms into
// .count/.min/.max/.mean/.p50/.p95/.p99 lines (see DESIGN.md §7 for the
// metric-name taxonomy).
#ifndef OPT_UTIL_METRICS_H_
#define OPT_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace opt {

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Thread-safe wrapper around Histogram for concurrent recording.
///
/// Invariant: a Snapshot() is always internally consistent — count, sum,
/// and the bucket array describe the same set of Add() calls. Reset()
/// publishes a whole fresh histogram under the lock (one swap, never a
/// field-by-field clear of live state), so no snapshot can pair the old
/// state's count with the new state's zero sum or vice versa, and the
/// guarantee survives refactors that weaken Clear() itself.
class HistogramMetric {
 public:
  void Record(uint64_t value) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.Add(value);
  }
  HistogramSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_.Snapshot();
  }
  void Reset() {
    Histogram fresh;
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_ = std::move(fresh);
  }

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
};

class MetricsRegistry {
 public:
  /// Returns the existing metric of that name, or registers a new one.
  /// A name must keep one kind for the process lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  struct HistogramEntry {
    std::string name;
    HistogramSnapshot snapshot;
  };
  /// Name-sorted value snapshots of everything registered.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, int64_t>> Gauges() const;
  std::vector<HistogramEntry> Histograms() const;

  /// `name=value` lines for counters and gauges; histograms expand into
  /// name.count / .min / .max / .mean / .p50 / .p95 / .p99 lines.
  std::string ExposeText() const;

  /// Zeroes every counter and histogram (gauges keep their last value).
  /// For tests and bench runs that need a clean slate; the registered
  /// metric objects stay valid.
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// The process-wide registry (leaked singleton — see file comment).
MetricsRegistry& Metrics();

}  // namespace opt

#endif  // OPT_UTIL_METRICS_H_
