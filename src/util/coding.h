// Little-endian fixed-width integer encoding for the on-disk page format.
#ifndef OPT_UTIL_CODING_H_
#define OPT_UTIL_CODING_H_

#include <cstdint>
#include <cstring>

namespace opt {

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

}  // namespace opt

#endif  // OPT_UTIL_CODING_H_
