#include "util/table_printer.h"

#include <cassert>
#include <cstdio>

namespace opt {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TablePrinter::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " ";
      line += row[c];
      line += std::string(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += "\n";
    return line;
  };
  std::string rule = "+";
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c] + 2, '-');
    rule += "+";
  }
  rule += "\n";
  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace opt
