#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace opt {

namespace {
int BucketOf(uint64_t value) {
  if (value <= 1) return 0;
  return 64 - std::countl_zero(value) - 1;
}

uint64_t BucketLow(int b) { return b == 0 ? 0 : (1ULL << b); }
uint64_t BucketHigh(int b) { return b >= 63 ? ~0ULL : (1ULL << (b + 1)); }
}  // namespace

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  for (int b = 0; b < kNumBuckets; ++b) buckets[b] += other.buckets[b];
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0 : static_cast<double>(sum) / count;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the q-quantile is the ceil(q*count)-th smallest sample
  // (1-based). A fractional target of q*count instead lands high
  // percentiles of small-N snapshots in the wrong bucket — with two
  // samples, p95 would interpolate 90% of the way through the *first*
  // sample's bucket rather than reporting the second sample.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<uint64_t>(rank, 1, count);
  // The extreme ranks are exactly known: the smallest sample is min, the
  // largest is max. Reporting them directly keeps tiny snapshots (N=1,2)
  // honest where within-bucket interpolation has nothing to go on.
  if (rank == 1) return static_cast<double>(min);
  if (rank == count) return static_cast<double>(max);
  uint64_t seen = 0;
  double result = static_cast<double>(max);
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = seen + buckets[b];
    if (next >= rank) {
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[b]);
      const double lo = static_cast<double>(BucketLow(b));
      const double hi = static_cast<double>(BucketHigh(b));
      result = lo + frac * (hi - lo);
      break;
    }
    seen = next;
  }
  // The within-bucket interpolation can stray outside the observed range
  // (samples sit somewhere in [2^b, 2^(b+1))); clamp so reported
  // percentiles never contradict min/max.
  return std::clamp(result, static_cast<double>(min),
                    static_cast<double>(max));
}

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Clear(); }

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketOf(value)]++;
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  std::copy(buckets_.begin(), buckets_.end(), s.buckets.begin());
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max_;
  return s;
}

double Histogram::Quantile(double q) const { return Snapshot().Quantile(q); }

std::string Histogram::ToString() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "count=%llu mean=%.2f min=%llu max=%llu\n",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(max_));
  out += line;
  uint64_t largest = 1;
  for (int b = 0; b < kNumBuckets; ++b) largest = std::max(largest, buckets_[b]);
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const int bar =
        static_cast<int>(40.0 * static_cast<double>(buckets_[b]) /
                         static_cast<double>(largest));
    std::snprintf(line, sizeof(line), "[%12llu, %12llu) %10llu %s\n",
                  static_cast<unsigned long long>(BucketLow(b)),
                  static_cast<unsigned long long>(BucketHigh(b)),
                  static_cast<unsigned long long>(buckets_[b]),
                  std::string(static_cast<size_t>(bar), '#').c_str());
    out += line;
  }
  return out;
}

}  // namespace opt
