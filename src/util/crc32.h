// CRC-32C (Castagnoli) checksum protecting on-disk pages against
// corruption, verified on every page read.
#ifndef OPT_UTIL_CRC32_H_
#define OPT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace opt {

/// Computes CRC-32C of `data[0..n)` with an initial value of `crc`
/// (pass 0 for a fresh checksum).
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

}  // namespace opt

#endif  // OPT_UTIL_CRC32_H_
