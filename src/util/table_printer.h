// Aligned ASCII table rendering used by every bench binary to print
// paper-style tables and figure series.
#ifndef OPT_UTIL_TABLE_PRINTER_H_
#define OPT_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opt {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience formatters.
  static std::string Fmt(double v, int precision = 2);
  static std::string Fmt(uint64_t v);
  static std::string Fmt(int64_t v);

  /// Renders the table with a header rule and column alignment.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opt

#endif  // OPT_UTIL_TABLE_PRINTER_H_
