// Minimal leveled logger writing to stderr. Thread safe.
#ifndef OPT_UTIL_LOGGING_H_
#define OPT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace opt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct LogVoidify {
  void operator&(LogStream&) {}
};

}  // namespace internal
}  // namespace opt

#define OPT_LOG(level)                                                     \
  (static_cast<int>(::opt::LogLevel::k##level) <                           \
   static_cast<int>(::opt::GetLogLevel()))                                 \
      ? (void)0                                                            \
      : ::opt::internal::LogVoidify() &                                    \
            ::opt::internal::LogStream(::opt::LogLevel::k##level,          \
                                       __FILE__, __LINE__)

#define OPT_CHECK(cond)                                                    \
  if (!(cond))                                                             \
  ::opt::internal::LogStream(::opt::LogLevel::kError, __FILE__, __LINE__)  \
      << "CHECK failed: " #cond " "

#endif  // OPT_UTIL_LOGGING_H_
