// Minimal leveled logger writing to stderr. Thread safe.
#ifndef OPT_UTIL_LOGGING_H_
#define OPT_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace opt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Applies the OPT_LOG_LEVEL environment variable (debug|info|warn|error,
/// case-insensitive, or the numeric 0-3) to the global level. Unset or
/// unparsable values leave the level untouched. Every tool entry point
/// calls this before doing work.
void InitLogLevelFromEnv();

/// Redirects formatted log lines (level filter still applies) to `sink`
/// instead of stderr; nullptr restores stderr. For tests asserting on
/// log output (e.g. the scheduler's slow-query log).
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct LogVoidify {
  void operator&(LogStream&) {}
};

}  // namespace internal
}  // namespace opt

#define OPT_LOG(level)                                                     \
  (static_cast<int>(::opt::LogLevel::k##level) <                           \
   static_cast<int>(::opt::GetLogLevel()))                                 \
      ? (void)0                                                            \
      : ::opt::internal::LogVoidify() &                                    \
            ::opt::internal::LogStream(::opt::LogLevel::k##level,          \
                                       __FILE__, __LINE__)

#define OPT_CHECK(cond)                                                    \
  if (!(cond))                                                             \
  ::opt::internal::LogStream(::opt::LogLevel::kError, __FILE__, __LINE__)  \
      << "CHECK failed: " #cond " "

#endif  // OPT_UTIL_LOGGING_H_
