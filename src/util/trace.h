// Thread-safe span recorder emitting Chrome trace_event JSON, so a full
// OPT run — phase-A internal load, internal/external triangulation,
// thread-morph events, async-read submit/complete, per-query service
// handling — can be opened in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
//
// Model: one process-global recorder slot. Tracing is off (and spans are
// near-free: one relaxed atomic load) until StartTracing() installs a
// recorder; instrumentation sites use the RAII TraceSpan / TraceInstant
// helpers and never check the flag themselves. StopTracing() detaches
// the recorder; the caller then serializes with ToJson()/WriteJson().
//
// Distributed tracing: every request carries a 64-bit `trace_id` plus
// the `span_id` of its parent span, propagated across the wire as a
// back-compatible frame tail (old peers ignore it). Each process keeps
// a thread-local TraceContext {trace_id, current span_id}; TraceSpan
// pushes itself as the current span so children — including spans on a
// remote shard that received the ids over the wire — link into one
// tree. AssembleTrace() merges per-process event dumps (drained via the
// TRACE_PULL wire op) into a single Perfetto JSON with cross-process
// flow arrows.
//
// Storage is a fixed-capacity ring keeping the *most recent* events;
// overwritten events are counted in dropped() and in the process-wide
// `trace.dropped_spans` counter, so long soaks cannot grow the heap.
//
// Lifetime rule: stop tracing only after all traced work has finished —
// a TraceSpan captures the recorder pointer at construction (so a span
// straddling StopTracing writes into a recorder the caller still owns,
// but a span straddling the recorder's *destruction* would dangle).
// opt_server obeys this by stopping the scheduler before writing the
// trace file.
#ifndef OPT_UTIL_TRACE_H_
#define OPT_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace opt {

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';        // 'X' complete, 'i' instant, 'C' counter sample
  uint64_t ts_micros = 0;  // since recorder construction
  uint64_t dur_micros = 0; // complete spans only
  uint32_t tid = 0;        // small per-thread id (stable within a process)
  uint64_t trace_id = 0;        // request tree this event belongs to (0 = none)
  uint64_t span_id = 0;         // this span's own id ('X' phases)
  uint64_t parent_span_id = 0;  // parent span (possibly in another process)
  std::string args_json;   // pre-rendered JSON object body, e.g. "\"k\":1"
};

/// Ambient per-thread trace position: which request tree we are in and
/// which span is the current parent for new children. Crossing a thread
/// or process boundary means capturing this on one side and installing
/// it (TraceContextScope) on the other.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// The calling thread's current context ({0,0} when untraced).
TraceContext CurrentTraceContext();

/// RAII installer for a propagated context (worker threads, fan-out
/// lambdas, server connection handlers). Restores the previous context
/// on destruction.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// Fresh nonzero ids, unique across cooperating processes (mixes the
/// pid into the hash input).
uint64_t NewTraceId();
uint64_t NewSpanId();

class TraceRecorder {
 public:
  /// Fixed-capacity ring: once full, the oldest event is overwritten
  /// and counted in dropped() (and the process-wide
  /// `trace.dropped_spans` metric), bounding memory under pathological
  /// span rates while keeping the most recent — most useful — window.
  explicit TraceRecorder(size_t max_events = 1u << 20);

  void RecordComplete(std::string name, const char* category,
                      uint64_t ts_micros, uint64_t dur_micros,
                      uint64_t trace_id, uint64_t span_id,
                      uint64_t parent_span_id, std::string args_json);
  void RecordInstant(std::string name, const char* category,
                     std::string args_json);
  /// Counter-track sample ('C' phase): Perfetto renders successive
  /// samples of the same name as a stacked counter track. `args_json`
  /// holds the series values, e.g. "\"internal\":2,\"external\":1".
  void RecordCounter(std::string name, const char* category,
                     std::string args_json);

  /// Microseconds since this recorder was constructed (the trace clock).
  uint64_t NowMicros() const;
  /// CLOCK_REALTIME at construction, in microseconds — lets a trace
  /// assembler align events from recorders born in different processes.
  uint64_t unix_origin_micros() const { return unix_origin_micros_; }

  /// Events oldest-first.
  std::vector<TraceEvent> Events() const;
  /// Events oldest-first, removing them from the ring (the TRACE_PULL
  /// drain). dropped() keeps accumulating across drains.
  std::vector<TraceEvent> Drain();
  size_t dropped() const;

  /// {"traceEvents":[...]} — the Chrome trace_event JSON object format.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  void Record(TraceEvent event);
  std::vector<TraceEvent> SnapshotLocked() const;

  const size_t max_events_;
  const std::chrono::steady_clock::time_point start_;
  uint64_t unix_origin_micros_ = 0;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;  // ring once size() == max_events_
  size_t next_ = 0;                 // ring write cursor
  bool wrapped_ = false;
  size_t dropped_ = 0;
};

/// One process's drained events plus the metadata the assembler needs:
/// the real pid, a human label for the Perfetto process row, and the
/// wall-clock origin of the process's trace clock.
struct ProcessTrace {
  uint64_t pid = 0;
  std::string label;
  uint64_t unix_origin_micros = 0;
  uint64_t dropped_spans = 0;
  std::vector<TraceEvent> events;
};

/// Merges per-process dumps into one Perfetto-openable JSON: timestamps
/// are rebased onto a shared wall-clock axis, every process gets a
/// process_name metadata row, span ids ride in args as hex, and a
/// flow arrow ('s' → 'f') is emitted for every parent/child span pair
/// that crosses a process boundary.
std::string AssembleTrace(const std::vector<ProcessTrace>& parts);

/// Installs `recorder` (not owned) as the process-wide trace sink.
void StartTracing(TraceRecorder* recorder);
/// Detaches the current recorder (does not destroy it).
void StopTracing();
/// The active recorder, or nullptr when tracing is off.
TraceRecorder* CurrentTraceRecorder();

/// Escapes a string for embedding inside JSON quotes.
std::string JsonEscape(const std::string& text);

/// RAII complete-span: records [construction, destruction) on the
/// calling thread if tracing was on at construction. While alive it is
/// the thread's current span (children — local or remote — parent to
/// it); span-id bookkeeping also runs with no local recorder when an
/// ambient trace_id is present, so an untraced middle hop still links
/// its upstream caller to its downstream callees.
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string name,
            std::string args_json = std::string());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t trace_id() const;
  /// This span's id — what a child sent over the wire should use as its
  /// parent_span_id. 0 when the span is inert (no recorder, no context).
  uint64_t span_id() const;

 private:
  TraceRecorder* recorder_;
  bool active_ = false;
  TraceContext parent_;   // restored on destruction
  TraceContext context_;  // installed while alive
  const char* category_;
  std::string name_;
  std::string args_json_;
  uint64_t start_micros_ = 0;
};

/// One-off instant event (thread morphs, async-read submits). Tagged
/// with the calling thread's current trace context.
void TraceInstant(const char* category, std::string name,
                  std::string args_json = std::string());

/// One counter-track sample (overlap profiler gauges).
void TraceCounter(const char* category, std::string name,
                  std::string args_json);

}  // namespace opt

#endif  // OPT_UTIL_TRACE_H_
