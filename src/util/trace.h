// Thread-safe span recorder emitting Chrome trace_event JSON, so a full
// OPT run — phase-A internal load, internal/external triangulation,
// thread-morph events, async-read submit/complete, per-query service
// handling — can be opened in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
//
// Model: one process-global recorder slot. Tracing is off (and spans are
// near-free: one relaxed atomic load) until StartTracing() installs a
// recorder; instrumentation sites use the RAII TraceSpan / TraceInstant
// helpers and never check the flag themselves. StopTracing() detaches
// the recorder; the caller then serializes with ToJson()/WriteJson().
//
// Lifetime rule: stop tracing only after all traced work has finished —
// a TraceSpan captures the recorder pointer at construction (so a span
// straddling StopTracing writes into a recorder the caller still owns,
// but a span straddling the recorder's *destruction* would dangle).
// opt_server obeys this by stopping the scheduler before writing the
// trace file.
#ifndef OPT_UTIL_TRACE_H_
#define OPT_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace opt {

struct TraceEvent {
  std::string name;
  const char* category = "";
  char phase = 'X';       // 'X' complete, 'i' instant, 'C' counter sample
  uint64_t ts_micros = 0;  // since recorder construction
  uint64_t dur_micros = 0; // complete spans only
  uint32_t tid = 0;        // small per-thread id (stable within a process)
  std::string args_json;   // pre-rendered JSON object body, e.g. "\"k\":1"
};

class TraceRecorder {
 public:
  /// Events beyond `max_events` are counted in dropped() instead of
  /// stored, bounding memory under pathological span rates.
  explicit TraceRecorder(size_t max_events = 1u << 20);

  void RecordComplete(std::string name, const char* category,
                      uint64_t ts_micros, uint64_t dur_micros,
                      std::string args_json);
  void RecordInstant(std::string name, const char* category,
                     std::string args_json);
  /// Counter-track sample ('C' phase): Perfetto renders successive
  /// samples of the same name as a stacked counter track. `args_json`
  /// holds the series values, e.g. "\"internal\":2,\"external\":1".
  void RecordCounter(std::string name, const char* category,
                     std::string args_json);

  /// Microseconds since this recorder was constructed (the trace clock).
  uint64_t NowMicros() const;

  std::vector<TraceEvent> Events() const;
  size_t dropped() const;

  /// {"traceEvents":[...]} — the Chrome trace_event JSON object format.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  void Record(TraceEvent event);

  const size_t max_events_;
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  size_t dropped_ = 0;
};

/// Installs `recorder` (not owned) as the process-wide trace sink.
void StartTracing(TraceRecorder* recorder);
/// Detaches the current recorder (does not destroy it).
void StopTracing();
/// The active recorder, or nullptr when tracing is off.
TraceRecorder* CurrentTraceRecorder();

/// Escapes a string for embedding inside JSON quotes.
std::string JsonEscape(const std::string& text);

/// RAII complete-span: records [construction, destruction) on the
/// calling thread if tracing was on at construction.
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string name,
            std::string args_json = std::string());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* category_;
  std::string name_;
  std::string args_json_;
  uint64_t start_micros_ = 0;
};

/// One-off instant event (thread morphs, async-read submits).
void TraceInstant(const char* category, std::string name,
                  std::string args_json = std::string());

/// One counter-track sample (overlap profiler gauges).
void TraceCounter(const char* category, std::string name,
                  std::string args_json);

}  // namespace opt

#endif  // OPT_UTIL_TRACE_H_
