// Status and Result<T>: exception-free error propagation across module
// boundaries, in the style of LevelDB/RocksDB.
#ifndef OPT_UTIL_STATUS_H_
#define OPT_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace opt {

/// Error taxonomy for the whole library. Codes are stable and coarse;
/// the message carries the detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kNotSupported = 8,
  kAborted = 9,
  /// Transient service-level degradation: the operation failed for a
  /// reason that is expected to heal (storage faults that exhausted
  /// their retry budget, a wedged page load, an overloaded backend).
  /// Callers may retry the whole request; partial results may accompany
  /// it (see QueryResult::degraded).
  kUnavailable = 10,
};

/// Returns a short human-readable name for `code` ("OK", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// A Status is either OK (cheap, no allocation) or an error code plus a
/// message. Functions that can fail return Status (or Result<T>).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is a value or an error Status. Access to the value of a
/// non-OK result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  T& value() {
    assert(ok());
    return std::get<T>(value_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace opt

/// Propagates a non-OK Status to the caller.
#define OPT_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::opt::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define OPT_ASSIGN_OR_RETURN(lhs, expr)      \
  OPT_ASSIGN_OR_RETURN_IMPL_(                \
      OPT_STATUS_CONCAT_(_res, __LINE__), lhs, expr)

#define OPT_ASSIGN_OR_RETURN_IMPL_(res, lhs, expr) \
  auto res = (expr);                               \
  if (!res.ok()) return res.status();              \
  lhs = std::move(res.value())

#define OPT_STATUS_CONCAT_INNER_(a, b) a##b
#define OPT_STATUS_CONCAT_(a, b) OPT_STATUS_CONCAT_INNER_(a, b)

#endif  // OPT_UTIL_STATUS_H_
