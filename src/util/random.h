// Deterministic pseudo-random generators used by the synthetic graph
// generators and property tests. Seeded explicitly everywhere so every
// experiment is reproducible bit-for-bit.
#ifndef OPT_UTIL_RANDOM_H_
#define OPT_UTIL_RANDOM_H_

#include <cstdint>

namespace opt {

/// xoshiro256** — fast, high-quality 64-bit PRNG.
class Random64 {
 public:
  explicit Random64(uint64_t seed) {
    // SplitMix64 seeding to spread a small seed across the state.
    uint64_t x = seed + 0x9E3779B97F4A7C15ULL;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace opt

#endif  // OPT_UTIL_RANDOM_H_
