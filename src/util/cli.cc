#include "util/cli.h"

#include <cstdlib>

namespace opt {

Result<CommandLine> CommandLine::Parse(int argc, char** argv) {
  CommandLine cl;
  cl.program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      cl.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      cl.flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      cl.flags_[arg] = argv[++i];
    } else {
      cl.flags_[arg] = "true";
    }
  }
  return cl;
}

bool CommandLine::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int64_t CommandLine::GetInt(const std::string& name, int64_t def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Result<std::string> CommandLine::GetChoice(
    const std::string& name, const std::vector<std::string>& choices,
    const std::string& def) const {
  auto it = flags_.find(name);
  const std::string value = it == flags_.end() ? def : it->second;
  for (const std::string& choice : choices) {
    if (value == choice) return value;
  }
  std::string allowed;
  for (const std::string& choice : choices) {
    if (!allowed.empty()) allowed += "|";
    allowed += choice;
  }
  return Status::InvalidArgument("--" + name + "=" + value +
                                 " (expected one of " + allowed + ")");
}

}  // namespace opt
