// An unbounded multi-producer multi-consumer blocking queue. Used as the
// submission and completion queues of the asynchronous I/O engine.
#ifndef OPT_UTIL_BLOCKING_QUEUE_H_
#define OPT_UTIL_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace opt {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueues an item. Returns false if the queue has been closed.
  bool Push(T item) {
    // Notify while still holding the lock: a consumer woken by this
    // push may be the queue's last user and destroy it immediately
    // after popping, and it cannot return from Pop*/wait until this
    // thread has left the condition variable and released the mutex.
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns nullopt only after Close() once the queue is empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks up to `micros` microseconds for an item; nullopt on timeout
  /// or when closed and drained.
  std::optional<T> PopFor(int64_t micros) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::microseconds(micros),
                 [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop; nullopt if currently empty.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: Push() fails afterwards, and Pop() returns nullopt
  /// once remaining items drain.
  void Close() {
    // Under the lock for the same lifetime reason as Push.
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace opt

#endif  // OPT_UTIL_BLOCKING_QUEUE_H_
