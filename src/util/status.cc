#include "util/status.h"

namespace opt {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace opt
