// Power-of-two bucketed histogram for degree distributions and latency
// profiles reported by the harness and the metrics registry.
#ifndef OPT_UTIL_HISTOGRAM_H_
#define OPT_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace opt {

/// Plain-value copy of a histogram's state: safe to ship across threads,
/// merge with other snapshots, and query for percentiles long after the
/// source histogram has moved on. This is the unit the metrics registry
/// exposes and the service layer serializes over the wire.
struct HistogramSnapshot {
  /// Bucket b covers [2^b, 2^(b+1)), except bucket 0 which covers {0, 1}
  /// and bucket 63 which absorbs everything >= 2^63 (the overflow bucket).
  static constexpr int kNumBuckets = 64;

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;

  void Merge(const HistogramSnapshot& other);

  double Mean() const;
  /// Approximate p-quantile (q in [0,1]): nearest-rank bucket selection
  /// with uniform-density interpolation inside the bucket, clamped to
  /// [min, max]. Rank 1 reports min exactly and rank `count` reports max
  /// exactly, so small-N snapshots (N=1,2) never leak bucket boundaries
  /// into p95/p99.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
};

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  /// Approximate p-quantile (q in [0,1]); see HistogramSnapshot.
  double Quantile(double q) const;

  /// Value-copy of the current state for merging and percentile queries.
  HistogramSnapshot Snapshot() const;

  /// Multi-line ASCII rendering: one row per non-empty bucket with a bar.
  std::string ToString() const;

  /// Number of power-of-two buckets (bucket b covers [2^b, 2^(b+1)) except
  /// bucket 0 which covers {0, 1}).
  static constexpr int kNumBuckets = HistogramSnapshot::kNumBuckets;
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace opt

#endif  // OPT_UTIL_HISTOGRAM_H_
