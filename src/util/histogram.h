// Power-of-two bucketed histogram for degree distributions and latency
// profiles reported by the harness.
#ifndef OPT_UTIL_HISTOGRAM_H_
#define OPT_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opt {

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  /// Approximate p-quantile (q in [0,1]) assuming uniform density within a
  /// bucket.
  double Quantile(double q) const;

  /// Multi-line ASCII rendering: one row per non-empty bucket with a bar.
  std::string ToString() const;

  /// Number of power-of-two buckets (bucket b covers [2^b, 2^(b+1)) except
  /// bucket 0 which covers {0, 1}).
  static constexpr int kNumBuckets = 64;
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace opt

#endif  // OPT_UTIL_HISTOGRAM_H_
