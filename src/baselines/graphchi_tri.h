// GraphChi-Tri ([23] in the paper): the triangle-counting application of
// the GraphChi out-of-core engine. Behavioral reproduction: interval
// batches with a load-update-store alternation (an extra full scan per
// iteration), remaining-edge rewriting every iteration, and parallelism
// limited to the batch-internal portion (GraphChi's enforced
// sequential-order processing for same-interval edges and synchronous
// incoming-edge I/O keep the streaming portion serial), which caps its
// Amdahl parallel fraction well below OPT's (Table 5).
#ifndef OPT_BASELINES_GRAPHCHI_TRI_H_
#define OPT_BASELINES_GRAPHCHI_TRI_H_

#include <cstdint>
#include <string>

#include "core/triangle_sink.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

struct GraphChiTriOptions {
  uint32_t memory_pages = 0;
  uint32_t num_threads = 1;  // "execthreads" in GraphChi
  std::string temp_dir = "/tmp";
  bool validate_pages = true;
};

struct GraphChiTriStats {
  uint32_t iterations = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  /// Amdahl decomposition: only `parallel_seconds` scales with threads.
  double parallel_seconds = 0;
  double serial_seconds = 0;
  double elapsed_seconds = 0;

  double ParallelFraction() const {
    const double total = parallel_seconds + serial_seconds;
    return total <= 0 ? 0.0 : parallel_seconds / total;
  }
};

Status RunGraphChiTri(GraphStore* store, Env* env, TriangleSink* sink,
                      const GraphChiTriOptions& options,
                      GraphChiTriStats* stats = nullptr);

}  // namespace opt

#endif  // OPT_BASELINES_GRAPHCHI_TRI_H_
