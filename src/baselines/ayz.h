// Alon–Yuster–Zwick triangle counting ([2] in the paper): split vertices
// into a high-degree core and a low-degree fringe; count core triangles
// with (bit-packed) matrix multiplication and the rest with the ordered
// vertex-iterator. Counting only — AYZ does not list triangles, exactly
// as the paper notes when excluding it from listing experiments.
#ifndef OPT_BASELINES_AYZ_H_
#define OPT_BASELINES_AYZ_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace opt {

struct AyzStats {
  uint32_t high_degree_vertices = 0;
  uint64_t core_triangles = 0;     // all three vertices high-degree
  uint64_t fringe_triangles = 0;   // at least one low-degree vertex
  double matrix_seconds = 0;
  double iterator_seconds = 0;
};

/// Counts triangles. `degree_threshold` = 0 picks the theory-optimal
/// |E|^((ω-1)/(ω+1)) split automatically.
uint64_t AyzTriangleCount(const CSRGraph& g, uint32_t degree_threshold = 0,
                          AyzStats* stats = nullptr);

}  // namespace opt

#endif  // OPT_BASELINES_AYZ_H_
