#include "baselines/shrink_loop.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/iterator_model.h"
#include "core/page_range_view.h"
#include "storage/record_scanner.h"
#include "util/aligned_buffer.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace opt {
namespace internal {

namespace {

/// Streams `store` and rebuilds the remainder graph containing only
/// vertices > v_hi and edges among them.
Status RewriteRemainder(const GraphStore& store, Env* env,
                        const std::string& path, VertexId v_hi,
                        uint64_t* pages_read, uint64_t* pages_written,
                        bool validate, bool* empty) {
  const VertexId n = store.num_vertices();
  std::vector<uint64_t> offsets(n + 1, 0);
  std::vector<VertexId> adjacency;
  uint64_t kept = 0;
  OPT_RETURN_IF_ERROR(ScanRecords(
      store, 0, store.num_pages() - 1,
      [&](VertexId v, std::span<const VertexId> neighbors) {
        if (v <= v_hi) return;
        auto it = std::upper_bound(neighbors.begin(), neighbors.end(), v_hi);
        const auto count = static_cast<uint64_t>(neighbors.end() - it);
        offsets[v + 1] = count;
        adjacency.insert(adjacency.end(), it, neighbors.end());
        kept += count;
      },
      pages_read, validate));
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  *empty = (kept == 0);
  CSRGraph remainder(std::move(offsets), std::move(adjacency));
  GraphStoreOptions gopts;
  gopts.page_size = store.page_size();
  OPT_RETURN_IF_ERROR(GraphStore::Create(remainder, env, path, gopts));
  // Account the write volume.
  OPT_ASSIGN_OR_RETURN(auto reopened, GraphStore::Open(env, path));
  *pages_written += reopened->num_pages();
  return Status::OK();
}

}  // namespace

Status RunShrinkLoop(GraphStore* input, Env* env, TriangleSink* sink,
                     const ShrinkLoopOptions& options,
                     ShrinkLoopStats* stats) {
  if (options.memory_pages == 0) {
    return Status::InvalidArgument("memory_pages must be positive");
  }
  if (options.memory_pages < input->MaxRecordPages()) {
    return Status::ResourceExhausted(
        "memory buffer smaller than the largest adjacency list");
  }
  Stopwatch total_watch;
  ShrinkLoopStats local;

  const VertexId n = input->num_vertices();
  if (n == 0) {
    if (stats != nullptr) *stats = local;
    return sink->Finish();
  }
  const uint32_t page_size = input->page_size();
  EdgeIteratorModel model;

  // Working-graph double buffering.
  const std::string work_a =
      options.temp_dir + "/" + options.temp_prefix + "_a";
  const std::string work_b =
      options.temp_dir + "/" + options.temp_prefix + "_b";
  GraphStore* current = input;
  std::unique_ptr<GraphStore> owned;
  bool use_a = true;

  VertexId v_start = 0;
  while (v_start < n) {
    OPT_ASSIGN_OR_RETURN(
        const IterationPlan plan,
        current->PlanIteration(v_start, options.memory_pages));

    // Load the batch (full adjacency lists of [v_lo, v_hi]).
    const uint32_t pages = plan.num_pages();
    AlignedBuffer arena(static_cast<size_t>(pages) * page_size);
    std::vector<const char*> page_data(pages);
    for (uint32_t i = 0; i < pages; ++i) {
      char* dst = arena.data() + static_cast<size_t>(i) * page_size;
      OPT_RETURN_IF_ERROR(
          current->file()->ReadPage(plan.pid_lo + i, dst));
      ++local.pages_read;
      if (options.validate_pages) {
        OPT_RETURN_IF_ERROR(
            PageView(dst, page_size).Validate(plan.pid_lo + i));
      }
      page_data[i] = dst;
    }
    PageRangeView view;
    OPT_RETURN_IF_ERROR(view.Build(*current, plan.pid_lo, page_data));

    // (i) Triangles whose two lowest vertices are both in the batch —
    // parallelizable (GraphChi-Tri parallelizes exactly this portion).
    Stopwatch parallel_watch;
    ParallelFor(plan.v_lo, static_cast<size_t>(plan.v_hi) + 1,
                options.num_threads, [&](size_t u) {
                  ModelScratch scratch;
                  model.InternalTriangles(view, plan,
                                          static_cast<VertexId>(u), sink,
                                          &scratch);
                });
    local.parallel_seconds += parallel_watch.ElapsedSeconds();

    // (ii) Stream the remainder: triangles with min vertex in the batch
    // and middle vertex outside. GraphChi's enforced sequential order
    // keeps this portion serial.
    Stopwatch serial_watch;
    if (plan.pid_hi < current->num_pages() - 1 ||
        plan.v_hi < current->num_vertices() - 1) {
      ModelScratch scratch;
      OPT_RETURN_IF_ERROR(ScanRecords(
          *current, plan.pid_hi, current->num_pages() - 1,
          [&](VertexId x, std::span<const VertexId> neighbors) {
            if (x <= plan.v_hi) return;
            AdjacencyRef adj;
            adj.all = neighbors;
            adj.succ_begin = static_cast<uint32_t>(
                std::upper_bound(neighbors.begin(), neighbors.end(), x) -
                neighbors.begin());
            model.ExternalTriangles(view, plan, x, adj, sink, &scratch);
          },
          &local.pages_read, options.validate_pages));
    }

    // GraphChi's odd/even load-update-store alternation: one extra full
    // scan of the working graph per iteration (I/O cost only).
    if (options.double_scan) {
      AlignedBuffer scratch_page(page_size);
      for (uint32_t pid = 0; pid < current->num_pages(); ++pid) {
        OPT_RETURN_IF_ERROR(
            current->file()->ReadPage(pid, scratch_page.data()));
        ++local.pages_read;
      }
    }

    // (iii) Remove the batch and rewrite the shrunken remainder.
    const bool last_batch = plan.v_hi >= n - 1;
    if (!last_batch) {
      const std::string& next_path = use_a ? work_a : work_b;
      bool empty = false;
      OPT_RETURN_IF_ERROR(RewriteRemainder(
          *current, env, next_path, plan.v_hi, &local.pages_read,
          &local.pages_written, options.validate_pages, &empty));
      OPT_ASSIGN_OR_RETURN(owned, GraphStore::Open(env, next_path));
      current = owned.get();
      use_a = !use_a;
      if (empty) {
        local.serial_seconds += serial_watch.ElapsedSeconds();
        ++local.iterations;
        break;  // "until no edges remain"
      }
    }
    local.serial_seconds += serial_watch.ElapsedSeconds();
    ++local.iterations;
    v_start = plan.v_hi + 1;
  }

  // Clean up temp files.
  for (const std::string& base : {work_a, work_b}) {
    (void)env->DeleteFile(GraphStore::PagesPath(base));
    (void)env->DeleteFile(GraphStore::MetaPath(base));
  }
  OPT_RETURN_IF_ERROR(sink->Finish());
  local.elapsed_seconds = total_watch.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace internal
}  // namespace opt
