#include "baselines/graphchi_tri.h"

#include "baselines/shrink_loop.h"
#include "util/stopwatch.h"

namespace opt {

Status RunGraphChiTri(GraphStore* store, Env* env, TriangleSink* sink,
                      const GraphChiTriOptions& options,
                      GraphChiTriStats* stats) {
  Stopwatch watch;
  internal::ShrinkLoopOptions loop_options;
  loop_options.memory_pages = options.memory_pages;
  loop_options.num_threads = options.num_threads;
  loop_options.double_scan = true;  // odd/even load-update-store passes
  loop_options.temp_dir = options.temp_dir;
  loop_options.temp_prefix = "graphchi";
  loop_options.validate_pages = options.validate_pages;

  internal::ShrinkLoopStats loop_stats;
  OPT_RETURN_IF_ERROR(
      internal::RunShrinkLoop(store, env, sink, loop_options, &loop_stats));
  if (stats != nullptr) {
    stats->iterations = loop_stats.iterations;
    stats->pages_read = loop_stats.pages_read;
    stats->pages_written = loop_stats.pages_written;
    stats->parallel_seconds = loop_stats.parallel_seconds;
    stats->serial_seconds = loop_stats.serial_seconds;
    stats->elapsed_seconds = watch.ElapsedSeconds();
  }
  return Status::OK();
}

}  // namespace opt
