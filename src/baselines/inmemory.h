// In-memory triangulation baselines (paper §2.2): VertexIterator≻
// (Algorithm 1), EdgeIterator≻ (Algorithm 2), and a brute-force oracle
// for tests. These assume the whole graph fits in memory.
#ifndef OPT_BASELINES_INMEMORY_H_
#define OPT_BASELINES_INMEMORY_H_

#include <cstdint>

#include "core/triangle_sink.h"
#include "graph/csr_graph.h"

namespace opt {

/// EdgeIterator≻ (Algorithm 2): for each edge (u, v), emits
/// n_succ(u) ∩ n_succ(v). O(α|E|) with the ordered lists.
void EdgeIteratorInMemory(const CSRGraph& g, TriangleSink* sink,
                          uint32_t num_threads = 1);

/// VertexIterator≻ (Algorithm 1): for each vertex u, checks each pair
/// (v, w) ∈ n_succ(u) × n_succ(u) with id(v) < id(w) against E.
void VertexIteratorInMemory(const CSRGraph& g, TriangleSink* sink,
                            uint32_t num_threads = 1);

/// Latapy's compact-forward algorithm ([24] in the paper): processes
/// vertices in id order, maintaining for each vertex the list A(v) of
/// already-processed lower-id neighbors; triangles fall out of
/// A(s) ∩ A(t) for each forward edge (s, t). Same O(α|E|) bound as the
/// ordered edge-iterator, with better locality on some inputs.
void CompactForwardInMemory(const CSRGraph& g, TriangleSink* sink);

/// Brute force over all vertex triples (tests only; O(n^3) on dense
/// bitsets, tolerable for n up to a few thousand).
uint64_t BruteForceTriangleCount(const CSRGraph& g);

}  // namespace opt

#endif  // OPT_BASELINES_INMEMORY_H_
