#include "baselines/mgt.h"

#include <memory>
#include <vector>

#include "util/aligned_buffer.h"

#include "core/iterator_model.h"
#include "core/page_range_view.h"
#include "storage/record_scanner.h"
#include "util/stopwatch.h"

namespace opt {

Status RunMgt(GraphStore* store, TriangleSink* sink,
              const MgtOptions& options, MgtStats* stats) {
  if (options.memory_pages == 0) {
    return Status::InvalidArgument("memory_pages must be positive");
  }
  if (options.memory_pages < store->MaxRecordPages()) {
    return Status::ResourceExhausted(
        "memory buffer smaller than the largest adjacency list");
  }
  Stopwatch watch;
  MgtStats local;
  const VertexId n = store->num_vertices();
  if (n == 0) {
    if (stats != nullptr) *stats = local;
    return sink->Finish();
  }

  const uint32_t page_size = store->page_size();
  VertexIteratorModel model;

  VertexId v_start = 0;
  while (v_start < n) {
    OPT_ASSIGN_OR_RETURN(
        const IterationPlan plan,
        store->PlanIteration(v_start, options.memory_pages));

    // Pin one buffer-load of adjacency lists (synchronous reads).
    const uint32_t pages = plan.num_pages();
    AlignedBuffer arena(static_cast<size_t>(pages) * page_size);
    std::vector<const char*> page_data(pages);
    for (uint32_t i = 0; i < pages; ++i) {
      char* dst = arena.data() + static_cast<size_t>(i) * page_size;
      OPT_RETURN_IF_ERROR(store->file()->ReadPage(plan.pid_lo + i, dst));
      ++local.pages_read;
      if (options.validate_pages) {
        OPT_RETURN_IF_ERROR(
            PageView(dst, page_size).Validate(plan.pid_lo + i));
      }
      page_data[i] = dst;
    }
    PageRangeView view;
    OPT_RETURN_IF_ERROR(view.Build(*store, plan.pid_lo, page_data));

    // Re-scan the entire graph; every record is an external candidate.
    ModelScratch scratch;
    OPT_RETURN_IF_ERROR(ScanRecords(
        *store, 0, store->num_pages() - 1,
        [&](VertexId u, std::span<const VertexId> neighbors) {
          AdjacencyRef adj;
          adj.all = neighbors;
          adj.succ_begin = static_cast<uint32_t>(
              std::upper_bound(neighbors.begin(), neighbors.end(), u) -
              neighbors.begin());
          model.ExternalTriangles(view, plan, u, adj, sink, &scratch);
        },
        &local.pages_read, options.validate_pages));

    ++local.iterations;
    v_start = plan.v_hi + 1;
  }
  OPT_RETURN_IF_ERROR(sink->Finish());
  local.elapsed_seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace opt
