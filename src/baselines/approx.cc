#include "baselines/approx.h"

#include <algorithm>
#include <vector>

#include <unordered_map>

#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "graph/builder.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace opt {

ApproxResult DoulionEstimate(const CSRGraph& g, double keep_probability,
                             uint64_t seed) {
  Stopwatch watch;
  Random64 rng(seed);
  std::vector<Edge> kept;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.Successors(u)) {
      if (rng.Bernoulli(keep_probability)) kept.emplace_back(u, v);
    }
  }
  ApproxResult result;
  result.work = kept.size();
  CSRGraph sparse = GraphBuilder::FromEdges(std::move(kept));
  CountingSink sink;
  EdgeIteratorInMemory(sparse, &sink);
  const double p3 =
      keep_probability * keep_probability * keep_probability;
  result.estimate = p3 > 0 ? static_cast<double>(sink.count()) / p3 : 0;
  result.elapsed_seconds = watch.ElapsedSeconds();
  return result;
}

ApproxResult WedgeSamplingEstimate(const CSRGraph& g, uint64_t num_samples,
                                   uint64_t seed) {
  Stopwatch watch;
  ApproxResult result;
  // Cumulative wedge counts for uniform wedge sampling.
  const VertexId n = g.num_vertices();
  std::vector<uint64_t> cumulative(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    const uint64_t d = g.degree(v);
    cumulative[v + 1] = cumulative[v] + d * (d - 1) / 2;
  }
  const uint64_t total_wedges = cumulative[n];
  if (total_wedges == 0) {
    result.elapsed_seconds = watch.ElapsedSeconds();
    return result;
  }
  Random64 rng(seed);
  uint64_t closed = 0;
  for (uint64_t s = 0; s < num_samples; ++s) {
    // Pick a wedge uniformly: a center weighted by its wedge count,
    // then a uniform neighbor pair.
    const uint64_t target = rng.Uniform(total_wedges);
    VertexId lo = 0, hi = n;
    while (lo + 1 < hi) {
      const VertexId mid = lo + (hi - lo) / 2;
      if (cumulative[mid] <= target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const VertexId center = lo;
    const auto nbrs = g.Neighbors(center);
    const uint64_t d = nbrs.size();
    uint64_t i = rng.Uniform(d);
    uint64_t j = rng.Uniform(d - 1);
    if (j >= i) ++j;
    if (g.HasEdge(nbrs[static_cast<size_t>(i)],
                  nbrs[static_cast<size_t>(j)])) {
      ++closed;
    }
  }
  result.work = num_samples;
  const double closed_fraction =
      static_cast<double>(closed) / static_cast<double>(num_samples);
  // Every triangle closes exactly three wedges.
  result.estimate =
      closed_fraction * static_cast<double>(total_wedges) / 3.0;
  result.elapsed_seconds = watch.ElapsedSeconds();
  return result;
}

ApproxResult StreamingReservoirEstimate(const CSRGraph& g,
                                        uint64_t reservoir_edges,
                                        uint64_t seed) {
  Stopwatch watch;
  ApproxResult result;
  // Materialize and shuffle the edge stream (the adversarial-order
  // guarantee of reservoir sampling does not need this, but a fixed CSR
  // order would correlate with vertex ids).
  std::vector<Edge> stream;
  stream.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.Successors(u)) stream.emplace_back(u, v);
  }
  Random64 rng(seed);
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.Uniform(i)]);
  }

  const uint64_t m = std::max<uint64_t>(3, reservoir_edges);
  std::vector<Edge> reservoir;
  reservoir.reserve(static_cast<size_t>(m));
  std::unordered_map<VertexId, std::vector<VertexId>> adjacency;

  auto add_edge = [&](const Edge& e) {
    adjacency[e.first].push_back(e.second);
    adjacency[e.second].push_back(e.first);
  };
  auto drop_edge = [&](const Edge& e) {
    auto erase_one = [&](VertexId from, VertexId what) {
      auto& list = adjacency[from];
      list.erase(std::find(list.begin(), list.end(), what));
    };
    erase_one(e.first, e.second);
    erase_one(e.second, e.first);
  };
  auto common_in_reservoir = [&](VertexId u, VertexId v) -> uint64_t {
    auto iu = adjacency.find(u);
    auto iv = adjacency.find(v);
    if (iu == adjacency.end() || iv == adjacency.end()) return 0;
    const auto& small =
        iu->second.size() <= iv->second.size() ? iu->second : iv->second;
    const auto& large_owner =
        iu->second.size() <= iv->second.size() ? iv->second : iu->second;
    uint64_t count = 0;
    for (VertexId w : small) {
      if (std::find(large_owner.begin(), large_owner.end(), w) !=
          large_owner.end()) {
        ++count;
      }
    }
    return count;
  };

  double tau = 0;
  uint64_t t = 0;
  for (const Edge& e : stream) {
    ++t;
    // TRIEST-IMPR: count before the sampling decision, weighted by the
    // inverse probability that both wedge edges are in the sample.
    const double eta =
        t <= m ? 1.0
               : std::max(1.0, (static_cast<double>(t - 1) *
                                static_cast<double>(t - 2)) /
                                   (static_cast<double>(m) *
                                    static_cast<double>(m - 1)));
    tau += eta * static_cast<double>(common_in_reservoir(e.first, e.second));
    if (reservoir.size() < m) {
      reservoir.push_back(e);
      add_edge(e);
    } else if (rng.NextDouble() <
               static_cast<double>(m) / static_cast<double>(t)) {
      const auto victim = static_cast<size_t>(rng.Uniform(m));
      drop_edge(reservoir[victim]);
      reservoir[victim] = e;
      add_edge(e);
    }
  }
  result.estimate = tau;
  result.work = std::min<uint64_t>(m, stream.size());
  result.elapsed_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace opt
