// MGT (Hu, Tao, Chung — "Massive graph triangulation", SIGMOD'13), the
// strongest serial disk-based competitor. Per paper §3.5 it is the OPT
// instance with (1) no internal triangulation, (2) every vertex an
// external candidate, (3) the vertex-iterator external impl, and (4)
// synchronous I/O: each iteration pins one buffer-load of adjacency
// lists and re-scans the whole graph, so its I/O cost is
// (1 + ceil(P/m)) * cP(G) (Eq. 7).
#ifndef OPT_BASELINES_MGT_H_
#define OPT_BASELINES_MGT_H_

#include <cstdint>

#include "core/triangle_sink.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

struct MgtOptions {
  /// Memory budget in pages (the paper's m).
  uint32_t memory_pages = 0;
  bool validate_pages = true;
};

struct MgtStats {
  uint32_t iterations = 0;
  uint64_t pages_read = 0;
  double elapsed_seconds = 0;
};

Status RunMgt(GraphStore* store, TriangleSink* sink,
              const MgtOptions& options, MgtStats* stats = nullptr);

}  // namespace opt

#endif  // OPT_BASELINES_MGT_H_
