#include "baselines/inmemory.h"

#include <algorithm>
#include <vector>

#include "graph/intersect.h"
#include "util/thread_pool.h"

namespace opt {

void EdgeIteratorInMemory(const CSRGraph& g, TriangleSink* sink,
                          uint32_t num_threads) {
  ParallelFor(0, g.num_vertices(), num_threads, [&](size_t u_index) {
    const auto u = static_cast<VertexId>(u_index);
    std::vector<VertexId> ws;
    const auto succ_u = g.Successors(u);
    for (VertexId v : succ_u) {
      ws.clear();
      Intersect(succ_u, g.Successors(v), &ws);
      if (!ws.empty()) sink->Emit(u, v, ws);
    }
  });
}

void VertexIteratorInMemory(const CSRGraph& g, TriangleSink* sink,
                            uint32_t num_threads) {
  ParallelFor(0, g.num_vertices(), num_threads, [&](size_t u_index) {
    const auto u = static_cast<VertexId>(u_index);
    std::vector<VertexId> ws;
    const auto succ_u = g.Successors(u);
    for (size_t i = 0; i < succ_u.size(); ++i) {
      const VertexId v = succ_u[i];
      ws.clear();
      for (size_t j = i + 1; j < succ_u.size(); ++j) {
        // (v, w) ∈ E via binary search on the smaller adjacency list.
        if (g.HasEdge(v, succ_u[j])) ws.push_back(succ_u[j]);
      }
      if (!ws.empty()) sink->Emit(u, v, ws);
    }
  });
}

void CompactForwardInMemory(const CSRGraph& g, TriangleSink* sink) {
  const VertexId n = g.num_vertices();
  // A(v): lower-id neighbors of v already visited by the outer loop,
  // in ascending order (appended in outer-loop order).
  std::vector<std::vector<VertexId>> a_lists(n);
  std::vector<VertexId> common;
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t : g.Successors(s)) {
      common.clear();
      IntersectMerge(a_lists[s], a_lists[t], &common);
      for (VertexId w : common) {
        // w < s < t: canonical orientation.
        const VertexId tail[1] = {t};
        sink->Emit(w, s, tail);
      }
      a_lists[t].push_back(s);
    }
  }
}

uint64_t BruteForceTriangleCount(const CSRGraph& g) {
  const VertexId n = g.num_vertices();
  uint64_t count = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (!g.HasEdge(u, v)) continue;
      for (VertexId w = v + 1; w < n; ++w) {
        if (g.HasEdge(u, w) && g.HasEdge(v, w)) ++count;
      }
    }
  }
  return count;
}

}  // namespace opt
