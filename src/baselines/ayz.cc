#include "baselines/ayz.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "util/stopwatch.h"

namespace opt {

namespace {
constexpr double kOmega = 2.807;  // Strassen exponent, as in the paper
}

uint64_t AyzTriangleCount(const CSRGraph& g, uint32_t degree_threshold,
                          AyzStats* stats) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0;

  if (degree_threshold == 0) {
    // Theory split: Δ = m^((ω-1)/(ω+1)).
    const double exponent = (kOmega - 1.0) / (kOmega + 1.0);
    degree_threshold = std::max<uint32_t>(
        2, static_cast<uint32_t>(
               std::pow(static_cast<double>(g.num_edges()), exponent)));
  }
  // Keep the dense core matrix bounded (h^2 bits).
  constexpr uint32_t kMaxCore = 1u << 15;

  std::vector<uint8_t> is_high(n, 0);
  std::vector<VertexId> high;
  for (VertexId v = 0; v < n; ++v) {
    if (g.degree(v) >= degree_threshold) {
      is_high[v] = 1;
      high.push_back(v);
    }
  }
  if (high.size() > kMaxCore) {
    // Raise the threshold so the core fits.
    std::vector<uint32_t> degrees;
    degrees.reserve(high.size());
    for (VertexId v : high) degrees.push_back(g.degree(v));
    std::nth_element(degrees.begin(), degrees.end() - kMaxCore,
                     degrees.end());
    degree_threshold = degrees[degrees.size() - kMaxCore] + 1;
    high.clear();
    std::fill(is_high.begin(), is_high.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (g.degree(v) >= degree_threshold) {
        is_high[v] = 1;
        high.push_back(v);
      }
    }
  }

  // --- Step 1: core triangles via bit-packed Boolean matrix product. ---
  Stopwatch matrix_watch;
  const uint32_t h = static_cast<uint32_t>(high.size());
  const uint32_t words = (h + 63) / 64;
  std::vector<VertexId> dense_id(n, kInvalidVertex);
  for (uint32_t i = 0; i < h; ++i) dense_id[high[i]] = i;
  std::vector<uint64_t> rows(static_cast<size_t>(h) * words, 0);
  for (uint32_t i = 0; i < h; ++i) {
    for (VertexId nbr : g.Neighbors(high[i])) {
      if (is_high[nbr]) {
        const uint32_t j = dense_id[nbr];
        rows[static_cast<size_t>(i) * words + j / 64] |= 1ULL << (j % 64);
      }
    }
  }
  uint64_t core = 0;
  for (uint32_t i = 0; i < h; ++i) {
    const uint64_t* row_i = rows.data() + static_cast<size_t>(i) * words;
    for (uint32_t j = i + 1; j < h; ++j) {
      if ((row_i[j / 64] >> (j % 64) & 1) == 0) continue;
      const uint64_t* row_j = rows.data() + static_cast<size_t>(j) * words;
      // Count common neighbors k > j (ordering constraint).
      uint64_t pairs = 0;
      const uint32_t first_word = (j + 1) / 64;
      for (uint32_t wixd = first_word; wixd < words; ++wixd) {
        uint64_t word = row_i[wixd] & row_j[wixd];
        if (wixd == first_word && (j + 1) % 64 != 0) {
          word &= ~0ULL << ((j + 1) % 64);
        }
        pairs += static_cast<uint64_t>(std::popcount(word));
      }
      core += pairs;
    }
  }
  const double matrix_seconds = matrix_watch.ElapsedSeconds();

  // --- Step 2: triangles with at least one low-degree vertex, counted
  // once at their minimum-id low vertex (the ordering-constraint
  // improvement described in §5.3). ---
  Stopwatch iter_watch;
  uint64_t fringe = 0;
  for (VertexId u = 0; u < n; ++u) {
    if (is_high[u]) continue;
    const auto nu = g.Neighbors(u);
    for (size_t i = 0; i < nu.size(); ++i) {
      const VertexId v = nu[i];
      if (!is_high[v] && v < u) continue;  // a smaller low vertex owns it
      for (size_t j = 0; j < nu.size(); ++j) {
        const VertexId w = nu[j];
        if (w <= v) continue;
        if (!is_high[w] && w < u) continue;
        if (g.HasEdge(v, w)) ++fringe;
      }
    }
  }
  const double iterator_seconds = iter_watch.ElapsedSeconds();

  if (stats != nullptr) {
    stats->high_degree_vertices = h;
    stats->core_triangles = core;
    stats->fringe_triangles = fringe;
    stats->matrix_seconds = matrix_seconds;
    stats->iterator_seconds = iterator_seconds;
  }
  return core + fringe;
}

}  // namespace opt
