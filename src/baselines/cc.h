// Chu–Cheng-style iterative disk-based triangulation (KDD'11; [12] in
// the paper). Each iteration (a) loads a batch of the lowest remaining
// vertex ids with their full adjacency lists, (b) lists every triangle
// whose minimum vertex is in the batch (batch-internal edge-iterator
// plus a streaming pass over the remainder), then (c) REMOVES the batch
// vertices and rewrites the shrunken remainder graph to disk. The
// read-the-graph-plus-write-the-remainder I/O per iteration is what puts
// this family in the paper's "slow group" (§5.5).
//
// CC-Seq batches in the store's id order; CC-DS relabels by descending
// degree first (a stand-in for Chu–Cheng's dominating-set partitioning
// heuristic), so dense hubs leave the working graph early.
#ifndef OPT_BASELINES_CC_H_
#define OPT_BASELINES_CC_H_

#include <cstdint>
#include <string>

#include "core/triangle_sink.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

struct CcOptions {
  /// Memory budget in pages for the batch area.
  uint32_t memory_pages = 0;
  /// Directory for the shrinking working-graph files; must be writable.
  std::string temp_dir = "/tmp";
  /// True = CC-DS (descending-degree relabel before partitioning);
  /// false = CC-Seq.
  bool dominating_set_order = false;
  bool validate_pages = true;
};

struct CcStats {
  uint32_t iterations = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  double elapsed_seconds = 0;
};

Status RunChuCheng(GraphStore* store, Env* env, TriangleSink* sink,
                   const CcOptions& options, CcStats* stats = nullptr);

}  // namespace opt

#endif  // OPT_BASELINES_CC_H_
