// Shared engine for the "slow group" baselines (CC-Seq, CC-DS,
// GraphChi-Tri): iteratively load a batch, list every triangle whose
// minimum vertex is in the batch, then rewrite the shrunken remainder
// graph to disk. Parameterized by batch parallelism and by an extra
// emulated load-update-store scan (GraphChi's odd/even iterations).
#ifndef OPT_BASELINES_SHRINK_LOOP_H_
#define OPT_BASELINES_SHRINK_LOOP_H_

#include <cstdint>
#include <string>

#include "core/triangle_sink.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {
namespace internal {

struct ShrinkLoopOptions {
  uint32_t memory_pages = 0;
  /// Threads for the batch-internal (parallelizable) portion.
  uint32_t num_threads = 1;
  /// Adds one extra full scan per iteration (GraphChi's separate
  /// load/update passes).
  bool double_scan = false;
  std::string temp_dir = "/tmp";
  /// Unique prefix for this run's temp files.
  std::string temp_prefix = "shrink";
  bool validate_pages = true;
};

struct ShrinkLoopStats {
  uint32_t iterations = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  double parallel_seconds = 0;  // batch-internal triangulation wall time
  double serial_seconds = 0;    // streaming + rewrite wall time
  double elapsed_seconds = 0;
};

Status RunShrinkLoop(GraphStore* store, Env* env, TriangleSink* sink,
                     const ShrinkLoopOptions& options,
                     ShrinkLoopStats* stats);

}  // namespace internal
}  // namespace opt

#endif  // OPT_BASELINES_SHRINK_LOOP_H_
