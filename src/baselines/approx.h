// Approximate triangle-counting baselines from the paper's related
// work (§4): Doulion coin-flip sparsification (Tsourakakis et al.,
// KDD'09) and uniform wedge sampling (the streaming-estimator family
// [1, 9, 13]). The paper's point — and what these implementations show
// in the ablation bench — is that approximation trades the full listing
// for a count estimate, restricting the applications (§1).
#ifndef OPT_BASELINES_APPROX_H_
#define OPT_BASELINES_APPROX_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace opt {

struct ApproxResult {
  double estimate = 0;      // estimated triangle count
  uint64_t work = 0;        // edges kept / wedges sampled
  double elapsed_seconds = 0;
};

/// Doulion: keep each edge with probability p, count exactly on the
/// sparsified graph, scale by 1/p^3. Unbiased; variance shrinks as p
/// grows.
ApproxResult DoulionEstimate(const CSRGraph& g, double keep_probability,
                             uint64_t seed);

/// Wedge sampling: sample `num_samples` wedges (paths of length two)
/// uniformly over all wedges, measure the closed fraction, and scale:
/// triangles = closed_fraction * #wedges / 3.
ApproxResult WedgeSamplingEstimate(const CSRGraph& g, uint64_t num_samples,
                                   uint64_t seed);

/// TRIEST-IMPR-style one-pass streaming estimator over a shuffled edge
/// stream with an M-edge reservoir: each arriving edge contributes the
/// weighted count of its reservoir-closed wedges. Exact when M >= |E|;
/// unbiased otherwise. Memory is O(M).
ApproxResult StreamingReservoirEstimate(const CSRGraph& g,
                                        uint64_t reservoir_edges,
                                        uint64_t seed);

}  // namespace opt

#endif  // OPT_BASELINES_APPROX_H_
