#include "baselines/cc.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "baselines/shrink_loop.h"
#include "graph/builder.h"
#include "graph/reorder.h"
#include "storage/record_scanner.h"
#include "util/stopwatch.h"

namespace opt {

namespace {

/// Translates triangles from a relabeled id space back to the original
/// one, restoring the canonical u < v < w orientation.
class RemapSink : public TriangleSink {
 public:
  RemapSink(TriangleSink* base, const std::vector<VertexId>* new_to_old)
      : base_(base), new_to_old_(new_to_old) {}

  void Emit(VertexId u, VertexId v, std::span<const VertexId> ws) override {
    for (VertexId w : ws) {
      VertexId t[3] = {(*new_to_old_)[u], (*new_to_old_)[v],
                       (*new_to_old_)[w]};
      std::sort(t, t + 3);
      const VertexId tail[1] = {t[2]};
      base_->Emit(t[0], t[1], tail);
    }
  }

  Status Finish() override { return base_->Finish(); }

 private:
  TriangleSink* base_;
  const std::vector<VertexId>* new_to_old_;
};

}  // namespace

Status RunChuCheng(GraphStore* store, Env* env, TriangleSink* sink,
                   const CcOptions& options, CcStats* stats) {
  Stopwatch watch;
  internal::ShrinkLoopOptions loop_options;
  loop_options.memory_pages = options.memory_pages;
  loop_options.num_threads = 1;
  loop_options.double_scan = false;
  loop_options.temp_dir = options.temp_dir;
  loop_options.temp_prefix = options.dominating_set_order ? "ccds" : "ccseq";
  loop_options.validate_pages = options.validate_pages;

  internal::ShrinkLoopStats loop_stats;
  Status status;
  if (!options.dominating_set_order) {
    status = internal::RunShrinkLoop(store, env, sink, loop_options,
                                     &loop_stats);
  } else {
    // CC-DS: relabel by descending degree so hub vertices are batched
    // (and removed) first; emit in original ids via RemapSink.
    const VertexId n = store->num_vertices();
    std::vector<uint64_t> offsets(n + 1, 0);
    std::vector<VertexId> adjacency;
    adjacency.reserve(store->num_directed_edges());
    OPT_RETURN_IF_ERROR(ScanRecords(
        *store, 0, store->num_pages() - 1,
        [&](VertexId v, std::span<const VertexId> neighbors) {
          offsets[v + 1] = neighbors.size();
          adjacency.insert(adjacency.end(), neighbors.begin(),
                           neighbors.end());
        },
        &loop_stats.pages_read, options.validate_pages));
    for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    CSRGraph original(std::move(offsets), std::move(adjacency));

    std::vector<VertexId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](VertexId a, VertexId b) {
                       return original.degree(a) > original.degree(b);
                     });
    std::vector<VertexId> old_to_new(n);
    for (VertexId new_id = 0; new_id < n; ++new_id) {
      old_to_new[by_degree[new_id]] = new_id;
    }
    ReorderResult reordered = ApplyOrder(original, old_to_new);

    const std::string relabeled_path = options.temp_dir + "/ccds_input";
    GraphStoreOptions gopts;
    gopts.page_size = store->page_size();
    OPT_RETURN_IF_ERROR(
        GraphStore::Create(reordered.graph, env, relabeled_path, gopts));
    OPT_ASSIGN_OR_RETURN(auto relabeled_store,
                         GraphStore::Open(env, relabeled_path));
    loop_stats.pages_written += relabeled_store->num_pages();

    RemapSink remap(sink, &reordered.new_to_old);
    status = internal::RunShrinkLoop(relabeled_store.get(), env, &remap,
                                     loop_options, &loop_stats);
    (void)env->DeleteFile(GraphStore::PagesPath(relabeled_path));
    (void)env->DeleteFile(GraphStore::MetaPath(relabeled_path));
  }
  if (stats != nullptr) {
    stats->iterations = loop_stats.iterations;
    stats->pages_read = loop_stats.pages_read;
    stats->pages_written = loop_stats.pages_written;
    stats->elapsed_seconds = watch.ElapsedSeconds();
  }
  return status;
}

}  // namespace opt
