// Sorted-list intersection kernels — the inner loop of every iterator
// model. Three scalar strategies: linear merge, galloping (for skewed
// list sizes), and hash-probe (the O(min(|a|,|b|)) variant the paper's
// cost analysis assumes, Eq. 3). The merge and galloping strategies also
// exist as SSE4.1 and AVX2 kernels (block-merge with cmpeq/shuffle
// compaction; galloping with a vectorized lower-bound probe), selected
// at runtime through a CPU-feature dispatch table so one binary runs the
// best kernel the host supports.
//
// All kernels agree with std::set_intersection on any sorted input,
// including duplicates (the SIMD block-merge detects duplicate runs and
// falls back to scalar stepping across them), so adversarial inputs are
// safe even though adjacency lists are duplicate-free in practice.
//
// A fourth family serves skewed graphs: bitmap kernels intersect a
// sorted list (or another bitmap) against a word-aligned DenseBitmap via
// bit tests and AND+popcount — AVX2-accelerated (kBitmap) or portable
// __builtin_popcountll (kBitmapScalar). Bitmaps are sets, so these
// kernels have *set* semantics: they agree with std::set_intersection on
// duplicate-free inputs (adjacency lists always are) and emit each
// common value once otherwise. Hub routing (src/graph/hub_bitmap.h)
// decides which vertex pairs take this path.
#ifndef OPT_GRAPH_INTERSECT_H_
#define OPT_GRAPH_INTERSECT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "util/status.h"

namespace opt {

// ---------------------------------------------------------------------------
// Kernel selection (process-wide dispatch table).
// ---------------------------------------------------------------------------

enum class IntersectKernel : uint8_t {
  kScalar = 0,  // portable C++ (always available)
  kSse = 1,     // SSE4.1 4-wide block-merge + SSE lower-bound galloping
  kAvx2 = 2,    // AVX2 8-wide block-merge + AVX2 lower-bound galloping
  kBitmap = 3,  // hub bitmaps, AVX2 AND+popcount (requires AVX2)
  kBitmapScalar = 4,  // hub bitmaps, portable 64-bit popcount
  kAuto = 5,    // resolve to the best CPU-supported *merge* kernel
};

/// Number of concrete kernels (kAuto is a selector, not a kernel).
inline constexpr int kNumIntersectKernels = 5;

/// True for the bitmap family (hub routing enabled when active).
inline constexpr bool IsBitmapKernel(IntersectKernel kernel) {
  return kernel == IntersectKernel::kBitmap ||
         kernel == IntersectKernel::kBitmapScalar;
}

const char* IntersectKernelName(IntersectKernel kernel);

/// True when the host CPU can execute `kernel` (cpuid-based feature
/// probe; kScalar and kAuto are always supported).
bool IntersectKernelSupported(IntersectKernel kernel);

/// The widest *merge* kernel the host CPU supports (what kAuto resolves
/// to). Never a bitmap kernel: those only apply to hub pairs with a
/// materialized bitmap, so they are opt-in via `--kernel bitmap`.
IntersectKernel BestIntersectKernel();

/// Parses "scalar" | "sse" | "avx2" | "bitmap" | "bitmap_scalar" |
/// "auto" (the CLI knob).
Result<IntersectKernel> ParseIntersectKernel(const std::string& name);

/// Installs the process-wide kernel used by the dispatched Intersect /
/// IntersectCount entry points. kAuto restores best-supported. Returns
/// InvalidArgument for a kernel the host CPU cannot execute — in
/// particular `bitmap` on hosts without AVX2 (select `bitmap_scalar`
/// explicitly for the portable popcount fallback). Selection is
/// process-wide: concurrent runs share it (an ablation knob, not a
/// per-run isolation boundary).
Status SetIntersectKernel(IntersectKernel kernel);

/// The kernel the dispatched entry points currently run (kAuto already
/// resolved to a concrete kernel).
IntersectKernel ActiveIntersectKernel();

// ---------------------------------------------------------------------------
// Per-kernel instrumentation. Counters are process-wide, aggregated
// over thread-local cells, and monotonically increasing: measure a
// region by snapshotting before/after and taking the Delta.
// ---------------------------------------------------------------------------

struct IntersectCounters {
  /// Kernel invocations, indexed by IntersectKernel (concrete kernels).
  uint64_t calls[kNumIntersectKernels] = {};
  /// Elements consumed per call, same indexing. Merge/galloping/hash
  /// count |a| + |b|; bitmap kernels count the probe-list length plus
  /// the dense side's set-bit population (their unit of work).
  uint64_t elements[kNumIntersectKernels] = {};

  uint64_t TotalCalls() const {
    uint64_t total = 0;
    for (int k = 0; k < kNumIntersectKernels; ++k) total += calls[k];
    return total;
  }
  uint64_t TotalElements() const {
    uint64_t total = 0;
    for (int k = 0; k < kNumIntersectKernels; ++k) total += elements[k];
    return total;
  }
  void Accumulate(const IntersectCounters& other) {
    for (int k = 0; k < kNumIntersectKernels; ++k) {
      calls[k] += other.calls[k];
      elements[k] += other.elements[k];
    }
  }
  static IntersectCounters Delta(const IntersectCounters& after,
                                 const IntersectCounters& before) {
    IntersectCounters d;
    for (int k = 0; k < kNumIntersectKernels; ++k) {
      d.calls[k] = after.calls[k] - before.calls[k];
      d.elements[k] = after.elements[k] - before.elements[k];
    }
    return d;
  }
};

/// Sums the thread-local counter cells (live threads + retired ones).
IntersectCounters SnapshotIntersectCounters();

// ---------------------------------------------------------------------------
// Explicit-kernel entry points (ablation + tests). kAuto resolves to
// the best supported kernel; an unsupported kernel falls back to scalar
// so these are safe to call on any host.
// ---------------------------------------------------------------------------

size_t IntersectMergeWith(IntersectKernel kernel, std::span<const VertexId> a,
                          std::span<const VertexId> b,
                          std::vector<VertexId>* out);
size_t IntersectGallopingWith(IntersectKernel kernel,
                              std::span<const VertexId> a,
                              std::span<const VertexId> b,
                              std::vector<VertexId>* out);
uint64_t IntersectCountMergeWith(IntersectKernel kernel,
                                 std::span<const VertexId> a,
                                 std::span<const VertexId> b);
uint64_t IntersectCountGallopingWith(IntersectKernel kernel,
                                     std::span<const VertexId> a,
                                     std::span<const VertexId> b);

// ---------------------------------------------------------------------------
// Scalar reference kernels (the portable fallback of the dispatch
// table; also the oracle side of the fuzz tests).
// ---------------------------------------------------------------------------

/// Appends a ∩ b (both sorted ascending) to *out. Returns count added.
size_t IntersectMerge(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>* out);

/// Galloping intersection: binary-searches the larger list for each
/// element of the smaller one. Wins when |a| << |b|.
size_t IntersectGalloping(std::span<const VertexId> a,
                          std::span<const VertexId> b,
                          std::vector<VertexId>* out);

/// Hash-probe: builds an open-addressing table over the smaller list and
/// probes it with the larger — the O(1)-per-probe kernel the paper's
/// Eq. 3 cost model assumes.
size_t IntersectHash(std::span<const VertexId> a, std::span<const VertexId> b,
                     std::vector<VertexId>* out);

/// Count-only variants (no output materialization) for counting sinks.
uint64_t IntersectCountMerge(std::span<const VertexId> a,
                             std::span<const VertexId> b);
uint64_t IntersectCountGalloping(std::span<const VertexId> a,
                                 std::span<const VertexId> b);
uint64_t IntersectCountHash(std::span<const VertexId> a,
                            std::span<const VertexId> b);

// ---------------------------------------------------------------------------
// Bitmap kernels (the DODG hub path). A DenseBitmap materializes a
// sorted id list as one bit per id over a fixed universe; intersections
// against it are bit tests (sparse probe) or word-wise AND + popcount
// (dense × dense). Set semantics: duplicate ids collapse.
// ---------------------------------------------------------------------------

/// Word-aligned bitset over [0, universe). Words are padded to a
/// multiple of 4 (one AVX2 lane) and zero beyond the universe, so the
/// vector kernels never mask the tail.
class DenseBitmap {
 public:
  DenseBitmap() = default;
  explicit DenseBitmap(VertexId universe) { Reset(universe); }

  /// Clears and resizes to cover [0, universe).
  void Reset(VertexId universe);

  /// Sets the bits of `sorted_ids` (each must be < universe();
  /// duplicates collapse). Callable repeatedly; bits accumulate.
  void SetFrom(std::span<const VertexId> sorted_ids);

  bool Test(VertexId v) const {
    return (words_[v >> 6] >> (v & 63)) & 1u;
  }

  VertexId universe() const { return universe_; }
  /// Number of set bits (maintained by SetFrom).
  uint64_t popcount() const { return popcount_; }
  std::span<const uint64_t> words() const { return words_; }
  /// Heap bytes held by the word array (bitmap memory accounting).
  size_t memory_bytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  VertexId universe_ = 0;
  uint64_t popcount_ = 0;
  std::vector<uint64_t> words_;
};

/// b ∩ dense, restricted to values in [lo, hi] — for hub routing, where
/// the caller's span is a contiguous slice of the bitmap's id list and
/// the clamp re-creates the slice boundary. `kernel` must be a bitmap
/// kernel; kBitmap degrades to kBitmapScalar without AVX2, anything
/// else is treated as kBitmapScalar (safe on any host, like the merge
/// entry points). Count variants return the cardinality; materializing
/// variants append the (sorted, duplicate-free) result.
uint64_t IntersectCountBitmapSparseWith(IntersectKernel kernel,
                                        std::span<const VertexId> sparse,
                                        const DenseBitmap& dense);
size_t IntersectBitmapSparseWith(IntersectKernel kernel,
                                 std::span<const VertexId> sparse,
                                 const DenseBitmap& dense,
                                 std::vector<VertexId>* out);
uint64_t IntersectCountBitmapDenseWith(IntersectKernel kernel,
                                       const DenseBitmap& a,
                                       const DenseBitmap& b, VertexId lo,
                                       VertexId hi);
size_t IntersectBitmapDenseWith(IntersectKernel kernel, const DenseBitmap& a,
                                const DenseBitmap& b, VertexId lo, VertexId hi,
                                std::vector<VertexId>* out);

// ---------------------------------------------------------------------------
// Dispatched adaptive entry points (what the iterator models call):
// picks merge vs galloping from the size ratio, then runs the active
// kernel from the dispatch table.
// ---------------------------------------------------------------------------

size_t Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
                 std::vector<VertexId>* out);
uint64_t IntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b);

}  // namespace opt

#endif  // OPT_GRAPH_INTERSECT_H_
