// Sorted-list intersection kernels — the inner loop of every iterator
// model. Three strategies: linear merge, galloping (for skewed list
// sizes), and hash-probe (the O(min(|a|,|b|)) variant the paper's cost
// analysis assumes, Eq. 3).
#ifndef OPT_GRAPH_INTERSECT_H_
#define OPT_GRAPH_INTERSECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace opt {

/// Appends a ∩ b (both sorted ascending) to *out. Returns count added.
size_t IntersectMerge(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>* out);

/// Galloping intersection: binary-searches the larger list for each
/// element of the smaller one. Wins when |a| << |b|.
size_t IntersectGalloping(std::span<const VertexId> a,
                          std::span<const VertexId> b,
                          std::vector<VertexId>* out);

/// Adaptive: picks merge vs galloping from the size ratio.
size_t Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
                 std::vector<VertexId>* out);

/// Count-only variants (no output materialization) for counting sinks.
uint64_t IntersectCountMerge(std::span<const VertexId> a,
                             std::span<const VertexId> b);
uint64_t IntersectCountGalloping(std::span<const VertexId> a,
                                 std::span<const VertexId> b);
uint64_t IntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b);

}  // namespace opt

#endif  // OPT_GRAPH_INTERSECT_H_
