// Sorted-list intersection kernels — the inner loop of every iterator
// model. Three scalar strategies: linear merge, galloping (for skewed
// list sizes), and hash-probe (the O(min(|a|,|b|)) variant the paper's
// cost analysis assumes, Eq. 3). The merge and galloping strategies also
// exist as SSE4.1 and AVX2 kernels (block-merge with cmpeq/shuffle
// compaction; galloping with a vectorized lower-bound probe), selected
// at runtime through a CPU-feature dispatch table so one binary runs the
// best kernel the host supports.
//
// All kernels agree with std::set_intersection on any sorted input,
// including duplicates (the SIMD block-merge detects duplicate runs and
// falls back to scalar stepping across them), so adversarial inputs are
// safe even though adjacency lists are duplicate-free in practice.
#ifndef OPT_GRAPH_INTERSECT_H_
#define OPT_GRAPH_INTERSECT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "util/status.h"

namespace opt {

// ---------------------------------------------------------------------------
// Kernel selection (process-wide dispatch table).
// ---------------------------------------------------------------------------

enum class IntersectKernel : uint8_t {
  kScalar = 0,  // portable C++ (always available)
  kSse = 1,     // SSE4.1 4-wide block-merge + SSE lower-bound galloping
  kAvx2 = 2,    // AVX2 8-wide block-merge + AVX2 lower-bound galloping
  kAuto = 3,    // resolve to the best CPU-supported kernel
};

/// Number of concrete kernels (kAuto is a selector, not a kernel).
inline constexpr int kNumIntersectKernels = 3;

const char* IntersectKernelName(IntersectKernel kernel);

/// True when the host CPU can execute `kernel` (cpuid-based feature
/// probe; kScalar and kAuto are always supported).
bool IntersectKernelSupported(IntersectKernel kernel);

/// The widest kernel the host CPU supports (what kAuto resolves to).
IntersectKernel BestIntersectKernel();

/// Parses "scalar" | "sse" | "avx2" | "auto" (the CLI knob).
Result<IntersectKernel> ParseIntersectKernel(const std::string& name);

/// Installs the process-wide kernel used by the dispatched Intersect /
/// IntersectCount entry points. kAuto restores best-supported. Returns
/// InvalidArgument for a kernel the host CPU cannot execute. Selection
/// is process-wide: concurrent runs share it (an ablation knob, not a
/// per-run isolation boundary).
Status SetIntersectKernel(IntersectKernel kernel);

/// The kernel the dispatched entry points currently run (kAuto already
/// resolved to a concrete kernel).
IntersectKernel ActiveIntersectKernel();

// ---------------------------------------------------------------------------
// Per-kernel instrumentation. Counters are process-wide, aggregated
// over thread-local cells, and monotonically increasing: measure a
// region by snapshotting before/after and taking the Delta.
// ---------------------------------------------------------------------------

struct IntersectCounters {
  /// Kernel invocations, indexed by IntersectKernel (concrete kernels).
  uint64_t calls[kNumIntersectKernels] = {0, 0, 0};
  /// Elements consumed (|a| + |b| per call), same indexing.
  uint64_t elements[kNumIntersectKernels] = {0, 0, 0};

  uint64_t TotalCalls() const {
    return calls[0] + calls[1] + calls[2];
  }
  uint64_t TotalElements() const {
    return elements[0] + elements[1] + elements[2];
  }
  void Accumulate(const IntersectCounters& other) {
    for (int k = 0; k < kNumIntersectKernels; ++k) {
      calls[k] += other.calls[k];
      elements[k] += other.elements[k];
    }
  }
  static IntersectCounters Delta(const IntersectCounters& after,
                                 const IntersectCounters& before) {
    IntersectCounters d;
    for (int k = 0; k < kNumIntersectKernels; ++k) {
      d.calls[k] = after.calls[k] - before.calls[k];
      d.elements[k] = after.elements[k] - before.elements[k];
    }
    return d;
  }
};

/// Sums the thread-local counter cells (live threads + retired ones).
IntersectCounters SnapshotIntersectCounters();

// ---------------------------------------------------------------------------
// Explicit-kernel entry points (ablation + tests). kAuto resolves to
// the best supported kernel; an unsupported kernel falls back to scalar
// so these are safe to call on any host.
// ---------------------------------------------------------------------------

size_t IntersectMergeWith(IntersectKernel kernel, std::span<const VertexId> a,
                          std::span<const VertexId> b,
                          std::vector<VertexId>* out);
size_t IntersectGallopingWith(IntersectKernel kernel,
                              std::span<const VertexId> a,
                              std::span<const VertexId> b,
                              std::vector<VertexId>* out);
uint64_t IntersectCountMergeWith(IntersectKernel kernel,
                                 std::span<const VertexId> a,
                                 std::span<const VertexId> b);
uint64_t IntersectCountGallopingWith(IntersectKernel kernel,
                                     std::span<const VertexId> a,
                                     std::span<const VertexId> b);

// ---------------------------------------------------------------------------
// Scalar reference kernels (the portable fallback of the dispatch
// table; also the oracle side of the fuzz tests).
// ---------------------------------------------------------------------------

/// Appends a ∩ b (both sorted ascending) to *out. Returns count added.
size_t IntersectMerge(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>* out);

/// Galloping intersection: binary-searches the larger list for each
/// element of the smaller one. Wins when |a| << |b|.
size_t IntersectGalloping(std::span<const VertexId> a,
                          std::span<const VertexId> b,
                          std::vector<VertexId>* out);

/// Hash-probe: builds an open-addressing table over the smaller list and
/// probes it with the larger — the O(1)-per-probe kernel the paper's
/// Eq. 3 cost model assumes.
size_t IntersectHash(std::span<const VertexId> a, std::span<const VertexId> b,
                     std::vector<VertexId>* out);

/// Count-only variants (no output materialization) for counting sinks.
uint64_t IntersectCountMerge(std::span<const VertexId> a,
                             std::span<const VertexId> b);
uint64_t IntersectCountGalloping(std::span<const VertexId> a,
                                 std::span<const VertexId> b);
uint64_t IntersectCountHash(std::span<const VertexId> a,
                            std::span<const VertexId> b);

// ---------------------------------------------------------------------------
// Dispatched adaptive entry points (what the iterator models call):
// picks merge vs galloping from the size ratio, then runs the active
// kernel from the dispatch table.
// ---------------------------------------------------------------------------

size_t Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
                 std::vector<VertexId>* out);
uint64_t IntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b);

}  // namespace opt

#endif  // OPT_GRAPH_INTERSECT_H_
