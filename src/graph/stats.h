// Graph statistics: degree distribution, clustering coefficient,
// transitivity — the network-analysis metrics the paper's introduction
// motivates triangulation with.
#ifndef OPT_GRAPH_STATS_H_
#define OPT_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "util/histogram.h"

namespace opt {

struct GraphStats {
  VertexId num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  uint64_t wedge_count = 0;  // paths of length 2 (ordered centers)
  Histogram degree_histogram;
};

/// Computes structural statistics in one pass (no triangle counting).
GraphStats ComputeStats(const CSRGraph& g);

/// Per-vertex triangle participation counts -> average local clustering
/// coefficient (Watts–Strogatz). `triangles_per_vertex[v]` counts the
/// triangles containing v.
double AverageClusteringCoefficient(
    const CSRGraph& g, const std::vector<uint64_t>& triangles_per_vertex);

/// Global transitivity: 3 * #triangles / #wedges.
double Transitivity(const CSRGraph& g, uint64_t num_triangles);

/// Human-readable one-line summary.
std::string StatsSummary(const GraphStats& stats);

}  // namespace opt

#endif  // OPT_GRAPH_STATS_H_
