// DODG-style hub routing for the bitmap intersection kernels. On skewed
// graphs a handful of hub vertices dominate intersected elements; this
// layer picks a degree split point from the degree histogram (the
// `--hub_split` knob), materializes a DenseBitmap of each hub's full
// adjacency, and routes hub–hub pairs to dense × dense AND+popcount and
// hub–tail pairs to sparse bit-probes, while the long tail keeps the
// merge/galloping kernels.
//
// Correctness invariant (why the clamping below is exact): every span
// the iterator models intersect — succ(v), prec(v), or any page-frame
// slice — is a *contiguous* slice of v's full sorted adjacency. So a
// span equals n(v) ∩ [span.front(), span.back()], and intersecting two
// spans equals intersecting the full adjacencies clamped to the overlap
// of their value ranges. The bitmap holds full n(v); the clamp
// re-creates the slice boundary.
#ifndef OPT_GRAPH_HUB_BITMAP_H_
#define OPT_GRAPH_HUB_BITMAP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/intersect.h"
#include "util/status.h"

namespace opt {

/// Degree threshold meaning "no vertex is a hub" (the `off` split).
inline constexpr uint32_t kNoHubThreshold = 0xFFFFFFFFu;

/// The `--hub_split` knob: where the degree histogram is cut between
/// tail (merge kernels) and hub (bitmap kernels).
struct HubSplitSpec {
  enum class Mode : uint8_t {
    kOff,         // no hubs; bitmap kernels fall back to merge everywhere
    kAuto,        // percentile rule with a memory floor (see Resolve below)
    kPercentile,  // hubs = vertices at or above the pNN degree percentile
    kDegree,      // explicit threshold; 0 makes every vertex a hub
  };

  Mode mode = Mode::kAuto;
  double percentile = 0.0;  // kPercentile: 0 < percentile <= 100
  uint32_t degree = 0;      // kDegree: explicit degree threshold

  /// Parses "off" | "none" | "auto" | "pNN" (e.g. "p90", "p99.9") | a
  /// bare non-negative integer degree threshold.
  static Result<HubSplitSpec> Parse(const std::string& text);
  std::string ToString() const;
};

/// Turns a split spec into a concrete degree threshold for a graph with
/// the given full-degree histogram. The `auto` rule is
///   max(p99 degree, universe/64, 8):
/// p99 keeps the bitmap set small (~1% of vertices), universe/64 only
/// admits vertices whose adjacency has at least as many elements as the
/// bitmap has words (so a sparse probe touches no more memory than the
/// list it replaces), and the floor of 8 keeps trivial graphs on the
/// merge path. kOff returns kNoHubThreshold.
uint32_t ResolveHubDegreeThreshold(const HubSplitSpec& spec,
                                   std::span<const uint32_t> degrees,
                                   VertexId universe);

/// Per-hub bitmaps over the vertex id space. Built once per run (or per
/// iteration from the in-memory page view) and read-only while worker
/// threads intersect through it.
class HubBitmapIndex {
 public:
  HubBitmapIndex() = default;
  HubBitmapIndex(VertexId universe, uint32_t degree_threshold) {
    Reset(universe, degree_threshold);
  }

  /// Drops all bitmaps and re-dimensions for `universe` vertices.
  void Reset(VertexId universe, uint32_t degree_threshold);

  /// Materializes v's bitmap from its FULL sorted adjacency (not a
  /// slice). A no-op when the degree is below the threshold; replaces
  /// any bitmap v already has.
  void Add(VertexId v, std::span<const VertexId> full_adjacency);

  /// v's bitmap, or nullptr when v is not a (materialized) hub.
  const DenseBitmap* Get(VertexId v) const {
    if (v >= slot_.size()) return nullptr;
    const int32_t s = slot_[v];
    return s < 0 ? nullptr : &bitmaps_[static_cast<size_t>(s)];
  }

  /// Drops the bitmaps but keeps dimensions (per-iteration rebuild).
  void Clear();

  size_t num_hubs() const { return bitmaps_.size(); }
  uint32_t degree_threshold() const { return degree_threshold_; }
  VertexId universe() const { return universe_; }
  /// Heap bytes: bitmap words plus the per-vertex slot table.
  size_t memory_bytes() const;

  /// Builds the index for an in-memory graph: resolves the split against
  /// the graph's degree histogram, then materializes every hub.
  static HubBitmapIndex Build(const CSRGraph& graph, const HubSplitSpec& spec);

 private:
  VertexId universe_ = 0;
  uint32_t degree_threshold_ = kNoHubThreshold;
  std::vector<int32_t> slot_;  // per-vertex index into bitmaps_, -1 = tail
  std::vector<DenseBitmap> bitmaps_;
};

// ---------------------------------------------------------------------------
// Thread-local routing scope. Workers install the (immutable) index for
// the duration of a work unit; the routed Intersect overloads below
// consult it. Thread-local so concurrent runs with different indexes
// never observe each other.
// ---------------------------------------------------------------------------

class HubRoutingScope {
 public:
  explicit HubRoutingScope(const HubBitmapIndex* index);
  ~HubRoutingScope();
  HubRoutingScope(const HubRoutingScope&) = delete;
  HubRoutingScope& operator=(const HubRoutingScope&) = delete;

 private:
  const HubBitmapIndex* prev_;
};

/// The index installed on this thread, or nullptr.
const HubBitmapIndex* CurrentHubBitmapIndex();

// ---------------------------------------------------------------------------
// Routed entry points. `a` / `b` must be contiguous slices of va's / vb's
// full sorted adjacency (see the header comment). When the active kernel
// is a bitmap kernel and a routing scope is installed, hub pairs take
// the bitmap path; otherwise these behave exactly like the span-only
// Intersect / IntersectCount (adaptive merge/galloping). Results are
// identical either way on duplicate-free inputs.
// ---------------------------------------------------------------------------

size_t Intersect(VertexId va, VertexId vb, std::span<const VertexId> a,
                 std::span<const VertexId> b, std::vector<VertexId>* out);
uint64_t IntersectCount(VertexId va, VertexId vb, std::span<const VertexId> a,
                        std::span<const VertexId> b);

// ---------------------------------------------------------------------------
// Process-wide default split (what `--hub_split` sets; consulted by the
// runner when a run does not specify its own spec).
// ---------------------------------------------------------------------------

void SetDefaultHubSplit(const HubSplitSpec& spec);
HubSplitSpec DefaultHubSplit();

}  // namespace opt

#endif  // OPT_GRAPH_HUB_BITMAP_H_
