#include "graph/intersect.h"

#include <algorithm>

namespace opt {

namespace {
// Exponential-search lower bound within [lo, data.size()).
size_t Gallop(std::span<const VertexId> data, size_t lo, VertexId target) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < data.size() && data[hi] < target) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > data.size()) hi = data.size();
  return static_cast<size_t>(
      std::lower_bound(data.begin() + static_cast<ptrdiff_t>(lo),
                       data.begin() + static_cast<ptrdiff_t>(hi), target) -
      data.begin());
}
}  // namespace

size_t IntersectMerge(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>* out) {
  const size_t before = out->size();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out->size() - before;
}

size_t IntersectGalloping(std::span<const VertexId> a,
                          std::span<const VertexId> b,
                          std::vector<VertexId>* out) {
  if (a.size() > b.size()) return IntersectGalloping(b, a, out);
  const size_t before = out->size();
  size_t j = 0;
  for (VertexId x : a) {
    j = Gallop(b, j, x);
    if (j >= b.size()) break;
    if (b[j] == x) {
      out->push_back(x);
      ++j;
    }
  }
  return out->size() - before;
}

size_t Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
                 std::vector<VertexId>* out) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small == 0) return 0;
  // Galloping wins when the size ratio exceeds ~log2(large).
  if (large / small >= 16) return IntersectGalloping(a, b, out);
  return IntersectMerge(a, b, out);
}

uint64_t IntersectCountMerge(std::span<const VertexId> a,
                             std::span<const VertexId> b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

uint64_t IntersectCountGalloping(std::span<const VertexId> a,
                                 std::span<const VertexId> b) {
  if (a.size() > b.size()) return IntersectCountGalloping(b, a);
  uint64_t count = 0;
  size_t j = 0;
  for (VertexId x : a) {
    j = Gallop(b, j, x);
    if (j >= b.size()) break;
    if (b[j] == x) {
      ++count;
      ++j;
    }
  }
  return count;
}

uint64_t IntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small == 0) return 0;
  if (large / small >= 16) return IntersectCountGalloping(a, b);
  return IntersectCountMerge(a, b);
}

}  // namespace opt
