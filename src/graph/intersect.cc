#include "graph/intersect.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>

#if defined(__x86_64__) || defined(__i386__)
#define OPT_INTERSECT_X86 1
#include <immintrin.h>
#endif

namespace opt {

namespace {

// ---------------------------------------------------------------------------
// Per-kernel counters: thread-local cells registered in a process-wide
// list; a snapshot sums live cells plus the fold-in of exited threads.
// Cells use relaxed atomics so a concurrent snapshot is race-free
// (TSan-clean) while the owning thread's increments stay uncontended.
// ---------------------------------------------------------------------------

struct CounterCell {
  std::atomic<uint64_t> calls[kNumIntersectKernels] = {};
  std::atomic<uint64_t> elements[kNumIntersectKernels] = {};
};

struct CounterRegistry {
  std::mutex mutex;
  std::vector<CounterCell*> live;
  IntersectCounters retired;
};

CounterRegistry& Registry() {
  static CounterRegistry* registry = new CounterRegistry();  // never freed
  return *registry;
}

struct ThreadCounterSlot {
  CounterCell cell;
  ThreadCounterSlot() {
    CounterRegistry& r = Registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.live.push_back(&cell);
  }
  ~ThreadCounterSlot() {
    CounterRegistry& r = Registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (int k = 0; k < kNumIntersectKernels; ++k) {
      r.retired.calls[k] += cell.calls[k].load(std::memory_order_relaxed);
      r.retired.elements[k] +=
          cell.elements[k].load(std::memory_order_relaxed);
    }
    r.live.erase(std::find(r.live.begin(), r.live.end(), &cell));
  }
};

inline void CountCall(IntersectKernel kernel, size_t elements) {
  thread_local ThreadCounterSlot slot;
  const int k = static_cast<int>(kernel);
  slot.cell.calls[k].fetch_add(1, std::memory_order_relaxed);
  slot.cell.elements[k].fetch_add(elements, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Emitters: the kernels are templated over the output policy so the
// counting variants share code with the materializing ones.
// ---------------------------------------------------------------------------

struct CountEmitter {
  uint64_t count = 0;
  void Emit(VertexId) { ++count; }
  void EmitPacked(const VertexId*, int n) {
    count += static_cast<uint64_t>(n);
  }
};

struct AppendEmitter {
  std::vector<VertexId>* out;
  void Emit(VertexId v) { out->push_back(v); }
  void EmitPacked(const VertexId* packed, int n) {
    out->insert(out->end(), packed, packed + n);
  }
};

// ---------------------------------------------------------------------------
// Scalar kernels.
// ---------------------------------------------------------------------------

/// Resumable two-pointer merge: advances (i, j) by at most `steps` loop
/// iterations. The SIMD block kernels use it for tails and to step
/// across duplicate runs.
template <class Emitter>
void MergeScalarSteps(std::span<const VertexId> a, std::span<const VertexId> b,
                      size_t& i, size_t& j, size_t steps, Emitter& emit) {
  while (steps-- > 0 && i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      emit.Emit(a[i]);
      ++i;
      ++j;
    }
  }
}

template <class Emitter>
void MergeScalar(std::span<const VertexId> a, std::span<const VertexId> b,
                 Emitter& emit) {
  size_t i = 0, j = 0;
  MergeScalarSteps(a, b, i, j, static_cast<size_t>(-1), emit);
}

using LowerBoundFn = size_t (*)(const VertexId*, size_t, size_t, VertexId);

size_t LowerBoundScalar(const VertexId* data, size_t lo, size_t hi,
                        VertexId target) {
  return static_cast<size_t>(std::lower_bound(data + lo, data + hi, target) -
                             data);
}

/// Galloping skeleton shared by every ISA: exponential probe, then the
/// ISA's lower-bound routine on the bracketed range.
template <class Emitter>
void GallopGeneric(std::span<const VertexId> a, std::span<const VertexId> b,
                   LowerBoundFn lower_bound, Emitter& emit) {
  if (a.size() > b.size()) return GallopGeneric(b, a, lower_bound, emit);
  size_t j = 0;
  for (VertexId x : a) {
    size_t step = 1;
    size_t lo = j, hi = j;
    while (hi < b.size() && b[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    if (hi > b.size()) hi = b.size();
    j = lower_bound(b.data(), lo, hi, x);
    if (j >= b.size()) break;
    if (b[j] == x) {
      emit.Emit(x);
      ++j;
    }
  }
}

/// Hash-probe: open addressing over the smaller list, probed in order by
/// the larger list so the output stays sorted. A per-entry multiplicity
/// keeps duplicate semantics identical to std::set_intersection.
template <class Emitter>
void HashGeneric(std::span<const VertexId> a, std::span<const VertexId> b,
                 Emitter& emit) {
  if (a.size() > b.size()) return HashGeneric(b, a, emit);
  if (a.empty()) return;
  size_t capacity = 16;
  while (capacity < a.size() * 2) capacity <<= 1;
  const size_t mask = capacity - 1;
  std::vector<std::pair<VertexId, uint32_t>> table(capacity);  // key, count
  std::vector<uint8_t> occupied(capacity, 0);
  auto slot_of = [mask](VertexId v) {
    return static_cast<size_t>(
               (static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ull) >> 32) &
           mask;
  };
  for (VertexId v : a) {
    size_t s = slot_of(v);
    while (occupied[s] && table[s].first != v) s = (s + 1) & mask;
    occupied[s] = 1;
    table[s].first = v;
    table[s].second++;
  }
  for (VertexId v : b) {
    size_t s = slot_of(v);
    while (occupied[s]) {
      if (table[s].first == v) {
        if (table[s].second > 0) {
          emit.Emit(v);
          table[s].second--;
        }
        break;
      }
      s = (s + 1) & mask;
    }
  }
}

// ---------------------------------------------------------------------------
// SSE4.1 / AVX2 kernels. Built with per-function target attributes so
// the translation unit compiles for the portable baseline while the
// vector bodies use wider ISAs; they are only ever called behind the
// cpuid feature check below.
// ---------------------------------------------------------------------------

#ifdef OPT_INTERSECT_X86

/// Lane-compaction tables: for each match bitmask, the shuffle that
/// packs the matched lanes to the front of the register.
struct SseCompactTable {
  alignas(16) uint8_t shuffle[16][16];
  SseCompactTable() {
    for (int m = 0; m < 16; ++m) {
      int out = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if (m & (1 << lane)) {
          for (int byte = 0; byte < 4; ++byte) {
            shuffle[m][out * 4 + byte] =
                static_cast<uint8_t>(lane * 4 + byte);
          }
          ++out;
        }
      }
      for (; out < 4; ++out) {
        for (int byte = 0; byte < 4; ++byte) {
          shuffle[m][out * 4 + byte] = 0x80;  // zero the unused lanes
        }
      }
    }
  }
};

struct Avx2CompactTable {
  alignas(32) uint32_t index[256][8];
  Avx2CompactTable() {
    for (int m = 0; m < 256; ++m) {
      int out = 0;
      for (int lane = 0; lane < 8; ++lane) {
        if (m & (1 << lane)) index[m][out++] = static_cast<uint32_t>(lane);
      }
      for (; out < 8; ++out) index[m][out] = 0;
    }
  }
};

const SseCompactTable& SseCompact() {
  static const SseCompactTable table;
  return table;
}

const Avx2CompactTable& Avx2Compact() {
  static const Avx2CompactTable table;
  return table;
}

/// True when the 4-wide window starting at `idx` contains a value equal
/// to its predecessor (including the element just before the window).
/// The block-merge only vectorizes windows that are strictly increasing
/// *including both boundary elements*; any duplicate run touching the
/// window is handled by scalar stepping, which preserves
/// std::set_intersection multiplicity semantics. The right-boundary
/// check matters for correctness, not just multiplicity: a vector step
/// emits a match and may advance only one block, so a duplicate of the
/// matched value just past the advanced block's window would pair with
/// the stationary block's still-unconsumed copy and be emitted twice.
__attribute__((target("sse4.1"))) inline bool HasDupWindow4(
    const VertexId* p, size_t idx, size_t n) {
  if (idx + 4 < n && p[idx + 4] == p[idx + 3]) return true;
  if (idx == 0) {
    return p[1] == p[0] || p[2] == p[1] || p[3] == p[2];
  }
  const __m128i cur =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + idx));
  const __m128i prev =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + idx - 1));
  return _mm_movemask_epi8(_mm_cmpeq_epi32(cur, prev)) != 0;
}

__attribute__((target("avx2"))) inline bool HasDupWindow8(const VertexId* p,
                                                          size_t idx,
                                                          size_t n) {
  if (idx + 8 < n && p[idx + 8] == p[idx + 7]) return true;
  if (idx == 0) {
    for (int k = 1; k < 8; ++k) {
      if (p[k] == p[k - 1]) return true;
    }
    return false;
  }
  const __m256i cur =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + idx));
  const __m256i prev =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + idx - 1));
  return _mm256_movemask_epi8(_mm256_cmpeq_epi32(cur, prev)) != 0;
}

/// SSE block-merge: compares a 4-block of `a` against every rotation of
/// a 4-block of `b` (_mm_cmpeq_epi32 + _mm_shuffle_epi32), compacts the
/// matched lanes with _mm_shuffle_epi8, then advances whichever block
/// has the smaller maximum (both on a tie).
template <class Emitter>
__attribute__((target("sse4.1"))) void MergeSse(std::span<const VertexId> a,
                                                std::span<const VertexId> b,
                                                Emitter& emit) {
  size_t i = 0, j = 0;
  const size_t na = a.size(), nb = b.size();
  if (na >= 4 && nb >= 4) {
    const VertexId* pa = a.data();
    const VertexId* pb = b.data();
    const SseCompactTable& compact = SseCompact();
    while (i + 4 <= na && j + 4 <= nb) {
      if (HasDupWindow4(pa, i, na) || HasDupWindow4(pb, j, nb)) {
        MergeScalarSteps(a, b, i, j, 4, emit);
        continue;
      }
      const __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + i));
      const __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + j));
      __m128i match = _mm_cmpeq_epi32(va, vb);
      match = _mm_or_si128(
          match, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));
      match = _mm_or_si128(
          match, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)));
      match = _mm_or_si128(
          match, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));
      const int mask = _mm_movemask_ps(_mm_castsi128_ps(match));
      if (mask != 0) {
        const __m128i packed = _mm_shuffle_epi8(
            va, _mm_load_si128(reinterpret_cast<const __m128i*>(
                    compact.shuffle[mask])));
        alignas(16) VertexId tmp[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(tmp), packed);
        emit.EmitPacked(tmp, __builtin_popcount(static_cast<unsigned>(mask)));
      }
      const VertexId a_max = pa[i + 3], b_max = pb[j + 3];
      if (a_max <= b_max) i += 4;
      if (b_max <= a_max) j += 4;
    }
  }
  MergeScalarSteps(a, b, i, j, static_cast<size_t>(-1), emit);
}

/// AVX2 block-merge: the 8-wide version of MergeSse, rotating `b`'s
/// block with _mm256_permutevar8x32_epi32 and compacting matches with a
/// permutation-index table.
template <class Emitter>
__attribute__((target("avx2"))) void MergeAvx2(std::span<const VertexId> a,
                                               std::span<const VertexId> b,
                                               Emitter& emit) {
  size_t i = 0, j = 0;
  const size_t na = a.size(), nb = b.size();
  if (na >= 8 && nb >= 8) {
    const VertexId* pa = a.data();
    const VertexId* pb = b.data();
    const Avx2CompactTable& compact = Avx2Compact();
    const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    while (i + 8 <= na && j + 8 <= nb) {
      if (HasDupWindow8(pa, i, na) || HasDupWindow8(pb, j, nb)) {
        MergeScalarSteps(a, b, i, j, 8, emit);
        continue;
      }
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + i));
      __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + j));
      __m256i match = _mm256_cmpeq_epi32(va, vb);
      for (int rot = 1; rot < 8; ++rot) {
        vb = _mm256_permutevar8x32_epi32(vb, rotate1);
        match = _mm256_or_si256(match, _mm256_cmpeq_epi32(va, vb));
      }
      const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(match));
      if (mask != 0) {
        const __m256i idx = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(compact.index[mask]));
        const __m256i packed = _mm256_permutevar8x32_epi32(va, idx);
        alignas(32) VertexId tmp[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), packed);
        emit.EmitPacked(tmp, __builtin_popcount(static_cast<unsigned>(mask)));
      }
      const VertexId a_max = pa[i + 7], b_max = pb[j + 7];
      if (a_max <= b_max) i += 8;
      if (b_max <= a_max) j += 8;
    }
  }
  MergeScalarSteps(a, b, i, j, static_cast<size_t>(-1), emit);
}

/// Vectorized lower bound: binary-search narrows the range, then a SIMD
/// linear scan counts elements < target (unsigned compare via the
/// sign-flip trick). Loads never touch memory outside [lo, hi).
__attribute__((target("sse4.1"))) size_t LowerBoundSse(const VertexId* data,
                                                       size_t lo, size_t hi,
                                                       VertexId target) {
  while (hi - lo > 16) {
    const size_t mid = lo + (hi - lo) / 2;
    if (data[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m128i sign = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i pivot =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(target)), sign);
  while (lo + 4 <= hi) {
    const __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + lo)), sign);
    const int lt = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(pivot, v)));
    if (lt != 0xF) return lo + __builtin_popcount(static_cast<unsigned>(lt));
    lo += 4;
  }
  while (lo < hi && data[lo] < target) ++lo;
  return lo;
}

__attribute__((target("avx2"))) size_t LowerBoundAvx2(const VertexId* data,
                                                      size_t lo, size_t hi,
                                                      VertexId target) {
  while (hi - lo > 32) {
    const size_t mid = lo + (hi - lo) / 2;
    if (data[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i pivot =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(target)), sign);
  while (lo + 8 <= hi) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + lo)),
        sign);
    const int lt =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(pivot, v)));
    if (lt != 0xFF) return lo + __builtin_popcount(static_cast<unsigned>(lt));
    lo += 8;
  }
  while (lo < hi && data[lo] < target) ++lo;
  return lo;
}

/// AND + population count over `n` 64-bit words, 4 words (one 32-byte
/// lane) per iteration via the nibble-lookup popcount (two
/// _mm256_shuffle_epi8 table probes per lane, horizontally reduced with
/// _mm256_sad_epu8 each iteration so the byte accumulators cannot
/// overflow). The tail runs scalar, so callers need no padding.
__attribute__((target("avx2"))) uint64_t PopcountAndAvx2(const uint64_t* a,
                                                         const uint64_t* b,
                                                         size_t n) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                           _mm256_shuffle_epi8(lookup, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += __builtin_popcountll(a[i] & b[i]);
  return total;
}

#endif  // OPT_INTERSECT_X86

// ---------------------------------------------------------------------------
// Bitmap kernel bodies (portable parts).
// ---------------------------------------------------------------------------

uint64_t PopcountAndScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

/// Probes each id of `sparse` against the bitmap. Consecutive duplicates
/// are skipped (set semantics); ids beyond the universe never match.
/// Probing is inherently scalar — both bitmap kernels share this body;
/// they differ only in the dense × dense popcount path.
template <class Emitter>
void BitmapSparseProbe(std::span<const VertexId> sparse,
                       const DenseBitmap& dense, Emitter& emit) {
  const VertexId universe = dense.universe();
  bool have_prev = false;
  VertexId prev = 0;
  for (VertexId v : sparse) {
    if (have_prev && v == prev) continue;
    have_prev = true;
    prev = v;
    if (v < universe && dense.Test(v)) emit.Emit(v);
  }
}

/// Word range + edge masks for the value interval [lo, hi], clamped to
/// the words both bitmaps actually have. Returns false when the clamped
/// interval is empty.
struct WordRange {
  size_t word_lo, word_hi;       // inclusive word indices
  uint64_t first_mask, last_mask;
};

bool ClampWordRange(const DenseBitmap& a, const DenseBitmap& b, VertexId lo,
                    uint64_t hi, WordRange* r) {
  const size_t nwords = std::min(a.words().size(), b.words().size());
  if (nwords == 0) return false;
  const uint64_t max_bit = static_cast<uint64_t>(nwords) * 64 - 1;
  const uint64_t lo64 = lo;
  const uint64_t hi64 = std::min<uint64_t>(hi, max_bit);
  if (lo64 > hi64) return false;
  r->word_lo = static_cast<size_t>(lo64 >> 6);
  r->word_hi = static_cast<size_t>(hi64 >> 6);
  r->first_mask = ~uint64_t{0} << (lo64 & 63);
  r->last_mask = (hi64 & 63) == 63
                     ? ~uint64_t{0}
                     : ((uint64_t{1} << ((hi64 & 63) + 1)) - 1);
  return true;
}

uint64_t CountAndRange(IntersectKernel resolved, const DenseBitmap& a,
                       const DenseBitmap& b, VertexId lo, VertexId hi) {
  WordRange r;
  if (!ClampWordRange(a, b, lo, hi, &r)) return 0;
  const uint64_t* pa = a.words().data();
  const uint64_t* pb = b.words().data();
  if (r.word_lo == r.word_hi) {
    return static_cast<uint64_t>(__builtin_popcountll(
        pa[r.word_lo] & pb[r.word_lo] & r.first_mask & r.last_mask));
  }
  uint64_t total = static_cast<uint64_t>(__builtin_popcountll(
                       pa[r.word_lo] & pb[r.word_lo] & r.first_mask)) +
                   static_cast<uint64_t>(__builtin_popcountll(
                       pa[r.word_hi] & pb[r.word_hi] & r.last_mask));
  const size_t interior = r.word_hi - r.word_lo - 1;
  if (interior > 0) {
#ifdef OPT_INTERSECT_X86
    if (resolved == IntersectKernel::kBitmap) {
      return total +
             PopcountAndAvx2(pa + r.word_lo + 1, pb + r.word_lo + 1, interior);
    }
#endif
    (void)resolved;
    total += PopcountAndScalar(pa + r.word_lo + 1, pb + r.word_lo + 1,
                               interior);
  }
  return total;
}

/// Materializing dense × dense: AND each word in range, then extract set
/// bits lowest-first (ctz + clear-lowest), which yields sorted output.
/// Extraction is scalar for both bitmap kernels.
template <class Emitter>
void ExtractAndRange(const DenseBitmap& a, const DenseBitmap& b, VertexId lo,
                     VertexId hi, Emitter& emit) {
  WordRange r;
  if (!ClampWordRange(a, b, lo, hi, &r)) return;
  const uint64_t* pa = a.words().data();
  const uint64_t* pb = b.words().data();
  for (size_t w = r.word_lo; w <= r.word_hi; ++w) {
    uint64_t bits = pa[w] & pb[w];
    if (w == r.word_lo) bits &= r.first_mask;
    if (w == r.word_hi) bits &= r.last_mask;
    const uint64_t base = static_cast<uint64_t>(w) * 64;
    while (bits != 0) {
      emit.Emit(static_cast<VertexId>(
          base + static_cast<uint64_t>(__builtin_ctzll(bits))));
      bits &= bits - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Feature detection + dispatch table.
// ---------------------------------------------------------------------------

bool CpuSupports(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kScalar:
    case IntersectKernel::kBitmapScalar:
    case IntersectKernel::kAuto:
      return true;
    case IntersectKernel::kSse:
#ifdef OPT_INTERSECT_X86
      return __builtin_cpu_supports("sse4.1");
#else
      return false;
#endif
    case IntersectKernel::kAvx2:
    case IntersectKernel::kBitmap:
#ifdef OPT_INTERSECT_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

/// Active kernel index; kAuto means "not yet overridden" and resolves
/// to BestIntersectKernel() on read.
std::atomic<uint8_t> g_active{static_cast<uint8_t>(IntersectKernel::kAuto)};

/// Runs the resolved (concrete, supported) kernel's merge.
template <class Emitter>
void MergeDispatch(IntersectKernel kernel, std::span<const VertexId> a,
                   std::span<const VertexId> b, Emitter& emit) {
  CountCall(kernel, a.size() + b.size());
  switch (kernel) {
#ifdef OPT_INTERSECT_X86
    case IntersectKernel::kSse:
      return MergeSse(a, b, emit);
    case IntersectKernel::kAvx2:
      return MergeAvx2(a, b, emit);
#endif
    default:
      return MergeScalar(a, b, emit);
  }
}

template <class Emitter>
void GallopDispatch(IntersectKernel kernel, std::span<const VertexId> a,
                    std::span<const VertexId> b, Emitter& emit) {
  CountCall(kernel, a.size() + b.size());
  switch (kernel) {
#ifdef OPT_INTERSECT_X86
    case IntersectKernel::kSse:
      return GallopGeneric(a, b, &LowerBoundSse, emit);
    case IntersectKernel::kAvx2:
      return GallopGeneric(a, b, &LowerBoundAvx2, emit);
#endif
    default:
      return GallopGeneric(a, b, &LowerBoundScalar, emit);
  }
}

/// kAuto → best supported; unsupported concrete kernel → scalar. The
/// bitmap kernels only exist for the bitmap entry points, so a raw
/// sorted-span call under an active bitmap kernel falls back to the
/// matching merge tier: kBitmap (AVX2 popcount) → best merge kernel,
/// kBitmapScalar → scalar merge. This is what the long tail runs when
/// hub routing declines a pair.
IntersectKernel ResolveKernel(IntersectKernel kernel) {
  if (kernel == IntersectKernel::kAuto) return BestIntersectKernel();
  if (kernel == IntersectKernel::kBitmap) return BestIntersectKernel();
  if (kernel == IntersectKernel::kBitmapScalar) return IntersectKernel::kScalar;
  return CpuSupports(kernel) ? kernel : IntersectKernel::kScalar;
}

/// Degrades kBitmap to kBitmapScalar on hosts without AVX2 and maps any
/// non-bitmap kernel to kBitmapScalar, so the bitmap entry points are
/// safe to call with anything (mirroring the merge entry points).
IntersectKernel ResolveBitmapKernel(IntersectKernel kernel) {
  if (kernel == IntersectKernel::kBitmap &&
      CpuSupports(IntersectKernel::kBitmap)) {
    return IntersectKernel::kBitmap;
  }
  return IntersectKernel::kBitmapScalar;
}

}  // namespace

// ---------------------------------------------------------------------------
// Kernel selection API.
// ---------------------------------------------------------------------------

const char* IntersectKernelName(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kScalar:
      return "scalar";
    case IntersectKernel::kSse:
      return "sse";
    case IntersectKernel::kAvx2:
      return "avx2";
    case IntersectKernel::kBitmap:
      return "bitmap";
    case IntersectKernel::kBitmapScalar:
      return "bitmap_scalar";
    case IntersectKernel::kAuto:
      return "auto";
  }
  return "?";
}

bool IntersectKernelSupported(IntersectKernel kernel) {
  return CpuSupports(kernel);
}

IntersectKernel BestIntersectKernel() {
  static const IntersectKernel best = [] {
    if (CpuSupports(IntersectKernel::kAvx2)) return IntersectKernel::kAvx2;
    if (CpuSupports(IntersectKernel::kSse)) return IntersectKernel::kSse;
    return IntersectKernel::kScalar;
  }();
  return best;
}

Result<IntersectKernel> ParseIntersectKernel(const std::string& name) {
  for (IntersectKernel k :
       {IntersectKernel::kScalar, IntersectKernel::kSse,
        IntersectKernel::kAvx2, IntersectKernel::kBitmap,
        IntersectKernel::kBitmapScalar, IntersectKernel::kAuto}) {
    if (name == IntersectKernelName(k)) return k;
  }
  return Status::InvalidArgument(
      "unknown intersect kernel '" + name +
      "' (expected scalar|sse|avx2|bitmap|bitmap_scalar|auto)");
}

Status SetIntersectKernel(IntersectKernel kernel) {
  if (!CpuSupports(kernel)) {
    if (kernel == IntersectKernel::kBitmap) {
      return Status::InvalidArgument(
          "intersect kernel 'bitmap' requires AVX2, which this CPU lacks "
          "(select 'bitmap_scalar' explicitly for the portable popcount "
          "fallback)");
    }
    return Status::InvalidArgument(
        std::string("intersect kernel '") + IntersectKernelName(kernel) +
        "' is not supported by this CPU");
  }
  g_active.store(static_cast<uint8_t>(kernel), std::memory_order_relaxed);
  return Status::OK();
}

IntersectKernel ActiveIntersectKernel() {
  const auto raw =
      static_cast<IntersectKernel>(g_active.load(std::memory_order_relaxed));
  return raw == IntersectKernel::kAuto ? BestIntersectKernel() : raw;
}

IntersectCounters SnapshotIntersectCounters() {
  CounterRegistry& r = Registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  IntersectCounters snapshot = r.retired;
  for (const CounterCell* cell : r.live) {
    for (int k = 0; k < kNumIntersectKernels; ++k) {
      snapshot.calls[k] += cell->calls[k].load(std::memory_order_relaxed);
      snapshot.elements[k] +=
          cell->elements[k].load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// Explicit-kernel entry points.
// ---------------------------------------------------------------------------

size_t IntersectMergeWith(IntersectKernel kernel, std::span<const VertexId> a,
                          std::span<const VertexId> b,
                          std::vector<VertexId>* out) {
  AppendEmitter emit{out};
  const size_t before = out->size();
  MergeDispatch(ResolveKernel(kernel), a, b, emit);
  return out->size() - before;
}

size_t IntersectGallopingWith(IntersectKernel kernel,
                              std::span<const VertexId> a,
                              std::span<const VertexId> b,
                              std::vector<VertexId>* out) {
  AppendEmitter emit{out};
  const size_t before = out->size();
  GallopDispatch(ResolveKernel(kernel), a, b, emit);
  return out->size() - before;
}

uint64_t IntersectCountMergeWith(IntersectKernel kernel,
                                 std::span<const VertexId> a,
                                 std::span<const VertexId> b) {
  CountEmitter emit;
  MergeDispatch(ResolveKernel(kernel), a, b, emit);
  return emit.count;
}

uint64_t IntersectCountGallopingWith(IntersectKernel kernel,
                                     std::span<const VertexId> a,
                                     std::span<const VertexId> b) {
  CountEmitter emit;
  GallopDispatch(ResolveKernel(kernel), a, b, emit);
  return emit.count;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels.
// ---------------------------------------------------------------------------

size_t IntersectMerge(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>* out) {
  return IntersectMergeWith(IntersectKernel::kScalar, a, b, out);
}

size_t IntersectGalloping(std::span<const VertexId> a,
                          std::span<const VertexId> b,
                          std::vector<VertexId>* out) {
  return IntersectGallopingWith(IntersectKernel::kScalar, a, b, out);
}

size_t IntersectHash(std::span<const VertexId> a, std::span<const VertexId> b,
                     std::vector<VertexId>* out) {
  CountCall(IntersectKernel::kScalar, a.size() + b.size());
  AppendEmitter emit{out};
  const size_t before = out->size();
  HashGeneric(a, b, emit);
  return out->size() - before;
}

uint64_t IntersectCountMerge(std::span<const VertexId> a,
                             std::span<const VertexId> b) {
  return IntersectCountMergeWith(IntersectKernel::kScalar, a, b);
}

uint64_t IntersectCountGalloping(std::span<const VertexId> a,
                                 std::span<const VertexId> b) {
  return IntersectCountGallopingWith(IntersectKernel::kScalar, a, b);
}

uint64_t IntersectCountHash(std::span<const VertexId> a,
                            std::span<const VertexId> b) {
  CountCall(IntersectKernel::kScalar, a.size() + b.size());
  CountEmitter emit;
  HashGeneric(a, b, emit);
  return emit.count;
}

// ---------------------------------------------------------------------------
// Bitmap kernels.
// ---------------------------------------------------------------------------

void DenseBitmap::Reset(VertexId universe) {
  universe_ = universe;
  popcount_ = 0;
  const size_t nwords = (static_cast<size_t>(universe) + 63) / 64;
  // Pad to a whole AVX2 lane so 32-byte loads in the vector popcount
  // never read past the allocation; padding words stay zero.
  words_.assign((nwords + 3) & ~size_t{3}, 0);
}

void DenseBitmap::SetFrom(std::span<const VertexId> sorted_ids) {
  for (VertexId v : sorted_ids) {
    uint64_t& word = words_[v >> 6];
    const uint64_t bit = uint64_t{1} << (v & 63);
    popcount_ += (word & bit) == 0;
    word |= bit;
  }
}

uint64_t IntersectCountBitmapSparseWith(IntersectKernel kernel,
                                        std::span<const VertexId> sparse,
                                        const DenseBitmap& dense) {
  const IntersectKernel resolved = ResolveBitmapKernel(kernel);
  CountCall(resolved, sparse.size() + dense.popcount());
  CountEmitter emit;
  BitmapSparseProbe(sparse, dense, emit);
  return emit.count;
}

size_t IntersectBitmapSparseWith(IntersectKernel kernel,
                                 std::span<const VertexId> sparse,
                                 const DenseBitmap& dense,
                                 std::vector<VertexId>* out) {
  const IntersectKernel resolved = ResolveBitmapKernel(kernel);
  CountCall(resolved, sparse.size() + dense.popcount());
  AppendEmitter emit{out};
  const size_t before = out->size();
  BitmapSparseProbe(sparse, dense, emit);
  return out->size() - before;
}

uint64_t IntersectCountBitmapDenseWith(IntersectKernel kernel,
                                       const DenseBitmap& a,
                                       const DenseBitmap& b, VertexId lo,
                                       VertexId hi) {
  const IntersectKernel resolved = ResolveBitmapKernel(kernel);
  CountCall(resolved, a.popcount() + b.popcount());
  return CountAndRange(resolved, a, b, lo, hi);
}

size_t IntersectBitmapDenseWith(IntersectKernel kernel, const DenseBitmap& a,
                                const DenseBitmap& b, VertexId lo, VertexId hi,
                                std::vector<VertexId>* out) {
  const IntersectKernel resolved = ResolveBitmapKernel(kernel);
  CountCall(resolved, a.popcount() + b.popcount());
  AppendEmitter emit{out};
  const size_t before = out->size();
  ExtractAndRange(a, b, lo, hi, emit);
  return out->size() - before;
}

// ---------------------------------------------------------------------------
// Dispatched adaptive entry points.
// ---------------------------------------------------------------------------

size_t Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
                 std::vector<VertexId>* out) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small == 0) return 0;
  const IntersectKernel kernel = ActiveIntersectKernel();
  // Galloping wins when the size ratio exceeds ~log2(large).
  if (large / small >= 16) return IntersectGallopingWith(kernel, a, b, out);
  return IntersectMergeWith(kernel, a, b, out);
}

uint64_t IntersectCount(std::span<const VertexId> a,
                        std::span<const VertexId> b) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small == 0) return 0;
  const IntersectKernel kernel = ActiveIntersectKernel();
  if (large / small >= 16) return IntersectCountGallopingWith(kernel, a, b);
  return IntersectCountMergeWith(kernel, a, b);
}

}  // namespace opt
