#include "graph/delta_overlay.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "graph/intersect.h"

namespace opt {

namespace {

/// Canonical undirected key for duplicate detection within a batch.
uint64_t EdgeKey(VertexId u, VertexId v) {
  const VertexId lo = std::min(u, v);
  const VertexId hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

/// Memoizes base-adjacency fetches and materializes the current view
/// n(v) = (base(v) \ removed(v)) ∪ added(v) for the batch in progress.
class ViewReader {
 public:
  ViewReader(const DeltaOverlay* working, const AdjacencyFetcher& fetch,
             DeltaApplyStats* stats)
      : working_(working), fetch_(fetch), stats_(stats) {}

  /// Points `*out` at the current-view neighbors of `v`. The span stays
  /// valid until the next Get() for the same vertex after an Invalidate.
  Status Get(VertexId v, std::span<const VertexId>* out) {
    auto it = merged_.find(v);
    if (it == merged_.end()) {
      std::vector<VertexId> base;
      OPT_RETURN_IF_ERROR(FetchBase(v, &base));
      it = merged_.emplace(v, working_->MergeNeighbors(v, base)).first;
    }
    *out = it->second;
    return Status::OK();
  }

  /// Drops the memoized merged view of `v` (its overlay entry changed);
  /// the base fetch stays cached.
  void Invalidate(VertexId v) { merged_.erase(v); }

 private:
  Status FetchBase(VertexId v, std::vector<VertexId>* out) {
    auto it = base_.find(v);
    if (it == base_.end()) {
      std::vector<VertexId> neighbors;
      OPT_RETURN_IF_ERROR(fetch_(v, &neighbors));
      if (stats_ != nullptr) ++stats_->base_fetches;
      it = base_.emplace(v, std::move(neighbors)).first;
    }
    *out = it->second;
    return Status::OK();
  }

  const DeltaOverlay* working_;
  const AdjacencyFetcher& fetch_;
  DeltaApplyStats* stats_;
  std::unordered_map<VertexId, std::vector<VertexId>> base_;
  std::unordered_map<VertexId, std::vector<VertexId>> merged_;
};

/// Sorted-insert / sorted-erase on a small vector.
void SortedInsert(std::vector<VertexId>* list, VertexId value) {
  list->insert(std::lower_bound(list->begin(), list->end(), value), value);
}

bool SortedErase(std::vector<VertexId>* list, VertexId value) {
  auto it = std::lower_bound(list->begin(), list->end(), value);
  if (it == list->end() || *it != value) return false;
  list->erase(it);
  return true;
}

bool SortedContains(std::span<const VertexId> list, VertexId value) {
  return std::binary_search(list.begin(), list.end(), value);
}

}  // namespace

void DeltaOverlay::EditHalfEdge(VertexId from, VertexId to, DeltaKind kind) {
  VertexDelta& delta = vertices_[from];
  if (kind == DeltaKind::kAdd) {
    // Re-adding a base edge the overlay removed cancels the removal.
    if (!SortedErase(&delta.removed, to)) SortedInsert(&delta.added, to);
  } else {
    // Removing an overlay-added edge cancels the addition.
    if (!SortedErase(&delta.added, to)) SortedInsert(&delta.removed, to);
  }
  if (delta.empty()) vertices_.erase(from);
}

std::vector<VertexId> DeltaOverlay::MergeNeighbors(
    VertexId v, std::span<const VertexId> base_neighbors) const {
  auto it = vertices_.find(v);
  if (it == vertices_.end()) {
    return {base_neighbors.begin(), base_neighbors.end()};
  }
  const VertexDelta& delta = it->second;
  std::vector<VertexId> merged;
  merged.reserve(base_neighbors.size() + delta.added.size());
  for (VertexId n : base_neighbors) {
    if (!SortedContains(delta.removed, n)) merged.push_back(n);
  }
  // Both inputs sorted and disjoint (added edges are absent from base by
  // construction), so a classic in-place merge keeps the order.
  const size_t mid = merged.size();
  merged.insert(merged.end(), delta.added.begin(), delta.added.end());
  std::inplace_merge(merged.begin(), merged.begin() + static_cast<long>(mid),
                     merged.end());
  return merged;
}

Result<std::shared_ptr<const DeltaOverlay>> DeltaOverlay::Apply(
    const DeltaOverlay* current, DeltaKind kind, std::span<const Edge> edges,
    VertexId num_vertices, const AdjacencyFetcher& fetch,
    DeltaApplyStats* stats) {
  const char* verb = kind == DeltaKind::kAdd ? "add" : "remove";
  if (edges.empty()) {
    return Status::InvalidArgument(std::string(verb) +
                                   ": empty delta batch");
  }

  // Phase 1 — pure validation, no I/O: self-loops, out-of-range ids,
  // and duplicates (any repeated undirected edge, in either direction)
  // reject the whole batch before anything is read or written.
  std::unordered_set<uint64_t> seen;
  seen.reserve(edges.size());
  for (const Edge& edge : edges) {
    if (edge.first == edge.second) {
      return Status::InvalidArgument(
          std::string(verb) + ": self-loop {" +
          std::to_string(edge.first) + "," + std::to_string(edge.second) +
          "} in delta batch");
    }
    if (edge.first >= num_vertices || edge.second >= num_vertices) {
      return Status::InvalidArgument(
          std::string(verb) + ": vertex id out of range in edge {" +
          std::to_string(edge.first) + "," + std::to_string(edge.second) +
          "} (graph has " + std::to_string(num_vertices) + " vertices)");
    }
    if (!seen.insert(EdgeKey(edge.first, edge.second)).second) {
      return Status::InvalidArgument(
          std::string(verb) + ": duplicate edge {" +
          std::to_string(edge.first) + "," + std::to_string(edge.second) +
          "} in delta batch");
    }
  }

  // Phase 2 — apply on a private copy. Edges are processed sequentially
  // against the evolving view; the total triangle delta equals
  // T(final) - T(initial) regardless of the order edges appear in the
  // batch (the view after the whole batch is the same set union /
  // difference either way), so application is order-independent.
  auto working = std::shared_ptr<DeltaOverlay>(
      current != nullptr ? new DeltaOverlay(*current) : new DeltaOverlay());
  ViewReader view(working.get(), fetch, stats);
  for (const Edge& edge : edges) {
    const VertexId u = edge.first;
    const VertexId v = edge.second;
    std::span<const VertexId> nu, nv;
    OPT_RETURN_IF_ERROR(view.Get(u, &nu));
    const bool present = SortedContains(nu, v);
    if (kind == DeltaKind::kAdd && present) {
      return Status::InvalidArgument(
          "add: edge {" + std::to_string(u) + "," + std::to_string(v) +
          "} already present");
    }
    if (kind == DeltaKind::kRemove && !present) {
      return Status::InvalidArgument(
          "remove: edge {" + std::to_string(u) + "," + std::to_string(v) +
          "} not present");
    }
    OPT_RETURN_IF_ERROR(view.Get(v, &nv));
    // The triangles this edge completes (insert) or breaks (remove):
    // common neighbors of its endpoints in the current view. The edge
    // itself never shows up in the intersection (no self-loops), so the
    // same expression serves both directions.
    const uint64_t closed = IntersectCount(nu, nv);
    if (kind == DeltaKind::kAdd) {
      working->triangle_delta_ += static_cast<int64_t>(closed);
      if (stats != nullptr) stats->triangles_added += closed;
    } else {
      working->triangle_delta_ -= static_cast<int64_t>(closed);
      if (stats != nullptr) stats->triangles_removed += closed;
    }
    working->EditHalfEdge(u, v, kind);
    working->EditHalfEdge(v, u, kind);
    view.Invalidate(u);
    view.Invalidate(v);
    if (stats != nullptr) ++stats->edges_applied;
  }

  // Residual-edit counters are derived from the overlay itself, not
  // from batch history: an add-then-remove of the same batch nets out
  // to an empty overlay with zero residual edits either direction.
  // Each undirected edit appears under both endpoints, hence the /2.
  uint64_t added_halves = 0;
  uint64_t removed_halves = 0;
  for (const auto& [vertex, delta] : working->vertices_) {
    (void)vertex;
    added_halves += delta.added.size();
    removed_halves += delta.removed.size();
  }
  working->edges_added_ = added_halves / 2;
  working->edges_removed_ = removed_halves / 2;
  ++working->batches_applied_;
  return std::shared_ptr<const DeltaOverlay>(std::move(working));
}

}  // namespace opt
