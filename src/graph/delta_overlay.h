// Copy-on-write edge-delta overlay for streaming graph mutations.
//
// The on-disk GraphStore is immutable between compactions; live inserts
// and removals accumulate here instead. An overlay holds, per touched
// vertex, the sorted lists of neighbors added to and removed from the
// base adjacency, plus the exact triangle delta maintained incrementally
// as batches apply: inserting {u, v} adds |N(u) ∩ N(v)| triangles and
// removing it subtracts the same quantity, with N() the *current* view
// (base plus overlay plus the earlier edges of the same batch) — the
// per-edge neighborhood-intersection rule of the Tangwongsan/Pavan/
// Tirthapura streaming counters, run through the dispatched SSE/AVX2
// intersection kernels.
//
// Apply() never mutates its input: it validates the whole batch, then
// returns a brand-new overlay. Callers publish the new overlay (and a
// new epoch) atomically, so a concurrent reader sees either the old
// state or the new state, never a half-applied batch. A batch that
// fails validation (self-loop, duplicate, out-of-range id, add of a
// present edge, remove of an absent edge) rejects with a typed
// InvalidArgument and leaves no trace; a batch whose base-adjacency
// reads fail propagates the fetch error, also without committing.
#ifndef OPT_GRAPH_DELTA_OVERLAY_H_
#define OPT_GRAPH_DELTA_OVERLAY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "graph/builder.h"
#include "graph/csr_graph.h"
#include "util/status.h"

namespace opt {

enum class DeltaKind : uint8_t {
  kAdd = 0,     // ADD_EDGES: every edge must be absent from the view
  kRemove = 1,  // REMOVE_EDGES: every edge must be present in the view
};

/// Per-batch accounting returned alongside the new overlay.
struct DeltaApplyStats {
  uint64_t edges_applied = 0;
  uint64_t triangles_added = 0;
  uint64_t triangles_removed = 0;
  /// Base-adjacency reads issued while intersecting neighborhoods.
  uint64_t base_fetches = 0;
};

/// Returns the base (on-disk) adjacency of `v`, sorted ascending.
/// Called at most once per distinct vertex per batch (results are
/// memoized across the batch).
using AdjacencyFetcher =
    std::function<Status(VertexId, std::vector<VertexId>*)>;

class DeltaOverlay {
 public:
  /// Applies one batch on top of `current` (nullptr = empty overlay)
  /// and returns the resulting overlay. `num_vertices` bounds the id
  /// space: deltas cannot grow the vertex set (InvalidArgument).
  static Result<std::shared_ptr<const DeltaOverlay>> Apply(
      const DeltaOverlay* current, DeltaKind kind,
      std::span<const Edge> edges, VertexId num_vertices,
      const AdjacencyFetcher& fetch, DeltaApplyStats* stats = nullptr);

  /// True when the overlay carries no residual edits — the view equals
  /// the base graph exactly (add-then-remove of the same batch lands
  /// here, not merely at "two entries that cancel").
  bool empty() const { return vertices_.empty(); }

  /// triangles(view) - triangles(base): maintained exactly per batch.
  int64_t triangle_delta() const { return triangle_delta_; }

  /// Residual edge edits vs the base graph (each undirected edge once).
  uint64_t edges_added() const { return edges_added_; }
  uint64_t edges_removed() const { return edges_removed_; }
  uint64_t batches_applied() const { return batches_applied_; }

  /// Merges the overlay into `base_neighbors` (the on-disk n(v), sorted
  /// ascending): removals dropped, additions merged in. Returns the
  /// merged view, sorted ascending.
  std::vector<VertexId> MergeNeighbors(
      VertexId v, std::span<const VertexId> base_neighbors) const;

  /// True when the overlay edits n(v) at all (fast-path check).
  bool TouchesVertex(VertexId v) const {
    return vertices_.find(v) != vertices_.end();
  }

 private:
  struct VertexDelta {
    std::vector<VertexId> added;    // sorted ascending
    std::vector<VertexId> removed;  // sorted ascending
    bool empty() const { return added.empty() && removed.empty(); }
  };

  DeltaOverlay() = default;

  /// Records a single directed half-edge edit, cancelling against the
  /// opposite list (removing an overlay-added edge erases the addition
  /// rather than stacking a removal, and vice versa).
  void EditHalfEdge(VertexId from, VertexId to, DeltaKind kind);

  // Ordered map so iteration (and therefore behavior) is deterministic.
  std::map<VertexId, VertexDelta> vertices_;
  int64_t triangle_delta_ = 0;
  uint64_t edges_added_ = 0;
  uint64_t edges_removed_ = 0;
  uint64_t batches_applied_ = 0;
};

}  // namespace opt

#endif  // OPT_GRAPH_DELTA_OVERLAY_H_
