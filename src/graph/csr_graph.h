// Compressed-sparse-row representation of a simple undirected graph with
// sorted adjacency lists. This is the in-memory substrate for the
// in-memory baselines and the input to the on-disk GraphStore builder.
#ifndef OPT_GRAPH_CSR_GRAPH_H_
#define OPT_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace opt {

using VertexId = uint32_t;
inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

/// Immutable undirected graph in CSR form. Adjacency lists are sorted by
/// id; every undirected edge {u, v} appears in both n(u) and n(v).
/// Successors(v) is the paper's n_succ(v): neighbors with id > v.
class CSRGraph {
 public:
  CSRGraph() = default;

  /// Takes ownership of CSR arrays. `offsets` has num_vertices()+1 entries;
  /// adjacency lists must already be sorted and simple (no self-loops, no
  /// duplicates). Computes per-vertex successor boundaries.
  CSRGraph(std::vector<uint64_t> offsets, std::vector<VertexId> adjacency);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges (each {u,v} counted once).
  uint64_t num_edges() const { return adjacency_.size() / 2; }

  /// Total adjacency entries (2 * num_edges()).
  uint64_t num_directed_edges() const { return adjacency_.size(); }

  uint32_t degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// n(v), sorted ascending.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// n_succ(v): neighbors with id > v, sorted ascending.
  std::span<const VertexId> Successors(VertexId v) const {
    return {adjacency_.data() + succ_offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// n_prec(v): neighbors with id < v, sorted ascending.
  std::span<const VertexId> Predecessors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + succ_offsets_[v]};
  }

  /// O(log degree) membership test for the undirected edge {u, v}.
  bool HasEdge(VertexId u, VertexId v) const;

  uint32_t max_degree() const { return max_degree_; }

  /// Sum over edges of min(|n(u)|, |n(v)|) — the arboricity-related bound
  /// of Chiba–Nishizeki (Eq. 1 in the paper). Useful for cost predictions.
  uint64_t ArboricityWork() const;

  /// Serializes to a simple binary file; see Load().
  Status Save(const std::string& path) const;
  static Result<CSRGraph> Load(const std::string& path);

  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<VertexId>& adjacency() const { return adjacency_; }

 private:
  std::vector<uint64_t> offsets_;       // size n+1
  std::vector<uint64_t> succ_offsets_;  // size n: first index of n_succ(v)
  std::vector<VertexId> adjacency_;     // size 2|E|
  uint32_t max_degree_ = 0;
};

}  // namespace opt

#endif  // OPT_GRAPH_CSR_GRAPH_H_
