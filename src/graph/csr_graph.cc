#include "graph/csr_graph.h"

#include <algorithm>
#include <cstdio>

#include "util/coding.h"

namespace opt {

CSRGraph::CSRGraph(std::vector<uint64_t> offsets,
                   std::vector<VertexId> adjacency)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {
  const VertexId n = num_vertices();
  succ_offsets_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto* begin = adjacency_.data() + offsets_[v];
    const auto* end = adjacency_.data() + offsets_[v + 1];
    succ_offsets_[v] = static_cast<uint64_t>(
        std::upper_bound(begin, end, v) - adjacency_.data());
    max_degree_ = std::max(max_degree_, degree(v));
  }
}

bool CSRGraph::HasEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  // Probe the smaller list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nu = Neighbors(u);
  return std::binary_search(nu.begin(), nu.end(), v);
}

uint64_t CSRGraph::ArboricityWork() const {
  uint64_t total = 0;
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : Successors(u)) {
      total += std::min(degree(u), degree(v));
    }
  }
  return total;
}

namespace {
constexpr uint64_t kMagic = 0x4F50544752415048ULL;  // "OPTGRAPH"
}

Status CSRGraph::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char header[24];
  EncodeFixed64(header, kMagic);
  EncodeFixed64(header + 8, num_vertices());
  EncodeFixed64(header + 16, adjacency_.size());
  bool ok = std::fwrite(header, 1, sizeof(header), f) == sizeof(header);
  ok = ok && std::fwrite(offsets_.data(), sizeof(uint64_t), offsets_.size(),
                         f) == offsets_.size();
  ok = ok && std::fwrite(adjacency_.data(), sizeof(VertexId),
                         adjacency_.size(), f) == adjacency_.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<CSRGraph> CSRGraph::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char header[24];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    std::fclose(f);
    return Status::Corruption("truncated graph header in " + path);
  }
  if (DecodeFixed64(header) != kMagic) {
    std::fclose(f);
    return Status::Corruption("bad graph magic in " + path);
  }
  const uint64_t n = DecodeFixed64(header + 8);
  const uint64_t m2 = DecodeFixed64(header + 16);
  std::vector<uint64_t> offsets(n + 1);
  std::vector<VertexId> adjacency(m2);
  bool ok = std::fread(offsets.data(), sizeof(uint64_t), offsets.size(), f) ==
            offsets.size();
  ok = ok && std::fread(adjacency.data(), sizeof(VertexId), adjacency.size(),
                        f) == adjacency.size();
  std::fclose(f);
  if (!ok) return Status::Corruption("truncated graph body in " + path);
  return CSRGraph(std::move(offsets), std::move(adjacency));
}

}  // namespace opt
