#include "graph/reorder.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"

namespace opt {

ReorderResult ApplyOrder(const CSRGraph& g,
                         const std::vector<VertexId>& old_to_new) {
  const VertexId n = g.num_vertices();
  ReorderResult result;
  result.old_to_new = old_to_new;
  result.new_to_old.resize(n);
  for (VertexId old_id = 0; old_id < n; ++old_id) {
    result.new_to_old[old_to_new[old_id]] = old_id;
  }

  std::vector<uint64_t> offsets(n + 1, 0);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    offsets[new_id + 1] =
        offsets[new_id] + g.degree(result.new_to_old[new_id]);
  }
  std::vector<VertexId> adjacency(g.num_directed_edges());
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    uint64_t cursor = offsets[new_id];
    for (VertexId old_nbr : g.Neighbors(result.new_to_old[new_id])) {
      adjacency[cursor++] = old_to_new[old_nbr];
    }
    std::sort(adjacency.begin() + static_cast<ptrdiff_t>(offsets[new_id]),
              adjacency.begin() + static_cast<ptrdiff_t>(offsets[new_id + 1]));
  }
  result.graph = CSRGraph(std::move(offsets), std::move(adjacency));
  return result;
}

ReorderResult DegreeOrder(const CSRGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return g.degree(a) < g.degree(b);
                   });
  std::vector<VertexId> old_to_new(n);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    old_to_new[by_degree[new_id]] = new_id;
  }
  return ApplyOrder(g, old_to_new);
}

ReorderResult DegeneracyOrder(const CSRGraph& g, uint32_t* degeneracy_out) {
  const VertexId n = g.num_vertices();
  // Matula–Beck bucket peeling in O(|V| + |E|).
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);

  std::vector<VertexId> removal_order;
  removal_order.reserve(n);
  std::vector<bool> removed(n, false);
  uint32_t degeneracy = 0;
  uint32_t level = 0;
  while (removal_order.size() < n) {
    while (level <= max_degree && buckets[level].empty()) ++level;
    if (level > max_degree) break;
    const VertexId v = buckets[level].back();
    buckets[level].pop_back();
    if (removed[v] || degree[v] != level) continue;  // stale entry
    removed[v] = true;
    degeneracy = std::max(degeneracy, level);
    removal_order.push_back(v);
    for (VertexId nbr : g.Neighbors(v)) {
      if (!removed[nbr] && degree[nbr] > 0) {
        --degree[nbr];
        buckets[degree[nbr]].push_back(nbr);
        if (degree[nbr] < level) level = degree[nbr];
      }
    }
  }
  if (degeneracy_out != nullptr) *degeneracy_out = degeneracy;

  // Assign ids in removal order: when v was peeled it had at most
  // `degeneracy` not-yet-removed neighbors, and exactly those get
  // higher ids — so |n_succ(v)| <= degeneracy for every vertex.
  std::vector<VertexId> old_to_new(n);
  for (VertexId i = 0; i < n; ++i) {
    old_to_new[removal_order[i]] = i;
  }
  return ApplyOrder(g, old_to_new);
}

ReorderResult RandomOrder(const CSRGraph& g, uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> old_to_new(n);
  std::iota(old_to_new.begin(), old_to_new.end(), 0);
  Random64 rng(seed);
  for (VertexId i = n; i > 1; --i) {
    std::swap(old_to_new[i - 1], old_to_new[rng.Uniform(i)]);
  }
  return ApplyOrder(g, old_to_new);
}

}  // namespace opt
