#include "graph/hub_bitmap.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <mutex>

namespace opt {

namespace {

/// The degree at the given percentile of the histogram (nearest-rank on
/// the sorted copy). Empty histogram → 0.
uint32_t DegreeAtPercentile(std::span<const uint32_t> degrees, double pct) {
  if (degrees.empty()) return 0;
  std::vector<uint32_t> sorted(degrees.begin(), degrees.end());
  const double clamped = std::min(100.0, std::max(0.0, pct));
  size_t rank = static_cast<size_t>(clamped / 100.0 *
                                    static_cast<double>(sorted.size() - 1));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  std::nth_element(sorted.begin(), sorted.begin() + rank, sorted.end());
  return sorted[rank];
}

}  // namespace

Result<HubSplitSpec> HubSplitSpec::Parse(const std::string& text) {
  HubSplitSpec spec;
  if (text == "off" || text == "none") {
    spec.mode = Mode::kOff;
    return spec;
  }
  if (text == "auto") {
    spec.mode = Mode::kAuto;
    return spec;
  }
  if (text.size() > 1 && text[0] == 'p') {
    char* end = nullptr;
    const double pct = std::strtod(text.c_str() + 1, &end);
    if (end != nullptr && *end == '\0' && pct > 0.0 && pct <= 100.0) {
      spec.mode = Mode::kPercentile;
      spec.percentile = pct;
      return spec;
    }
    return Status::InvalidArgument("bad hub_split percentile '" + text +
                                   "' (expected p1..p100, e.g. p99)");
  }
  if (!text.empty() &&
      std::all_of(text.begin(), text.end(),
                  [](unsigned char c) { return std::isdigit(c); })) {
    const unsigned long long value = std::strtoull(text.c_str(), nullptr, 10);
    if (value < kNoHubThreshold) {
      spec.mode = Mode::kDegree;
      spec.degree = static_cast<uint32_t>(value);
      return spec;
    }
  }
  return Status::InvalidArgument(
      "bad hub_split '" + text +
      "' (expected off|auto|pNN|<degree threshold>)");
}

std::string HubSplitSpec::ToString() const {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kAuto:
      return "auto";
    case Mode::kPercentile: {
      std::string s = "p" + std::to_string(percentile);
      // Trim trailing zeros / dot from the double rendering (p99, p99.9).
      while (!s.empty() && s.back() == '0') s.pop_back();
      if (!s.empty() && s.back() == '.') s.pop_back();
      return s;
    }
    case Mode::kDegree:
      return std::to_string(degree);
  }
  return "?";
}

uint32_t ResolveHubDegreeThreshold(const HubSplitSpec& spec,
                                   std::span<const uint32_t> degrees,
                                   VertexId universe) {
  switch (spec.mode) {
    case HubSplitSpec::Mode::kOff:
      return kNoHubThreshold;
    case HubSplitSpec::Mode::kDegree:
      return spec.degree;
    case HubSplitSpec::Mode::kPercentile:
      return DegreeAtPercentile(degrees, spec.percentile);
    case HubSplitSpec::Mode::kAuto: {
      uint32_t threshold = DegreeAtPercentile(degrees, 99.0);
      threshold = std::max(threshold, universe / 64);
      threshold = std::max(threshold, 8u);
      return threshold;
    }
  }
  return kNoHubThreshold;
}

void HubBitmapIndex::Reset(VertexId universe, uint32_t degree_threshold) {
  universe_ = universe;
  degree_threshold_ = degree_threshold;
  slot_.assign(universe, -1);
  bitmaps_.clear();
}

void HubBitmapIndex::Add(VertexId v, std::span<const VertexId> full_adjacency) {
  if (v >= universe_) return;
  if (full_adjacency.size() < degree_threshold_) return;
  const int32_t existing = slot_[v];
  DenseBitmap* bitmap;
  if (existing >= 0) {
    bitmap = &bitmaps_[static_cast<size_t>(existing)];
    bitmap->Reset(universe_);
  } else {
    slot_[v] = static_cast<int32_t>(bitmaps_.size());
    bitmap = &bitmaps_.emplace_back(universe_);
  }
  bitmap->SetFrom(full_adjacency);
}

void HubBitmapIndex::Clear() {
  std::fill(slot_.begin(), slot_.end(), -1);
  bitmaps_.clear();
}

size_t HubBitmapIndex::memory_bytes() const {
  size_t total = slot_.capacity() * sizeof(int32_t);
  for (const DenseBitmap& b : bitmaps_) total += b.memory_bytes();
  return total;
}

HubBitmapIndex HubBitmapIndex::Build(const CSRGraph& graph,
                                     const HubSplitSpec& spec) {
  const VertexId n = graph.num_vertices();
  std::vector<uint32_t> degrees(n);
  for (VertexId v = 0; v < n; ++v) degrees[v] = graph.degree(v);
  HubBitmapIndex index(n, ResolveHubDegreeThreshold(spec, degrees, n));
  if (index.degree_threshold() == kNoHubThreshold) return index;
  for (VertexId v = 0; v < n; ++v) {
    if (degrees[v] >= index.degree_threshold()) {
      index.Add(v, graph.Neighbors(v));
    }
  }
  return index;
}

// ---------------------------------------------------------------------------
// Routing scope + routed entry points.
// ---------------------------------------------------------------------------

namespace {
thread_local const HubBitmapIndex* t_hub_index = nullptr;
}  // namespace

HubRoutingScope::HubRoutingScope(const HubBitmapIndex* index)
    : prev_(t_hub_index) {
  t_hub_index = index;
}

HubRoutingScope::~HubRoutingScope() { t_hub_index = prev_; }

const HubBitmapIndex* CurrentHubBitmapIndex() { return t_hub_index; }

namespace {

/// Narrows `probe` to the value range of the hub's span: bitmap
/// membership means "in the hub's FULL adjacency", so values outside
/// [hub_span.front(), hub_span.back()] must not be probed.
std::span<const VertexId> ClampToRange(std::span<const VertexId> probe,
                                       VertexId lo, VertexId hi) {
  const VertexId* first =
      std::lower_bound(probe.data(), probe.data() + probe.size(), lo);
  const VertexId* last =
      std::upper_bound(first, probe.data() + probe.size(), hi);
  return {first, last};
}

}  // namespace

uint64_t IntersectCount(VertexId va, VertexId vb, std::span<const VertexId> a,
                        std::span<const VertexId> b) {
  if (a.empty() || b.empty()) return 0;
  const IntersectKernel kernel = ActiveIntersectKernel();
  const HubBitmapIndex* index;
  if (IsBitmapKernel(kernel) && (index = CurrentHubBitmapIndex()) != nullptr) {
    const DenseBitmap* ba = index->Get(va);
    const DenseBitmap* bb = index->Get(vb);
    if (ba != nullptr && bb != nullptr) {
      return IntersectCountBitmapDenseWith(
          kernel, *ba, *bb, std::max(a.front(), b.front()),
          std::min(a.back(), b.back()));
    }
    if (ba != nullptr || bb != nullptr) {
      const DenseBitmap* dense = ba != nullptr ? ba : bb;
      const std::span<const VertexId> hub_span = ba != nullptr ? a : b;
      const std::span<const VertexId> probe = ba != nullptr ? b : a;
      return IntersectCountBitmapSparseWith(
          kernel, ClampToRange(probe, hub_span.front(), hub_span.back()),
          *dense);
    }
  }
  return IntersectCount(a, b);
}

size_t Intersect(VertexId va, VertexId vb, std::span<const VertexId> a,
                 std::span<const VertexId> b, std::vector<VertexId>* out) {
  if (a.empty() || b.empty()) return 0;
  const IntersectKernel kernel = ActiveIntersectKernel();
  const HubBitmapIndex* index;
  if (IsBitmapKernel(kernel) && (index = CurrentHubBitmapIndex()) != nullptr) {
    const DenseBitmap* ba = index->Get(va);
    const DenseBitmap* bb = index->Get(vb);
    if (ba != nullptr && bb != nullptr) {
      return IntersectBitmapDenseWith(kernel, *ba, *bb,
                                      std::max(a.front(), b.front()),
                                      std::min(a.back(), b.back()), out);
    }
    if (ba != nullptr || bb != nullptr) {
      const DenseBitmap* dense = ba != nullptr ? ba : bb;
      const std::span<const VertexId> hub_span = ba != nullptr ? a : b;
      const std::span<const VertexId> probe = ba != nullptr ? b : a;
      return IntersectBitmapSparseWith(
          kernel, ClampToRange(probe, hub_span.front(), hub_span.back()),
          *dense, out);
    }
  }
  return Intersect(a, b, out);
}

// ---------------------------------------------------------------------------
// Process-wide default split.
// ---------------------------------------------------------------------------

namespace {
std::mutex g_split_mutex;
HubSplitSpec g_default_split;  // default-constructed: auto
}  // namespace

void SetDefaultHubSplit(const HubSplitSpec& spec) {
  std::lock_guard<std::mutex> lock(g_split_mutex);
  g_default_split = spec;
}

HubSplitSpec DefaultHubSplit() {
  std::lock_guard<std::mutex> lock(g_split_mutex);
  return g_default_split;
}

}  // namespace opt
