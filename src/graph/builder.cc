#include "graph/builder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace opt {

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

CSRGraph GraphBuilder::Build() && {
  return FromEdges(std::move(edges_));
}

CSRGraph GraphBuilder::FromEdges(std::vector<Edge> edges) {
  // Normalize: {min, max}, drop self-loops.
  size_t w = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    auto [u, v] = edges[i];
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges[w++] = {u, v};
  }
  edges.resize(w);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  VertexId max_id = 0;
  for (const auto& [u, v] : edges) max_id = std::max(max_id, v);
  const VertexId n = edges.empty() ? 0 : max_id + 1;

  std::vector<uint64_t> offsets(n + 1, 0);
  for (const auto& [u, v] : edges) {
    offsets[u + 1]++;
    offsets[v + 1]++;
  }
  for (VertexId i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  std::vector<VertexId> adjacency(edges.size() * 2);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    adjacency[cursor[u]++] = v;
    adjacency[cursor[v]++] = u;
  }
  // Each list is already sorted by construction order? No: u receives its
  // higher neighbors in edge-sorted order (sorted), but v receives lower
  // neighbors interleaved with higher ones. Sort each list.
  for (VertexId i = 0; i < n; ++i) {
    std::sort(adjacency.begin() + static_cast<ptrdiff_t>(offsets[i]),
              adjacency.begin() + static_cast<ptrdiff_t>(offsets[i + 1]));
  }
  return CSRGraph(std::move(offsets), std::move(adjacency));
}

Result<CSRGraph> GraphBuilder::FromEdgeListFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  GraphBuilder builder;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#' || line[0] == '\n' || line[0] == '%') continue;
    unsigned long long u, v;
    if (std::sscanf(line, "%llu %llu", &u, &v) != 2) {
      std::fclose(f);
      return Status::Corruption("malformed edge list line: " +
                                std::string(line));
    }
    if (u > kInvalidVertex - 1 || v > kInvalidVertex - 1) {
      std::fclose(f);
      return Status::OutOfRange("vertex id exceeds 32-bit range");
    }
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  std::fclose(f);
  return std::move(builder).Build();
}

}  // namespace opt
