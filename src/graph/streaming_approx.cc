#include "graph/streaming_approx.h"

#include <algorithm>

namespace opt {

TriestEstimator::TriestEstimator(uint64_t reservoir_edges, uint64_t seed)
    : capacity_(std::max<uint64_t>(reservoir_edges, 6)), rng_(seed) {
  reservoir_.reserve(capacity_);
}

double TriestEstimator::ClosedWedgeWeight(VertexId u, VertexId v) const {
  const auto iu = adjacency_.find(u);
  const auto iv = adjacency_.find(v);
  if (iu == adjacency_.end() || iv == adjacency_.end()) return 0;
  // Probe the smaller sampled neighborhood against the larger.
  const std::vector<VertexId>& small =
      iu->second.size() <= iv->second.size() ? iu->second : iv->second;
  const std::vector<VertexId>& large =
      iu->second.size() <= iv->second.size() ? iv->second : iu->second;
  uint64_t closed = 0;
  for (VertexId w : small) {
    if (std::find(large.begin(), large.end(), w) != large.end()) ++closed;
  }
  if (closed == 0) return 0;
  // IMPR weighting: each closing wedge was observed with probability
  // (M/(t-1)) * ((M-1)/(t-2)) of both its edges surviving; weight by
  // the inverse, clamped at 1 while the reservoir still holds the
  // whole stream (estimate stays exact there).
  const double t = static_cast<double>(stream_length_);
  const double m = static_cast<double>(capacity_);
  const double eta = std::max(1.0, ((t - 1.0) * (t - 2.0)) / (m * (m - 1.0)));
  return eta * static_cast<double>(closed);
}

void TriestEstimator::InsertSample(VertexId u, VertexId v) {
  reservoir_.push_back({u, v});
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
}

void TriestEstimator::EvictSample(size_t slot) {
  const ReservoirEdge victim = reservoir_[slot];
  reservoir_[slot] = reservoir_.back();
  reservoir_.pop_back();
  auto drop_half = [this](VertexId from, VertexId to) {
    auto it = adjacency_.find(from);
    auto pos = std::find(it->second.begin(), it->second.end(), to);
    *pos = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) adjacency_.erase(it);
  };
  drop_half(victim.u, victim.v);
  drop_half(victim.v, victim.u);
}

void TriestEstimator::OnInsert(VertexId u, VertexId v) {
  ++stream_length_;
  // IMPR counts the arriving edge's closed wedges *before* sampling it,
  // so every stream edge contributes regardless of whether it lands in
  // the reservoir.
  estimate_ += ClosedWedgeWeight(u, v);
  if (reservoir_.size() < capacity_) {
    InsertSample(u, v);
    return;
  }
  // Standard reservoir step: keep with probability M/t.
  if (rng_.Uniform(stream_length_) < capacity_) {
    EvictSample(static_cast<size_t>(rng_.Uniform(reservoir_.size())));
    InsertSample(u, v);
  }
}

}  // namespace opt
