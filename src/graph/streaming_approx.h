// Sampling-based approximate triangle counter for firehose-rate edge
// streams (TRIÈST-IMPR, De Stefani et al., KDD'16 — the reservoir
// descendant of the Tangwongsan/Pavan/Tirthapura neighborhood-sampling
// streaming counters). Maintains an M-edge uniform reservoir over the
// insert stream; every arriving edge contributes its reservoir-closed
// wedge count, weighted by the inverse probability that both wedge
// edges are still sampled. Memory is O(M) regardless of stream length;
// the estimate is exact while the stream fits the reservoir and
// unbiased beyond it.
//
// Insert-only: edge removals are outside the IMPR scheme (the FD
// variant pairs removals against samples), so the first removal taints
// the estimator and it reports not-valid until reset. The exact
// DeltaOverlay path is removal-complete; this counter exists for
// append-heavy feeds where running the exact intersection per delta is
// too slow.
#ifndef OPT_GRAPH_STREAMING_APPROX_H_
#define OPT_GRAPH_STREAMING_APPROX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.h"
#include "util/random.h"

namespace opt {

class TriestEstimator {
 public:
  /// `reservoir_edges` is M; `seed` makes eviction deterministic.
  TriestEstimator(uint64_t reservoir_edges, uint64_t seed);

  /// Feeds one inserted edge {u, v}. Self-loops and duplicates should
  /// be filtered by the caller (the delta-validation path already
  /// rejects them); feeding them anyway only degrades the estimate.
  void OnInsert(VertexId u, VertexId v);

  /// Marks the estimator invalid (first removal seen). Idempotent.
  void Taint() { tainted_ = true; }

  /// False once tainted by a removal.
  bool valid() const { return !tainted_; }

  /// Estimated triangles *among streamed edges* (not including the
  /// base graph). Exact while stream_length() <= reservoir capacity.
  double estimate() const { return estimate_; }

  uint64_t stream_length() const { return stream_length_; }
  uint64_t reservoir_size() const { return reservoir_.size(); }
  uint64_t reservoir_capacity() const { return capacity_; }

 private:
  struct ReservoirEdge {
    VertexId u;
    VertexId v;
  };

  /// Weighted count of wedges u–w–v closed inside the reservoir.
  double ClosedWedgeWeight(VertexId u, VertexId v) const;
  void InsertSample(VertexId u, VertexId v);
  void EvictSample(size_t slot);

  const uint64_t capacity_;
  Random64 rng_;
  uint64_t stream_length_ = 0;
  double estimate_ = 0;
  bool tainted_ = false;
  std::vector<ReservoirEdge> reservoir_;
  /// Reservoir adjacency: sampled neighbors per vertex (unsorted, small).
  std::unordered_map<VertexId, std::vector<VertexId>> adjacency_;
};

}  // namespace opt

#endif  // OPT_GRAPH_STREAMING_APPROX_H_
