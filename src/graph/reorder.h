// Vertex-id remapping. The degree-based heuristic of Schank & Wagner
// (id(u) < id(v) iff degree(u) < degree(v), ties by old id) makes
// |n_succ(v)| small for high-degree vertices and speeds up ordered
// triangulation by orders of magnitude on power-law graphs (paper §2.2).
#ifndef OPT_GRAPH_REORDER_H_
#define OPT_GRAPH_REORDER_H_

#include <vector>

#include "graph/csr_graph.h"

namespace opt {

struct ReorderResult {
  CSRGraph graph;                     // relabeled graph
  std::vector<VertexId> new_to_old;   // new id -> original id
  std::vector<VertexId> old_to_new;   // original id -> new id
};

/// Relabels vertices so ids ascend with degree (the paper's heuristic).
ReorderResult DegreeOrder(const CSRGraph& g);

/// Relabels vertices with an arbitrary permutation `old_to_new`.
ReorderResult ApplyOrder(const CSRGraph& g,
                         const std::vector<VertexId>& old_to_new);

/// Random permutation (used to show the heuristic's benefit in ablations).
ReorderResult RandomOrder(const CSRGraph& g, uint64_t seed);

/// Degeneracy (k-core peeling) order: repeatedly remove a minimum-degree
/// vertex; ids are assigned in *reverse* removal order, so every vertex
/// has at most `degeneracy` higher-id neighbors — an alternative to the
/// degree heuristic with a worst-case |n_succ| guarantee. If
/// `degeneracy_out` is non-null it receives the graph's degeneracy.
ReorderResult DegeneracyOrder(const CSRGraph& g,
                              uint32_t* degeneracy_out = nullptr);

}  // namespace opt

#endif  // OPT_GRAPH_REORDER_H_
