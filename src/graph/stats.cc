#include "graph/stats.h"

#include <cstdio>

namespace opt {

GraphStats ComputeStats(const CSRGraph& g) {
  GraphStats stats;
  stats.num_vertices = g.num_vertices();
  stats.num_edges = g.num_edges();
  stats.max_degree = g.max_degree();
  stats.avg_degree = stats.num_vertices == 0
                         ? 0.0
                         : 2.0 * static_cast<double>(stats.num_edges) /
                               static_cast<double>(stats.num_vertices);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const uint64_t d = g.degree(v);
    stats.degree_histogram.Add(d);
    stats.wedge_count += d * (d - 1) / 2;
  }
  return stats;
}

double AverageClusteringCoefficient(
    const CSRGraph& g, const std::vector<uint64_t>& triangles_per_vertex) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0.0;
  double sum = 0.0;
  VertexId counted = 0;
  for (VertexId v = 0; v < n; ++v) {
    const uint64_t d = g.degree(v);
    if (d < 2) continue;
    const double wedges = static_cast<double>(d) * (d - 1) / 2.0;
    sum += static_cast<double>(triangles_per_vertex[v]) / wedges;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double Transitivity(const CSRGraph& g, uint64_t num_triangles) {
  uint64_t wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(num_triangles) /
         static_cast<double>(wedges);
}

std::string StatsSummary(const GraphStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "|V|=%u |E|=%llu max_deg=%u avg_deg=%.2f wedges=%llu",
                stats.num_vertices,
                static_cast<unsigned long long>(stats.num_edges),
                stats.max_degree, stats.avg_degree,
                static_cast<unsigned long long>(stats.wedge_count));
  return buf;
}

}  // namespace opt
