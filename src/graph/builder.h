// Turns raw edge lists into simple undirected CSR graphs: removes
// self-loops and duplicate edges, symmetrizes, sorts adjacency lists.
#ifndef OPT_GRAPH_BUILDER_H_
#define OPT_GRAPH_BUILDER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"
#include "util/status.h"

namespace opt {

using Edge = std::pair<VertexId, VertexId>;

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Records an undirected edge {u, v}. Self-loops are dropped silently;
  /// duplicates are removed at Build() time.
  void AddEdge(VertexId u, VertexId v);

  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }
  size_t edge_count() const { return edges_.size(); }

  /// Builds the CSR graph. The vertex id space is [0, max_id] — isolated
  /// ids in between get empty adjacency lists. Consumes the builder.
  CSRGraph Build() &&;

  /// Convenience: builds directly from an edge vector.
  static CSRGraph FromEdges(std::vector<Edge> edges);

  /// Parses a whitespace-separated text edge list ("u v" per line;
  /// '#'-prefixed lines are comments).
  static Result<CSRGraph> FromEdgeListFile(const std::string& path);

 private:
  std::vector<Edge> edges_;
};

}  // namespace opt

#endif  // OPT_GRAPH_BUILDER_H_
