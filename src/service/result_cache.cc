#include "service/result_cache.h"

namespace opt {

ResultCache::ResultCache(size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::optional<CachedCount> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second.value;
}

void ResultCache::Insert(const std::string& key, const std::string& graph,
                         const CachedCount& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.insertions;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value = value;
    it->second.graph = graph;
    return;
  }
  while (entries_.size() >= max_entries_) {
    const std::string& oldest = insertion_order_.front();
    entries_.erase(oldest);
    insertion_order_.pop_front();
  }
  insertion_order_.push_back(key);
  Entry entry;
  entry.value = value;
  entry.graph = graph;
  entry.order_pos = std::prev(insertion_order_.end());
  entries_.emplace(key, std::move(entry));
}

void ResultCache::InvalidateGraph(const std::string& graph) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.graph == graph) {
      insertion_order_.erase(it->second.order_pos);
      it = entries_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace opt
