#include "service/wire.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

#include "util/coding.h"

namespace opt {

namespace {

Status ReadFull(int fd, char* buffer, size_t length, bool* clean_eof) {
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ::read(fd, buffer + done, length - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (clean_eof != nullptr && done == 0) {
        *clean_eof = true;
        return Status::NotFound("connection closed");
      }
      return Status::IOError("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("read: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status WriteFull(int fd, const char* buffer, size_t length) {
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ::write(fd, buffer + done, length - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("write: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

void PutU32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutU64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutDouble(std::string* dst, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(dst, bits);
}

void PutString(std::string* dst, std::string_view value) {
  PutU32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

Status PayloadReader::GetU8(uint8_t* value) {
  if (data_.size() - pos_ < 1) {
    return Status::Corruption("payload truncated reading u8");
  }
  *value = static_cast<uint8_t>(data_[pos_]);
  pos_ += 1;
  return Status::OK();
}

Status PayloadReader::GetU32(uint32_t* value) {
  if (data_.size() - pos_ < 4) {
    return Status::Corruption("payload truncated reading u32");
  }
  *value = DecodeFixed32(data_.data() + pos_);
  pos_ += 4;
  return Status::OK();
}

Status PayloadReader::GetU64(uint64_t* value) {
  if (data_.size() - pos_ < 8) {
    return Status::Corruption("payload truncated reading u64");
  }
  *value = DecodeFixed64(data_.data() + pos_);
  pos_ += 8;
  return Status::OK();
}

Status PayloadReader::GetDouble(double* value) {
  uint64_t bits;
  OPT_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(value, &bits, sizeof(bits));
  return Status::OK();
}

Status PayloadReader::GetString(std::string* value) {
  uint32_t length;
  OPT_RETURN_IF_ERROR(GetU32(&length));
  if (data_.size() - pos_ < length) {
    return Status::Corruption("payload truncated reading string");
  }
  value->assign(data_.data() + pos_, length);
  pos_ += length;
  return Status::OK();
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string payload;
  PutString(&payload, request.graph);
  PutU32(&payload, request.memory_pages);
  PutU32(&payload, request.num_threads);
  PutU64(&payload, request.deadline_millis);
  PutU64(&payload, request.trace_id);
  PutU64(&payload, request.parent_span_id);
  return payload;
}

Status DecodeQueryRequest(std::string_view payload, QueryRequest* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetString(&out->graph));
  OPT_RETURN_IF_ERROR(reader.GetU32(&out->memory_pages));
  OPT_RETURN_IF_ERROR(reader.GetU32(&out->num_threads));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->deadline_millis));
  // Pre-tracing frames end here and decode as untraced.
  out->trace_id = 0;
  out->parent_span_id = 0;
  if (reader.AtEnd()) return Status::OK();
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->trace_id));
  return reader.GetU64(&out->parent_span_id);
}

std::string EncodeCountResult(const CountResult& result) {
  std::string payload;
  PutU64(&payload, result.triangles);
  PutDouble(&payload, result.seconds);
  payload.push_back(static_cast<char>(result.source));
  PutU64(&payload, result.pool_hits);
  PutU64(&payload, result.pages_read);
  PutU32(&payload, result.iterations);
  PutU64(&payload, result.partial_shards);
  PutU32(&payload, result.num_shards);
  return payload;
}

Status DecodeCountResult(std::string_view payload, CountResult* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->triangles));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->seconds));
  OPT_RETURN_IF_ERROR(reader.GetU8(&out->source));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->pool_hits));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->pages_read));
  OPT_RETURN_IF_ERROR(reader.GetU32(&out->iterations));
  // Pre-router frames end here; the sharding tail decodes as "complete".
  out->partial_shards = 0;
  out->num_shards = 0;
  if (reader.AtEnd()) return Status::OK();
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->partial_shards));
  return reader.GetU32(&out->num_shards);
}

std::string EncodeLoadGraphRequest(const LoadGraphRequest& request) {
  std::string payload;
  PutString(&payload, request.name);
  PutString(&payload, request.base_path);
  return payload;
}

Status DecodeLoadGraphRequest(std::string_view payload,
                              LoadGraphRequest* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetString(&out->name));
  return reader.GetString(&out->base_path);
}

std::string EncodeMutateRequest(const MutateRequest& request) {
  std::string payload;
  PutString(&payload, request.graph);
  PutU32(&payload, static_cast<uint32_t>(request.edges.size()));
  for (const auto& [u, v] : request.edges) {
    PutU32(&payload, u);
    PutU32(&payload, v);
  }
  PutU64(&payload, request.trace_id);
  PutU64(&payload, request.parent_span_id);
  return payload;
}

Status DecodeMutateRequest(std::string_view payload, MutateRequest* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetString(&out->graph));
  uint32_t count;
  OPT_RETURN_IF_ERROR(reader.GetU32(&count));
  // The count is attacker-controlled; bound it by the bytes actually
  // present (8 per edge) before reserving, or a ~14-byte frame claiming
  // 2^32 edges forces a multi-GB allocation.
  if (count > reader.remaining() / 8) {
    return Status::InvalidArgument(
        "mutate batch claims " + std::to_string(count) + " edges but only " +
        std::to_string(reader.remaining()) + " payload bytes follow");
  }
  out->edges.clear();
  out->edges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    VertexId u, v;
    OPT_RETURN_IF_ERROR(reader.GetU32(&u));
    OPT_RETURN_IF_ERROR(reader.GetU32(&v));
    out->edges.emplace_back(u, v);
  }
  out->trace_id = 0;
  out->parent_span_id = 0;
  if (reader.AtEnd()) return Status::OK();
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->trace_id));
  return reader.GetU64(&out->parent_span_id);
}

std::string EncodeMutateResult(const MutateResult& result) {
  std::string payload;
  PutU64(&payload, result.epoch);
  PutU64(&payload, static_cast<uint64_t>(result.batch_triangle_delta));
  PutU64(&payload, static_cast<uint64_t>(result.total_triangle_delta));
  PutU64(&payload, result.edges_applied);
  PutDouble(&payload, result.seconds);
  payload.push_back(static_cast<char>(result.approx_valid));
  PutDouble(&payload, result.approx_triangles);
  PutU64(&payload, result.partial_shards);
  PutU32(&payload, result.num_shards);
  return payload;
}

Status DecodeMutateResult(std::string_view payload, MutateResult* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->epoch));
  uint64_t bits;
  OPT_RETURN_IF_ERROR(reader.GetU64(&bits));
  out->batch_triangle_delta = static_cast<int64_t>(bits);
  OPT_RETURN_IF_ERROR(reader.GetU64(&bits));
  out->total_triangle_delta = static_cast<int64_t>(bits);
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->edges_applied));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->seconds));
  OPT_RETURN_IF_ERROR(reader.GetU8(&out->approx_valid));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->approx_triangles));
  out->partial_shards = 0;
  out->num_shards = 0;
  if (reader.AtEnd()) return Status::OK();
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->partial_shards));
  return reader.GetU32(&out->num_shards);
}

std::string EncodeSubscribeCountRequest(
    const SubscribeCountRequest& request) {
  std::string payload;
  PutString(&payload, request.graph);
  PutU64(&payload, request.after_epoch);
  PutU64(&payload, request.timeout_millis);
  PutU64(&payload, request.trace_id);
  PutU64(&payload, request.parent_span_id);
  return payload;
}

Status DecodeSubscribeCountRequest(std::string_view payload,
                                   SubscribeCountRequest* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetString(&out->graph));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->after_epoch));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->timeout_millis));
  out->trace_id = 0;
  out->parent_span_id = 0;
  if (reader.AtEnd()) return Status::OK();
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->trace_id));
  return reader.GetU64(&out->parent_span_id);
}

std::string EncodeSubscribeCountResult(const SubscribeCountResult& result) {
  std::string payload;
  PutU64(&payload, result.epoch);
  payload.push_back(static_cast<char>(result.timed_out));
  payload.push_back(static_cast<char>(result.exact_known));
  PutU64(&payload, result.triangles);
  PutU64(&payload, static_cast<uint64_t>(result.delta_triangles));
  PutU64(&payload, result.edges_added);
  PutU64(&payload, result.edges_removed);
  payload.push_back(static_cast<char>(result.approx_valid));
  PutDouble(&payload, result.approx_triangles);
  PutU64(&payload, result.partial_shards);
  PutU32(&payload, result.num_shards);
  return payload;
}

Status DecodeSubscribeCountResult(std::string_view payload,
                                  SubscribeCountResult* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->epoch));
  OPT_RETURN_IF_ERROR(reader.GetU8(&out->timed_out));
  OPT_RETURN_IF_ERROR(reader.GetU8(&out->exact_known));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->triangles));
  uint64_t bits;
  OPT_RETURN_IF_ERROR(reader.GetU64(&bits));
  out->delta_triangles = static_cast<int64_t>(bits);
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->edges_added));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->edges_removed));
  OPT_RETURN_IF_ERROR(reader.GetU8(&out->approx_valid));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->approx_triangles));
  out->partial_shards = 0;
  out->num_shards = 0;
  if (reader.AtEnd()) return Status::OK();
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->partial_shards));
  return reader.GetU32(&out->num_shards);
}

std::string EncodeError(const Status& status) {
  return EncodeError(status, {});
}

std::string EncodeError(const Status& status,
                        const std::vector<FlightEvent>& events,
                        uint64_t trace_id) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(status.code()));
  PutString(&payload, status.message());
  PutU32(&payload, static_cast<uint32_t>(events.size()));
  for (const FlightEvent& event : events) {
    PutU64(&payload, event.t_micros);
    payload.push_back(static_cast<char>(event.type));
    PutU64(&payload, event.a);
    PutU64(&payload, event.b);
  }
  PutU64(&payload, trace_id);
  return payload;
}

Status DecodeError(std::string_view payload, ErrorResult* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetU32(&out->code));
  OPT_RETURN_IF_ERROR(reader.GetString(&out->message));
  out->events.clear();
  out->trace_id = 0;
  // A payload ending here came from a server predating the flight
  // recorder — code + message are the whole answer.
  if (reader.AtEnd()) return Status::OK();
  uint32_t num_events;
  OPT_RETURN_IF_ERROR(reader.GetU32(&num_events));
  out->events.reserve(num_events);
  for (uint32_t i = 0; i < num_events; ++i) {
    FlightEvent event;
    uint8_t type;
    OPT_RETURN_IF_ERROR(reader.GetU64(&event.t_micros));
    OPT_RETURN_IF_ERROR(reader.GetU8(&type));
    event.type = static_cast<FlightEventType>(type);
    OPT_RETURN_IF_ERROR(reader.GetU64(&event.a));
    OPT_RETURN_IF_ERROR(reader.GetU64(&event.b));
    out->events.push_back(event);
  }
  // Pre-tracing servers end after the flight events.
  out->trace_id = 0;
  if (reader.AtEnd()) return Status::OK();
  return reader.GetU64(&out->trace_id);
}

std::string EncodeProfileResult(const ProfileResult& result) {
  std::string payload;
  PutU64(&payload, result.triangles);
  PutDouble(&payload, result.seconds);
  PutU32(&payload, result.iterations);
  PutU64(&payload, result.period_micros);
  PutU64(&payload, result.samples);
  PutU64(&payload, result.micro_overlap_samples);
  PutU64(&payload, result.macro_overlap_samples);
  PutU64(&payload, result.cpu_active_samples);
  PutU64(&payload, result.io_inflight_samples);
  PutU64(&payload, result.stalled_samples);
  PutU64(&payload, result.morph_events);
  PutU32(&payload, static_cast<uint32_t>(result.role_samples.size()));
  for (uint64_t samples : result.role_samples) PutU64(&payload, samples);
  PutDouble(&payload, result.micro_overlap);
  PutDouble(&payload, result.macro_overlap);
  PutDouble(&payload, result.cost_c_seconds_per_page);
  PutU64(&payload, result.delta_in_pages);
  PutU64(&payload, result.delta_ex_pages);
  PutDouble(&payload, result.cost_ideal_seconds);
  PutDouble(&payload, result.cost_predicted_seconds);
  PutDouble(&payload, result.cost_measured_seconds);
  PutDouble(&payload, result.cost_residual_seconds);
  return payload;
}

Status DecodeProfileResult(std::string_view payload, ProfileResult* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->triangles));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->seconds));
  OPT_RETURN_IF_ERROR(reader.GetU32(&out->iterations));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->period_micros));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->samples));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->micro_overlap_samples));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->macro_overlap_samples));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->cpu_active_samples));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->io_inflight_samples));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->stalled_samples));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->morph_events));
  uint32_t num_roles;
  OPT_RETURN_IF_ERROR(reader.GetU32(&num_roles));
  out->role_samples.clear();
  out->role_samples.reserve(num_roles);
  for (uint32_t i = 0; i < num_roles; ++i) {
    uint64_t samples;
    OPT_RETURN_IF_ERROR(reader.GetU64(&samples));
    out->role_samples.push_back(samples);
  }
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->micro_overlap));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->macro_overlap));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->cost_c_seconds_per_page));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->delta_in_pages));
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->delta_ex_pages));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->cost_ideal_seconds));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->cost_predicted_seconds));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->cost_measured_seconds));
  return reader.GetDouble(&out->cost_residual_seconds);
}

std::string EncodeListBatch(const ListBatch& batch) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(batch.records.size()));
  for (const ListBatch::Record& record : batch.records) {
    PutU32(&payload, record.u);
    PutU32(&payload, record.v);
    PutU32(&payload, static_cast<uint32_t>(record.ws.size()));
    for (VertexId w : record.ws) PutU32(&payload, w);
  }
  return payload;
}

Status DecodeListBatch(std::string_view payload, ListBatch* out) {
  PayloadReader reader(payload);
  uint32_t count;
  OPT_RETURN_IF_ERROR(reader.GetU32(&count));
  out->records.clear();
  out->records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ListBatch::Record record;
    OPT_RETURN_IF_ERROR(reader.GetU32(&record.u));
    OPT_RETURN_IF_ERROR(reader.GetU32(&record.v));
    uint32_t k;
    OPT_RETURN_IF_ERROR(reader.GetU32(&k));
    record.ws.reserve(k);
    for (uint32_t j = 0; j < k; ++j) {
      VertexId w;
      OPT_RETURN_IF_ERROR(reader.GetU32(&w));
      record.ws.push_back(w);
    }
    out->records.push_back(std::move(record));
  }
  return Status::OK();
}

std::string EncodeListEnd(const ListEnd& end) {
  std::string payload;
  PutU64(&payload, end.triangles);
  PutDouble(&payload, end.seconds);
  PutU64(&payload, end.partial_shards);
  PutU32(&payload, end.num_shards);
  return payload;
}

Status DecodeListEnd(std::string_view payload, ListEnd* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->triangles));
  OPT_RETURN_IF_ERROR(reader.GetDouble(&out->seconds));
  out->partial_shards = 0;
  out->num_shards = 0;
  if (reader.AtEnd()) return Status::OK();
  OPT_RETURN_IF_ERROR(reader.GetU64(&out->partial_shards));
  return reader.GetU32(&out->num_shards);
}

std::string EncodeStatsResult(const StatsResult& stats) {
  std::string payload;
  PutString(&payload, stats.text);
  PutU32(&payload, static_cast<uint32_t>(stats.histograms.size()));
  for (const StatsHistogram& histogram : stats.histograms) {
    PutString(&payload, histogram.name);
    PutU64(&payload, histogram.count);
    PutU64(&payload, histogram.min);
    PutU64(&payload, histogram.max);
    PutDouble(&payload, histogram.mean);
    PutDouble(&payload, histogram.p50);
    PutDouble(&payload, histogram.p95);
    PutDouble(&payload, histogram.p99);
  }
  PutU32(&payload, static_cast<uint32_t>(stats.counters.size()));
  for (const StatsCounter& counter : stats.counters) {
    PutString(&payload, counter.name);
    PutU64(&payload, counter.value);
  }
  return payload;
}

Status DecodeStatsResult(std::string_view payload, StatsResult* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetString(&out->text));
  out->histograms.clear();
  out->counters.clear();
  // A payload ending here came from a server predating the structured
  // registry fields — the text is the whole answer.
  if (reader.AtEnd()) return Status::OK();
  uint32_t num_histograms;
  OPT_RETURN_IF_ERROR(reader.GetU32(&num_histograms));
  out->histograms.reserve(num_histograms);
  for (uint32_t i = 0; i < num_histograms; ++i) {
    StatsHistogram histogram;
    OPT_RETURN_IF_ERROR(reader.GetString(&histogram.name));
    OPT_RETURN_IF_ERROR(reader.GetU64(&histogram.count));
    OPT_RETURN_IF_ERROR(reader.GetU64(&histogram.min));
    OPT_RETURN_IF_ERROR(reader.GetU64(&histogram.max));
    OPT_RETURN_IF_ERROR(reader.GetDouble(&histogram.mean));
    OPT_RETURN_IF_ERROR(reader.GetDouble(&histogram.p50));
    OPT_RETURN_IF_ERROR(reader.GetDouble(&histogram.p95));
    OPT_RETURN_IF_ERROR(reader.GetDouble(&histogram.p99));
    out->histograms.push_back(std::move(histogram));
  }
  uint32_t num_counters;
  OPT_RETURN_IF_ERROR(reader.GetU32(&num_counters));
  out->counters.reserve(num_counters);
  for (uint32_t i = 0; i < num_counters; ++i) {
    StatsCounter counter;
    OPT_RETURN_IF_ERROR(reader.GetString(&counter.name));
    OPT_RETURN_IF_ERROR(reader.GetU64(&counter.value));
    out->counters.push_back(std::move(counter));
  }
  return Status::OK();
}

std::string EncodeShardStatsResult(const ShardStatsResult& stats) {
  std::string payload;
  PutString(&payload, stats.graph);
  PutU32(&payload, static_cast<uint32_t>(stats.shards.size()));
  for (const ShardStatsEntry& shard : stats.shards) {
    PutU32(&payload, shard.id);
    PutString(&payload, shard.address);
    payload.push_back(static_cast<char>(shard.healthy));
    PutU64(&payload, shard.pid);
    PutU32(&payload, shard.range_lo);
    PutU32(&payload, shard.range_hi);
    PutU64(&payload, shard.epoch);
    PutU64(&payload, shard.restarts);
    PutU64(&payload, shard.requests);
    PutU64(&payload, shard.failures);
    PutU64(&payload, shard.retries);
    PutU64(&payload, shard.ghost_triangles);
    PutDouble(&payload, shard.latency_p50_micros);
    PutDouble(&payload, shard.latency_p95_micros);
    PutDouble(&payload, shard.latency_p99_micros);
  }
  return payload;
}

Status DecodeShardStatsResult(std::string_view payload,
                              ShardStatsResult* out) {
  PayloadReader reader(payload);
  OPT_RETURN_IF_ERROR(reader.GetString(&out->graph));
  uint32_t count;
  OPT_RETURN_IF_ERROR(reader.GetU32(&count));
  out->shards.clear();
  // Like DecodeMutateRequest: bound the claimed count by the bytes that
  // could possibly back it (each entry is ≥ 94 bytes) before reserving.
  if (count > reader.remaining() / 94) {
    return Status::Corruption("shard stats claims " + std::to_string(count) +
                              " shards but only " +
                              std::to_string(reader.remaining()) +
                              " payload bytes follow");
  }
  out->shards.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ShardStatsEntry shard;
    OPT_RETURN_IF_ERROR(reader.GetU32(&shard.id));
    OPT_RETURN_IF_ERROR(reader.GetString(&shard.address));
    OPT_RETURN_IF_ERROR(reader.GetU8(&shard.healthy));
    OPT_RETURN_IF_ERROR(reader.GetU64(&shard.pid));
    OPT_RETURN_IF_ERROR(reader.GetU32(&shard.range_lo));
    OPT_RETURN_IF_ERROR(reader.GetU32(&shard.range_hi));
    OPT_RETURN_IF_ERROR(reader.GetU64(&shard.epoch));
    OPT_RETURN_IF_ERROR(reader.GetU64(&shard.restarts));
    OPT_RETURN_IF_ERROR(reader.GetU64(&shard.requests));
    OPT_RETURN_IF_ERROR(reader.GetU64(&shard.failures));
    OPT_RETURN_IF_ERROR(reader.GetU64(&shard.retries));
    OPT_RETURN_IF_ERROR(reader.GetU64(&shard.ghost_triangles));
    OPT_RETURN_IF_ERROR(reader.GetDouble(&shard.latency_p50_micros));
    OPT_RETURN_IF_ERROR(reader.GetDouble(&shard.latency_p95_micros));
    OPT_RETURN_IF_ERROR(reader.GetDouble(&shard.latency_p99_micros));
    out->shards.push_back(std::move(shard));
  }
  return Status::OK();
}

std::string EncodeTracePullRequest(const TracePullRequest& request) {
  std::string payload;
  payload.push_back(static_cast<char>(request.drain));
  return payload;
}

Status DecodeTracePullRequest(std::string_view payload,
                              TracePullRequest* out) {
  PayloadReader reader(payload);
  out->drain = 1;
  if (reader.AtEnd()) return Status::OK();
  return reader.GetU8(&out->drain);
}

std::string EncodeTracePullResult(const TracePullResult& result) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(result.processes.size()));
  for (const ProcessTrace& process : result.processes) {
    PutU64(&payload, process.pid);
    PutString(&payload, process.label);
    PutU64(&payload, process.unix_origin_micros);
    PutU64(&payload, process.dropped_spans);
    PutU32(&payload, static_cast<uint32_t>(process.events.size()));
    for (const TraceEvent& event : process.events) {
      PutString(&payload, event.name);
      PutString(&payload, event.category);
      payload.push_back(event.phase);
      PutU64(&payload, event.ts_micros);
      PutU64(&payload, event.dur_micros);
      PutU32(&payload, event.tid);
      PutU64(&payload, event.trace_id);
      PutU64(&payload, event.span_id);
      PutU64(&payload, event.parent_span_id);
      PutString(&payload, event.args_json);
    }
  }
  return payload;
}

Status DecodeTracePullResult(std::string_view payload,
                             TracePullResult* out) {
  PayloadReader reader(payload);
  uint32_t num_processes;
  OPT_RETURN_IF_ERROR(reader.GetU32(&num_processes));
  out->processes.clear();
  // Hostile-count bound (cf. DecodeMutateRequest): a process section is
  // at least 32 bytes even with an empty label and no events.
  if (num_processes > reader.remaining() / 32) {
    return Status::Corruption("trace pull claims " +
                              std::to_string(num_processes) +
                              " processes but only " +
                              std::to_string(reader.remaining()) +
                              " payload bytes follow");
  }
  out->processes.reserve(num_processes);
  for (uint32_t p = 0; p < num_processes; ++p) {
    ProcessTrace process;
    OPT_RETURN_IF_ERROR(reader.GetU64(&process.pid));
    OPT_RETURN_IF_ERROR(reader.GetString(&process.label));
    OPT_RETURN_IF_ERROR(reader.GetU64(&process.unix_origin_micros));
    OPT_RETURN_IF_ERROR(reader.GetU64(&process.dropped_spans));
    uint32_t num_events;
    OPT_RETURN_IF_ERROR(reader.GetU32(&num_events));
    // Each encoded event is ≥ 57 bytes (three length-prefixed strings
    // plus the fixed fields); bound before reserving.
    if (num_events > reader.remaining() / 57) {
      return Status::Corruption("trace section claims " +
                                std::to_string(num_events) +
                                " events but only " +
                                std::to_string(reader.remaining()) +
                                " payload bytes follow");
    }
    process.events.reserve(num_events);
    for (uint32_t i = 0; i < num_events; ++i) {
      TraceEvent event;
      OPT_RETURN_IF_ERROR(reader.GetString(&event.name));
      OPT_RETURN_IF_ERROR(reader.GetString(&event.category));
      uint8_t phase;
      OPT_RETURN_IF_ERROR(reader.GetU8(&phase));
      event.phase = static_cast<char>(phase);
      OPT_RETURN_IF_ERROR(reader.GetU64(&event.ts_micros));
      OPT_RETURN_IF_ERROR(reader.GetU64(&event.dur_micros));
      OPT_RETURN_IF_ERROR(reader.GetU32(&event.tid));
      OPT_RETURN_IF_ERROR(reader.GetU64(&event.trace_id));
      OPT_RETURN_IF_ERROR(reader.GetU64(&event.span_id));
      OPT_RETURN_IF_ERROR(reader.GetU64(&event.parent_span_id));
      OPT_RETURN_IF_ERROR(reader.GetString(&event.args_json));
      process.events.push_back(std::move(event));
    }
    out->processes.push_back(std::move(process));
  }
  return Status::OK();
}

Status WriteMessage(int fd, MessageType type, std::string_view payload) {
  std::string frame;
  frame.reserve(5 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size() + 1));
  frame.push_back(static_cast<char>(type));
  frame.append(payload.data(), payload.size());
  return WriteFull(fd, frame.data(), frame.size());
}

Status ReadMessage(int fd, WireMessage* out, size_t max_payload) {
  char header[4];
  bool clean_eof = false;
  Status status = ReadFull(fd, header, sizeof(header), &clean_eof);
  if (!status.ok()) return status;  // NotFound when the peer closed cleanly
  const uint32_t frame_length = DecodeFixed32(header);
  if (frame_length == 0) {
    return Status::Corruption("zero-length frame");
  }
  if (frame_length - 1 > max_payload) {
    return Status::Corruption("frame length " +
                              std::to_string(frame_length) +
                              " exceeds limit");
  }
  char type_byte;
  OPT_RETURN_IF_ERROR(ReadFull(fd, &type_byte, 1, nullptr));
  out->type = static_cast<MessageType>(static_cast<uint8_t>(type_byte));
  out->payload.resize(frame_length - 1);
  if (!out->payload.empty()) {
    OPT_RETURN_IF_ERROR(
        ReadFull(fd, out->payload.data(), out->payload.size(), nullptr));
  }
  return Status::OK();
}

}  // namespace opt
