// Multi-graph registry for the query service: opens and pins GraphStores
// by name and owns the one BufferPool every query shares, so hot
// adjacency pages survive across queries (the paper's Δ I/O saving
// amortized over a workload instead of over one run's iterations).
// Each (re)load gets a fresh owner tag — the page-key namespace in the
// shared pool — and a monotonically increasing epoch that result-cache
// keys embed, so stale pages and stale cached answers can never be
// served after a reload.
#ifndef OPT_SERVICE_GRAPH_REGISTRY_H_
#define OPT_SERVICE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

struct RegistryOptions {
  /// Initial shared-pool size; queries reserve more as they run.
  uint32_t min_pool_frames = 64;
};

class GraphRegistry {
 public:
  /// A pinned view of one registered graph: holding the shared_ptr keeps
  /// the store alive across a reload of the same name.
  struct GraphHandle {
    std::string name;
    std::shared_ptr<GraphStore> store;
    uint32_t owner = 0;   // page-key namespace in the shared pool
    uint64_t epoch = 0;   // bumps on every (re)load of this name
  };

  struct GraphInfo {
    std::string name;
    std::string base_path;
    uint64_t num_vertices = 0;
    uint64_t num_directed_edges = 0;
    uint32_t num_pages = 0;
    uint32_t page_size = 0;
    uint64_t epoch = 0;
  };

  explicit GraphRegistry(Env* env, const RegistryOptions& options = {});

  /// Opens the store at `base_path` and registers (or replaces) `name`.
  /// Queries already running on a replaced store finish on it; its
  /// unpinned pages are dropped from the shared pool immediately and the
  /// rest age out. All stores must share one page size (the pool's frame
  /// size, fixed by the first load).
  Status LoadGraph(const std::string& name, const std::string& base_path);

  Result<GraphHandle> Acquire(const std::string& name) const;

  std::vector<GraphInfo> List() const;

  /// Null until the first successful LoadGraph (the pool's page size
  /// comes from the first store).
  BufferPool* pool() { return pool_.get(); }

  Env* env() const { return env_; }
  size_t num_graphs() const;

 private:
  struct Entry {
    std::shared_ptr<GraphStore> store;
    std::string base_path;
    uint32_t owner = 0;
    uint64_t epoch = 0;
  };

  Env* const env_;
  const RegistryOptions options_;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> graphs_;
  std::unique_ptr<BufferPool> pool_;
  uint32_t next_owner_ = 1;
  uint64_t next_epoch_ = 1;
};

}  // namespace opt

#endif  // OPT_SERVICE_GRAPH_REGISTRY_H_
