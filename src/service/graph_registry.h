// Multi-graph registry for the query service: opens and pins GraphStores
// by name and owns the one BufferPool every query shares, so hot
// adjacency pages survive across queries (the paper's Δ I/O saving
// amortized over a workload instead of over one run's iterations).
// Each (re)load gets a fresh owner tag — the page-key namespace in the
// shared pool — and a monotonically increasing epoch that result-cache
// keys embed, so stale pages and stale cached answers can never be
// served after a reload.
//
// Streaming deltas: the on-disk store stays immutable between reloads;
// ADD_EDGES / REMOVE_EDGES batches land in a copy-on-write DeltaOverlay
// attached to the entry. ApplyEdgeDelta validates and applies the whole
// batch off to the side, then publishes the new overlay together with a
// bumped epoch under the registry lock — queries acquire (store,
// overlay, epoch) as one consistent snapshot, so no query ever observes
// a half-applied batch. Base pages in the shared pool stay valid across
// deltas (the owner tag only changes on reload). An optional TRIÈST
// reservoir estimator per graph tracks the insert stream for
// firehose-rate approximate counts.
#ifndef OPT_SERVICE_GRAPH_REGISTRY_H_
#define OPT_SERVICE_GRAPH_REGISTRY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "graph/delta_overlay.h"
#include "graph/streaming_approx.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/status.h"

namespace opt {

struct RegistryOptions {
  /// Initial shared-pool size; queries reserve more as they run.
  uint32_t min_pool_frames = 64;
  /// Per-graph TRIÈST reservoir capacity for the approximate streaming
  /// counter; 0 disables it (the exact overlay path is always on).
  uint64_t approx_reservoir_edges = 0;
  uint64_t approx_seed = 0x7A1E57;
  /// Read attempts per base-adjacency fetch during delta application
  /// (transient device faults heal by reread, matching the query path's
  /// retry contract).
  uint32_t delta_read_attempts = 4;
};

class GraphRegistry {
 public:
  /// A pinned view of one registered graph: holding the shared_ptr keeps
  /// the store alive across a reload of the same name. `overlay` is the
  /// delta state this epoch was published with (null = no deltas ever
  /// applied); store + overlay + epoch are one consistent snapshot.
  struct GraphHandle {
    std::string name;
    std::shared_ptr<GraphStore> store;
    std::shared_ptr<const DeltaOverlay> overlay;
    uint32_t owner = 0;   // page-key namespace in the shared pool
    uint64_t epoch = 0;   // bumps on every (re)load and applied batch
  };

  struct GraphInfo {
    std::string name;
    std::string base_path;
    uint64_t num_vertices = 0;
    uint64_t num_directed_edges = 0;
    uint32_t num_pages = 0;
    uint32_t page_size = 0;
    uint64_t epoch = 0;
    /// Residual streaming-delta state (zero when no deltas pending).
    uint64_t delta_edges_added = 0;
    uint64_t delta_edges_removed = 0;
    int64_t delta_triangles = 0;
  };

  /// Outcome of one applied delta batch.
  struct DeltaOutcome {
    uint64_t epoch = 0;             // epoch the batch published
    int64_t batch_triangle_delta = 0;
    int64_t total_triangle_delta = 0;  // overlay total after the batch
    uint64_t triangles_added = 0;
    uint64_t triangles_removed = 0;
    uint64_t edges_applied = 0;
    uint64_t base_fetches = 0;
    bool approx_valid = false;
    double approx_triangles = 0;    // triangles among streamed inserts
  };

  /// Count-state snapshot for SUBSCRIBE_COUNT and STATS.
  struct DeltaSnapshot {
    uint64_t epoch = 0;
    bool timed_out = false;      // set by WaitForEpoch on timeout
    bool base_known = false;     // base triangle count recorded yet?
    uint64_t base_triangles = 0;
    int64_t triangle_delta = 0;
    uint64_t edges_added = 0;
    uint64_t edges_removed = 0;
    uint64_t batches_applied = 0;
    bool approx_valid = false;
    double approx_triangles = 0;
    uint64_t approx_stream_length = 0;
  };

  explicit GraphRegistry(Env* env, const RegistryOptions& options = {});

  /// Opens the store at `base_path` and registers (or replaces) `name`.
  /// Queries already running on a replaced store finish on it; its
  /// unpinned pages are dropped from the shared pool immediately and the
  /// rest age out. A reload discards any pending delta overlay (the
  /// store on disk is the new truth). All stores must share one page
  /// size (the pool's frame size, fixed by the first load).
  Status LoadGraph(const std::string& name, const std::string& base_path);

  Result<GraphHandle> Acquire(const std::string& name) const;

  /// Applies one ADD_EDGES / REMOVE_EDGES batch atomically: the whole
  /// batch validates and computes off to the side, then the new overlay
  /// publishes with a bumped epoch — or nothing changes at all.
  /// Typed failures: InvalidArgument (self-loop, duplicate, wrong
  /// presence, id out of range) rejects the batch; Unavailable means
  /// base-adjacency reads failed past the retry budget (the delta was
  /// NOT applied and the caller should retry); Aborted means the graph
  /// was reloaded mid-apply. Batches on one graph serialize; queries
  /// are never blocked by an in-flight apply.
  Result<DeltaOutcome> ApplyEdgeDelta(const std::string& name,
                                      DeltaKind kind,
                                      std::span<const Edge> edges);

  /// Records the base store's exact triangle count (from a completed
  /// full run) so subscribe/stats paths can answer totals in O(1).
  /// Ignored if `store` is no longer the entry's current store.
  void SetBaseTriangles(const std::string& name, const GraphStore* store,
                        uint64_t triangles);

  Result<DeltaSnapshot> DeltaState(const std::string& name) const;

  /// Long-poll: blocks until the graph's epoch exceeds `after_epoch`
  /// (any applied batch or reload) or `timeout` elapses, then returns
  /// the current snapshot (`timed_out` set when the wait expired).
  /// Timeouts are clamped to a 5-minute ceiling (negative or absurd
  /// values would overflow the deadline); re-poll to wait longer.
  Result<DeltaSnapshot> WaitForEpoch(const std::string& name,
                                     uint64_t after_epoch,
                                     std::chrono::milliseconds timeout) const;

  std::vector<GraphInfo> List() const;

  /// Null until the first successful LoadGraph (the pool's page size
  /// comes from the first store).
  BufferPool* pool() { return pool_.get(); }

  Env* env() const { return env_; }
  size_t num_graphs() const;

 private:
  struct Entry {
    std::shared_ptr<GraphStore> store;
    std::string base_path;
    uint32_t owner = 0;
    uint64_t epoch = 0;
    std::shared_ptr<const DeltaOverlay> overlay;  // null = no deltas
    bool base_triangles_known = false;
    uint64_t base_triangles = 0;
    /// Serializes delta application per graph (never held while a
    /// query runs; readers only take the registry mutex).
    std::shared_ptr<std::mutex> mutate_mutex;
    /// Approximate insert-stream counter (null when disabled); guarded
    /// by mutate_mutex.
    std::shared_ptr<TriestEstimator> estimator;
  };

  DeltaSnapshot SnapshotLocked(const Entry& entry) const;

  Env* const env_;
  const RegistryOptions options_;

  mutable std::mutex mutex_;
  /// Signaled on every epoch bump (applied batch or reload).
  mutable std::condition_variable epoch_cv_;
  std::map<std::string, Entry> graphs_;
  std::unique_ptr<BufferPool> pool_;
  uint32_t next_owner_ = 1;
  uint64_t next_epoch_ = 1;
};

}  // namespace opt

#endif  // OPT_SERVICE_GRAPH_REGISTRY_H_
