// OptServer: socket front end over QueryScheduler + GraphRegistry.
//
// Accepts connections on a TCP port or Unix-domain socket and speaks
// the framed protocol in service/wire.h. Connections are handled one
// thread each; queries on a connection are serviced sequentially
// (pipelining across connections is what the scheduler parallelizes).
// LIST results stream back as kListBatch frames while the query runs,
// so arbitrarily large outputs never buffer server-side.
#ifndef OPT_SERVICE_SERVER_H_
#define OPT_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/query_scheduler.h"
#include "service/wire.h"
#include "util/status.h"

namespace opt {

class OptServer {
 public:
  /// Both pointers must outlive the server. Graph loading over the wire
  /// can be disabled for deployments that pre-pin their graphs, and
  /// streaming mutations (ADD_EDGES / REMOVE_EDGES) for read-only ones.
  OptServer(QueryScheduler* scheduler, bool allow_load_graph = true,
            bool allow_mutations = true);
  ~OptServer();

  OptServer(const OptServer&) = delete;
  OptServer& operator=(const OptServer&) = delete;

  /// Binds a TCP listener on 127.0.0.1:`port`. Port 0 picks a free
  /// port; `bound_port()` reports the actual one.
  Status ListenTcp(uint16_t port);

  /// Binds a Unix-domain stream socket at `path` (unlinked first).
  Status ListenUnix(const std::string& path);

  /// Starts the accept loop. Call after a successful Listen*.
  Status Start();

  /// Stops accepting, closes live connections, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  uint16_t bound_port() const { return bound_port_; }

  /// Appends one JSON line per PROFILE query to `path` (opt_server
  /// --profile-out). Empty disables. Safe to call before Start().
  void SetProfileOutput(const std::string& path);

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  Status HandleCount(int fd, const WireMessage& message);
  Status HandleList(int fd, const WireMessage& message);
  Status HandleProfile(int fd, const WireMessage& message);
  Status HandleStats(int fd);
  Status HandleLoadGraph(int fd, const WireMessage& message);
  Status HandleMutate(int fd, const WireMessage& message, DeltaKind kind);
  Status HandleSubscribe(int fd, const WireMessage& message);
  /// Drains (or peeks) the process-wide span ring into one
  /// ProcessTrace section. Routers pull these from every shard and
  /// assemble the fleet-wide trace; see AssembleTrace().
  Status HandleTracePull(int fd, const WireMessage& message);
  /// Queues a background COUNT to learn `graph`'s base triangle count
  /// (deduplicated while one is already queued or running). SUBSCRIBE
  /// never pays a full count's latency on the connection thread — it
  /// replies exact_known=0 until a count has recorded the base.
  void SchedulePrime(const std::string& graph);
  void PrimeLoop();
  void AppendProfileLine(const ProfileResult& profile,
                         const std::string& graph);
  std::string RenderStats() const;
  /// Legacy text plus the live metrics registry (histogram quantiles and
  /// counters) for the extended STATS reply.
  StatsResult BuildStats() const;

  QueryScheduler* const scheduler_;
  const bool allow_load_graph_;
  const bool allow_mutations_;

  // Atomic: Stop() retires the listener (exchange to -1) while
  // AcceptLoop() concurrently reads it for accept().
  std::atomic<int> listen_fd_{-1};
  uint16_t bound_port_ = 0;
  std::string unix_path_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::mutex profile_out_mutex_;
  std::string profile_out_path_;

  // Background base-count primer (one thread, started with the server).
  std::mutex prime_mutex_;
  std::condition_variable prime_cv_;
  std::deque<std::string> prime_queue_;
  std::set<std::string> prime_pending_;  // queued or running
  std::thread prime_thread_;
};

}  // namespace opt

#endif  // OPT_SERVICE_SERVER_H_
