// Admission-controlled scheduler for concurrent triangle queries on top
// of the batch OPT engine. Responsibilities:
//
//  * bounded admission queue — past `max_queue` waiting queries, new
//    submissions are rejected immediately with ResourceExhausted
//    (back-pressure instead of unbounded latency);
//  * a fixed pool of worker threads, each running one OptRunner at a
//    time against the registry's shared BufferPool;
//  * per-query deadlines and cancellation — a watchdog flags expired
//    queries, which abort cooperatively at page/chunk granularity;
//  * duplicate-request coalescing — identical COUNT queries (same
//    graph, epoch, and parameters) queued or running attach to the one
//    in-flight run and all receive its result;
//  * a result cache for completed COUNT queries, invalidated on graph
//    reload (epoch-keyed, so stale entries are unreachable regardless);
//  * streaming mutations — ApplyDelta funnels ADD_EDGES/REMOVE_EDGES
//    batches into the registry's atomic overlay commit and owns the
//    delta.* metrics; COUNT answers fold the acquired epoch's overlay
//    triangle delta onto the base run.
#ifndef OPT_SERVICE_QUERY_SCHEDULER_H_
#define OPT_SERVICE_QUERY_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/triangle_sink.h"
#include "obs/flight_recorder.h"
#include "obs/overlap_profiler.h"
#include "service/graph_registry.h"
#include "service/result_cache.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace opt {

enum class QueryKind : uint8_t {
  kCount = 0,  // total triangle count
  kList = 1,   // stream every triangle into the caller's sink
};

/// How a query's answer was produced.
enum class ResultSource : uint8_t {
  kExecuted = 0,   // a fresh OPT run
  kCoalesced = 1,  // piggybacked on an identical in-flight run
  kCache = 2,      // served from the result cache
};

struct QuerySpec {
  std::string graph;
  QueryKind kind = QueryKind::kCount;
  /// Total buffer budget in pages (the paper's m, split m_in/m_ex);
  /// 0 uses the scheduler default.
  uint32_t memory_pages = 0;
  /// 0 uses the scheduler default.
  uint32_t num_threads = 0;
  /// Wall-clock budget from submission; 0 means none. Expired queries
  /// fail with Aborted, whether still queued or already running.
  uint64_t deadline_millis = 0;
  /// kList only: receives the triangle stream during execution; must be
  /// thread safe and outlive the query. List queries never coalesce and
  /// are never cached.
  TriangleSink* list_sink = nullptr;
  /// kCount only: run the overlap profiler for this query and return the
  /// sampled overlap report in QueryResult. Profiled queries never
  /// coalesce and never hit the result cache — the measurement is of a
  /// fresh run by definition.
  bool profile = false;
};

struct QueryResult {
  Status status;
  /// True when `status` is Unavailable: the run hit an unrecoverable
  /// I/O fault after exhausting retries. `triangles` then holds the
  /// partial count accumulated before the fault — a lower bound, not
  /// the answer — and the query is worth retrying.
  bool degraded = false;
  uint64_t triangles = 0;
  double seconds = 0;  // execution wall time (0 for cache hits)
  /// Time spent waiting in the admission queue before a worker picked
  /// the query up (0 for cache hits and rejections).
  double queue_seconds = 0;
  ResultSource source = ResultSource::kExecuted;
  /// Per-query shared-pool savings: pages this run found cached (its own
  /// earlier iterations or other queries' residue) vs. pages it read.
  uint64_t pool_hits = 0;
  uint64_t pages_read = 0;
  uint32_t iterations = 0;
  uint64_t epoch = 0;  // graph epoch the answer was computed against
  /// Filled for profiled queries that executed (QuerySpec::profile).
  bool profiled = false;
  OverlapReport overlap;
  /// Flight-recorder tail of a degraded query: the structured events
  /// (fetch outcomes, retries, give-ups, the degrade itself) leading up
  /// to the failure. Empty for healthy queries.
  std::vector<FlightEvent> flight_events;
};

/// Outcome of one streaming delta batch (scheduler-level wrapper over
/// GraphRegistry::DeltaOutcome, plus timing and degraded semantics
/// mirroring QueryResult).
struct MutationResult {
  Status status;
  /// True when `status` is Unavailable: base-adjacency reads failed past
  /// the retry budget. The batch was NOT applied — nothing was silently
  /// dropped — and the same batch is worth retrying verbatim.
  bool degraded = false;
  uint64_t epoch = 0;  // epoch the batch published under (0 on failure)
  int64_t batch_triangle_delta = 0;
  int64_t total_triangle_delta = 0;
  uint64_t edges_applied = 0;
  double seconds = 0;  // apply wall time, validation included
  bool approx_valid = false;
  double approx_triangles = 0;
};

struct SchedulerOptions {
  uint32_t workers = 4;
  /// Admission bound: maximum queries waiting (excludes running ones).
  uint32_t max_queue = 64;
  uint32_t default_memory_pages = 64;
  uint32_t default_threads = 2;
  uint32_t io_queue_depth = 8;
  bool enable_result_cache = true;
  /// Queries whose end-to-end latency exceeds this many milliseconds are
  /// logged at Warn level with their graph, kind, queue wait, and
  /// execution time. 0 (the default) disables the slow-query log.
  uint64_t slow_query_millis = 0;
  /// Sampling period for profiled queries (QuerySpec::profile). Finer
  /// than the batch default because service queries are short: at 250 µs
  /// even a few-ms query collects a meaningful sample count.
  uint64_t profile_period_micros = 250;
};

struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;    // admission-queue overflow
  uint64_t executed = 0;    // fresh OPT runs
  uint64_t completed = 0;   // queries answered OK (any source)
  uint64_t failed = 0;      // queries answered with an error
  uint64_t coalesced = 0;   // waiters attached to an in-flight run
  uint64_t cache_hits = 0;
  uint64_t deadline_expired = 0;
  uint64_t slow_queries = 0;  // tripped the slow-query log threshold
  /// Queries answered Unavailable: degraded by device faults that
  /// survived the I/O retry budget (a subset of `failed`).
  uint64_t degraded = 0;
};

class QueryScheduler {
 public:
  QueryScheduler(GraphRegistry* registry, const SchedulerOptions& options);
  /// Fails all queued queries with Aborted and joins the workers.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Never blocks on execution: rejections, unknown graphs, and cache
  /// hits resolve the future immediately; otherwise the query is queued
  /// (or coalesced) and the future resolves on completion.
  std::shared_future<QueryResult> Submit(const QuerySpec& spec);

  /// Submit + wait.
  QueryResult Run(const QuerySpec& spec);

  /// Registers/reloads a graph and invalidates its cached results.
  Status LoadGraph(const std::string& name, const std::string& base_path);

  /// Applies one streaming edge batch synchronously (mutations are
  /// latency-bound on a handful of point reads, not on a full run, so
  /// they bypass the admission queue). Atomic: the batch publishes with
  /// an epoch bump or not at all. Failed validation → InvalidArgument;
  /// terminal device faults → Unavailable with `degraded` set.
  MutationResult ApplyDelta(const std::string& graph, DeltaKind kind,
                            std::span<const Edge> edges);

  SchedulerStats stats() const;
  ResultCache::Stats cache_stats() const { return cache_.stats(); }
  GraphRegistry* registry() { return registry_; }
  const SchedulerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Task {
    QuerySpec spec;
    /// Ambient trace context at submission time, reinstalled on the
    /// worker thread so query.execute parents under the request span.
    /// Coalesced waiters share the first submitter's trace.
    TraceContext trace;
    std::string coalesce_key;  // empty → never coalesced
    Clock::time_point deadline{};  // meaningful iff has_deadline
    bool has_deadline = false;
    Clock::time_point submitted_at{};
    Clock::time_point exec_start{};  // set when a worker dequeues the task
    std::atomic<bool> cancel{false};
    std::vector<std::shared_ptr<std::promise<QueryResult>>> waiters;
  };

  void WorkerLoop();
  void WatchdogLoop();
  QueryResult Execute(Task* task);
  /// Resolves a finished task: detaches it from the coalescing table and
  /// fulfills every waiter.
  void Finish(const std::shared_ptr<Task>& task, const QueryResult& result);
  static std::string CacheKey(const QuerySpec& spec, uint64_t epoch,
                              const SchedulerOptions& defaults);

  GraphRegistry* const registry_;
  const SchedulerOptions options_;
  ResultCache cache_;

  // Live-registry metrics (process-global; see util/metrics.h). The
  // histograms back the per-query latency percentiles STATS exposes.
  HistogramMetric* const latency_hist_;
  HistogramMetric* const queue_wait_hist_;
  HistogramMetric* const exec_hist_;
  Counter* const slow_query_counter_;
  Counter* const degraded_counter_;
  // Streaming-delta metrics (delta.apply_us feeds the p50/p95/p99 STATS
  // exposes; the counters make rejected/degraded mutations observable).
  HistogramMetric* const delta_apply_hist_;
  Counter* const delta_batches_counter_;
  Counter* const delta_edges_added_counter_;
  Counter* const delta_edges_removed_counter_;
  Counter* const delta_triangles_added_counter_;
  Counter* const delta_triangles_removed_counter_;
  Counter* const delta_rejected_counter_;
  Counter* const delta_degraded_counter_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  // The watchdog sleeps on its own cv: if it shared work_cv_, Submit's
  // notify_one could wake the watchdog instead of a worker and strand a
  // queued query until the next (possibly never-arriving) submission.
  std::condition_variable watchdog_cv_;
  std::deque<std::shared_ptr<Task>> queue_;
  std::vector<std::shared_ptr<Task>> running_;
  std::unordered_map<std::string, std::shared_ptr<Task>> inflight_;
  SchedulerStats stats_;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace opt

#endif  // OPT_SERVICE_QUERY_SCHEDULER_H_
