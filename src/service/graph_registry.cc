#include "service/graph_registry.h"

#include <utility>

#include "storage/record_scanner.h"

namespace opt {

GraphRegistry::GraphRegistry(Env* env, const RegistryOptions& options)
    : env_(env), options_(options) {}

Status GraphRegistry::LoadGraph(const std::string& name,
                                const std::string& base_path) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  auto store = GraphStore::Open(env_, base_path);
  if (!store.ok()) return store.status();

  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<BufferPool>(
        (*store)->page_size(),
        std::max(options_.min_pool_frames, 1u));
  } else if (pool_->page_size() != (*store)->page_size()) {
    return Status::NotSupported(
        "graph '" + name + "' has page size " +
        std::to_string((*store)->page_size()) +
        " but the shared pool was sized for " +
        std::to_string(pool_->page_size()));
  }

  Entry entry;
  entry.store = std::shared_ptr<GraphStore>(std::move(store.value()));
  entry.base_path = base_path;
  entry.owner = next_owner_++;
  entry.epoch = next_epoch_++;
  entry.mutate_mutex = std::make_shared<std::mutex>();
  if (options_.approx_reservoir_edges > 0) {
    entry.estimator = std::make_shared<TriestEstimator>(
        options_.approx_reservoir_edges, options_.approx_seed);
  }

  auto it = graphs_.find(name);
  if (it != graphs_.end()) {
    // Reload: stale pages of the old incarnation must never satisfy a
    // lookup again (new owner tag guarantees it); reclaim the unpinned
    // ones eagerly. Pending deltas are discarded too — the store on
    // disk is the new truth, and in-flight ApplyEdgeDelta calls on the
    // old incarnation will fail their commit-time identity check.
    pool_->DropOwner(it->second.owner);
    it->second = std::move(entry);
  } else {
    graphs_.emplace(name, std::move(entry));
  }
  epoch_cv_.notify_all();
  return Status::OK();
}

Result<GraphRegistry::GraphHandle> GraphRegistry::Acquire(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not registered");
  }
  GraphHandle handle;
  handle.name = name;
  handle.store = it->second.store;
  handle.overlay = it->second.overlay;
  handle.owner = it->second.owner;
  handle.epoch = it->second.epoch;
  return handle;
}

Result<GraphRegistry::DeltaOutcome> GraphRegistry::ApplyEdgeDelta(
    const std::string& name, DeltaKind kind, std::span<const Edge> edges) {
  // Snapshot the entry's store and its per-graph mutation lock.
  std::shared_ptr<GraphStore> store;
  std::shared_ptr<std::mutex> mutate;
  std::shared_ptr<TriestEstimator> estimator;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      return Status::NotFound("graph '" + name + "' is not registered");
    }
    store = it->second.store;
    mutate = it->second.mutate_mutex;
    estimator = it->second.estimator;
  }

  // Serialize batches per graph. The registry mutex is NOT held while
  // the batch computes — queries acquire and run freely; they only see
  // the batch once it publishes below.
  std::lock_guard<std::mutex> apply_lock(*mutate);

  // Snapshot the overlay only now, under the mutation lock: a batch
  // that waited here must build on its predecessor's published overlay.
  // Reading it before the wait would validate and apply against a stale
  // view, and the commit below would silently overwrite the
  // predecessor's edges and triangle delta.
  std::shared_ptr<const DeltaOverlay> overlay;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = graphs_.find(name);
    if (it == graphs_.end() || it->second.store != store) {
      return Status::Aborted("graph '" + name +
                             "' was reloaded while the delta was waiting; "
                             "batch not applied");
    }
    overlay = it->second.overlay;
  }

  // Base reads go through Env, so injected device faults apply here like
  // anywhere else. Transient faults heal on reread within the bounded
  // budget; terminal I/O failure degrades the mutation to Unavailable
  // (the delta is NOT applied — nothing is ever silently dropped).
  const uint32_t attempts = std::max(options_.delta_read_attempts, 1u);
  AdjacencyFetcher fetch = [&](VertexId v, std::vector<VertexId>* out) {
    Status last = Status::OK();
    for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
      last = ReadAdjacency(*store, v, out);
      // Only device-level failures are worth a reread (transient faults
      // and torn pages heal); anything else is terminal as-is.
      if (last.ok() || (!last.IsIOError() && !last.IsCorruption())) {
        return last;
      }
    }
    if (last.IsIOError()) {
      return Status::Unavailable(
          "base adjacency of vertex " + std::to_string(v) +
          " unreadable after " + std::to_string(attempts) +
          " attempts: " + last.message());
    }
    return last;
  };

  DeltaApplyStats stats;
  auto next = DeltaOverlay::Apply(overlay.get(), kind, edges,
                                  static_cast<VertexId>(store->num_vertices()),
                                  fetch, &stats);
  if (!next.ok()) return next.status();

  DeltaOutcome outcome;
  outcome.edges_applied = stats.edges_applied;
  outcome.base_fetches = stats.base_fetches;
  outcome.triangles_added = stats.triangles_added;
  outcome.triangles_removed = stats.triangles_removed;
  outcome.batch_triangle_delta =
      static_cast<int64_t>(stats.triangles_added) -
      static_cast<int64_t>(stats.triangles_removed);
  outcome.total_triangle_delta = (*next)->triangle_delta();

  // Publish: new overlay + bumped epoch as one atomic step. The store
  // identity check suffices to detect every concurrent change: while
  // this batch holds the mutation lock no other batch on the same
  // incarnation can publish, so the only way the entry's overlay can
  // differ from the one read above is a reload — which swaps the store.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = graphs_.find(name);
    if (it == graphs_.end() || it->second.store != store) {
      return Status::Aborted("graph '" + name +
                             "' was reloaded while the delta was applying; "
                             "batch not applied");
    }
    it->second.overlay = std::move(next.value());
    it->second.epoch = next_epoch_++;
    outcome.epoch = it->second.epoch;
  }
  epoch_cv_.notify_all();

  // Feed the approximate counter after the exact commit (still under the
  // per-graph mutation lock, which guards the estimator).
  if (estimator != nullptr) {
    if (kind == DeltaKind::kAdd) {
      for (const Edge& e : edges) estimator->OnInsert(e.first, e.second);
    } else {
      // TRIÈST-IMPR is insert-only; removals invalidate the estimate.
      estimator->Taint();
    }
    outcome.approx_valid = estimator->valid();
    outcome.approx_triangles = estimator->estimate();
  }
  return outcome;
}

void GraphRegistry::SetBaseTriangles(const std::string& name,
                                     const GraphStore* store,
                                     uint64_t triangles) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = graphs_.find(name);
  if (it == graphs_.end() || it->second.store.get() != store) return;
  it->second.base_triangles_known = true;
  it->second.base_triangles = triangles;
}

GraphRegistry::DeltaSnapshot GraphRegistry::SnapshotLocked(
    const Entry& entry) const {
  DeltaSnapshot snap;
  snap.epoch = entry.epoch;
  snap.base_known = entry.base_triangles_known;
  snap.base_triangles = entry.base_triangles;
  if (entry.overlay != nullptr) {
    snap.triangle_delta = entry.overlay->triangle_delta();
    snap.edges_added = entry.overlay->edges_added();
    snap.edges_removed = entry.overlay->edges_removed();
    snap.batches_applied = entry.overlay->batches_applied();
  }
  return snap;
}

Result<GraphRegistry::DeltaSnapshot> GraphRegistry::DeltaState(
    const std::string& name) const {
  std::shared_ptr<TriestEstimator> estimator;
  std::shared_ptr<std::mutex> mutate;
  DeltaSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      return Status::NotFound("graph '" + name + "' is not registered");
    }
    snap = SnapshotLocked(it->second);
    estimator = it->second.estimator;
    mutate = it->second.mutate_mutex;
  }
  if (estimator != nullptr) {
    std::lock_guard<std::mutex> lock(*mutate);
    snap.approx_valid = estimator->valid() && estimator->stream_length() > 0;
    snap.approx_triangles = estimator->estimate();
    snap.approx_stream_length = estimator->stream_length();
  }
  return snap;
}

Result<GraphRegistry::DeltaSnapshot> GraphRegistry::WaitForEpoch(
    const std::string& name, uint64_t after_epoch,
    std::chrono::milliseconds timeout) const {
  // The timeout is client-controlled: adding a huge (or u64-wrapped
  // negative) value to steady_clock::now() overflows the time_point and
  // the wait would expire immediately instead of long-polling. Clamp to
  // a server-side ceiling; clients re-poll for longer waits.
  static constexpr std::chrono::milliseconds kMaxWait =
      std::chrono::minutes(5);
  if (timeout < std::chrono::milliseconds::zero() || timeout > kMaxWait) {
    timeout = kMaxWait;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  bool timed_out = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      auto it = graphs_.find(name);
      if (it == graphs_.end()) {
        return Status::NotFound("graph '" + name + "' is not registered");
      }
      if (it->second.epoch > after_epoch) break;
      if (epoch_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        timed_out = true;
        break;
      }
    }
  }
  auto snap = DeltaState(name);
  if (!snap.ok()) return snap.status();
  snap->timed_out = timed_out && snap->epoch <= after_epoch;
  return snap;
}

std::vector<GraphRegistry::GraphInfo> GraphRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GraphInfo> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) {
    GraphInfo info;
    info.name = name;
    info.base_path = entry.base_path;
    info.num_vertices = entry.store->num_vertices();
    info.num_directed_edges = entry.store->num_directed_edges();
    info.num_pages = entry.store->num_pages();
    info.page_size = entry.store->page_size();
    info.epoch = entry.epoch;
    if (entry.overlay != nullptr) {
      info.delta_edges_added = entry.overlay->edges_added();
      info.delta_edges_removed = entry.overlay->edges_removed();
      info.delta_triangles = entry.overlay->triangle_delta();
    }
    out.push_back(std::move(info));
  }
  return out;
}

size_t GraphRegistry::num_graphs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

}  // namespace opt
