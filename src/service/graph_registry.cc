#include "service/graph_registry.h"

#include <utility>

namespace opt {

GraphRegistry::GraphRegistry(Env* env, const RegistryOptions& options)
    : env_(env), options_(options) {}

Status GraphRegistry::LoadGraph(const std::string& name,
                                const std::string& base_path) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  auto store = GraphStore::Open(env_, base_path);
  if (!store.ok()) return store.status();

  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<BufferPool>(
        (*store)->page_size(),
        std::max(options_.min_pool_frames, 1u));
  } else if (pool_->page_size() != (*store)->page_size()) {
    return Status::NotSupported(
        "graph '" + name + "' has page size " +
        std::to_string((*store)->page_size()) +
        " but the shared pool was sized for " +
        std::to_string(pool_->page_size()));
  }

  Entry entry;
  entry.store = std::shared_ptr<GraphStore>(std::move(store.value()));
  entry.base_path = base_path;
  entry.owner = next_owner_++;
  entry.epoch = next_epoch_++;

  auto it = graphs_.find(name);
  if (it != graphs_.end()) {
    // Reload: stale pages of the old incarnation must never satisfy a
    // lookup again (new owner tag guarantees it); reclaim the unpinned
    // ones eagerly.
    pool_->DropOwner(it->second.owner);
    it->second = std::move(entry);
  } else {
    graphs_.emplace(name, std::move(entry));
  }
  return Status::OK();
}

Result<GraphRegistry::GraphHandle> GraphRegistry::Acquire(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("graph '" + name + "' is not registered");
  }
  GraphHandle handle;
  handle.name = name;
  handle.store = it->second.store;
  handle.owner = it->second.owner;
  handle.epoch = it->second.epoch;
  return handle;
}

std::vector<GraphRegistry::GraphInfo> GraphRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GraphInfo> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) {
    GraphInfo info;
    info.name = name;
    info.base_path = entry.base_path;
    info.num_vertices = entry.store->num_vertices();
    info.num_directed_edges = entry.store->num_directed_edges();
    info.num_pages = entry.store->num_pages();
    info.page_size = entry.store->page_size();
    info.epoch = entry.epoch;
    out.push_back(std::move(info));
  }
  return out;
}

size_t GraphRegistry::num_graphs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

}  // namespace opt
