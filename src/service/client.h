// OptClient: blocking client for the opt_server wire protocol. One
// connection per client; not thread safe — concurrent callers use one
// client each (connections are cheap, the server is thread-per-conn).
#ifndef OPT_SERVICE_CLIENT_H_
#define OPT_SERVICE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "service/wire.h"
#include "util/status.h"

namespace opt {

struct ClientQueryOptions {
  uint32_t memory_pages = 0;    // 0 = server default
  uint32_t num_threads = 0;     // 0 = server default
  uint64_t deadline_millis = 0; // 0 = none
};

class OptClient {
 public:
  OptClient() = default;
  ~OptClient();

  OptClient(const OptClient&) = delete;
  OptClient& operator=(const OptClient&) = delete;
  OptClient(OptClient&& other) noexcept;
  OptClient& operator=(OptClient&& other) noexcept;

  Status ConnectTcp(const std::string& host, uint16_t port);
  Status ConnectUnix(const std::string& path);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Bounds every subsequent socket read (SO_RCVTIMEO); a reply that
  /// stalls longer surfaces as IOError instead of hanging the caller
  /// forever. 0 restores blocking reads. The router uses this so a
  /// wedged shard cannot pin a fan-out worker.
  Status SetRecvTimeoutMillis(uint64_t millis);

  /// COUNT: server-side errors come back as their original Status code.
  Result<CountResult> Count(const std::string& graph,
                            const ClientQueryOptions& options = {});

  /// PROFILE: COUNT with the overlap profiler on — answer plus overlap
  /// fractions, role histogram, and the fitted cost model.
  Result<ProfileResult> Profile(const std::string& graph,
                                const ClientQueryOptions& options = {});

  /// LIST: `on_batch` is invoked for each streamed batch on the calling
  /// thread; returns the trailer (total count + seconds) on success.
  Result<ListEnd> List(
      const std::string& graph,
      const std::function<void(const ListBatch&)>& on_batch,
      const ClientQueryOptions& options = {});

  /// STATS: newline-separated key=value text (legacy view; ignores the
  /// structured registry fields newer servers append).
  Result<std::string> Stats();

  /// STATS with the structured registry fields: histogram quantiles and
  /// counters. Against a pre-registry server the vectors come back empty
  /// and `text` is the whole answer.
  Result<StatsResult> StatsFull();

  Status LoadGraph(const std::string& name, const std::string& base_path);

  /// ADD_EDGES: applies one batch of undirected edges atomically.
  /// Rejections (self-loop, duplicate, already-present edge, id out of
  /// range) come back as InvalidArgument with nothing applied;
  /// Unavailable means the server could not read base adjacency and the
  /// same batch is safe to retry verbatim.
  Result<MutateResult> AddEdges(
      const std::string& graph,
      const std::vector<std::pair<VertexId, VertexId>>& edges);

  /// REMOVE_EDGES: same contract; every edge must be present.
  Result<MutateResult> RemoveEdges(
      const std::string& graph,
      const std::vector<std::pair<VertexId, VertexId>>& edges);

  /// SUBSCRIBE_COUNT: long-poll until the graph's epoch exceeds
  /// `after_epoch` (pass 0 for the current state immediately) or
  /// `timeout_millis` elapses. Blocks the connection for the duration.
  Result<SubscribeCountResult> SubscribeCount(const std::string& graph,
                                              uint64_t after_epoch,
                                              uint64_t timeout_millis);

  /// SHARD_STATS: per-shard breakdown from a router. A plain opt_server
  /// answers NotSupported.
  Result<ShardStatsResult> ShardStats();

  /// TRACE_PULL: drains (or, with drain=false, peeks) the peer's
  /// bounded span ring. Against a router the reply carries the router's
  /// section plus one per shard, ready for AssembleTrace(). Servers
  /// predating the op answer NotSupported.
  Result<TracePullResult> TracePull(bool drain = true);

  /// Flight-recorder tail from the most recent server ERROR reply on
  /// this client (degraded queries ship their event log with the
  /// error). Cleared at the start of every request; empty when the last
  /// error carried no events or the last request succeeded.
  const std::vector<FlightEvent>& last_error_events() const {
    return last_error_events_;
  }

  /// Trace id carried by the most recent server ERROR reply (0 when the
  /// request was untraced or the server predates tracing).
  uint64_t last_error_trace_id() const { return last_error_trace_id_; }

 private:
  Status SendRequest(MessageType type, std::string_view payload);
  Status ReadReply(WireMessage* message);
  /// Decodes an ERROR frame, stashing any event tail for
  /// last_error_events().
  Status ErrorFromReply(const WireMessage& message);

  int fd_ = -1;
  std::vector<FlightEvent> last_error_events_;
  uint64_t last_error_trace_id_ = 0;
};

}  // namespace opt

#endif  // OPT_SERVICE_CLIENT_H_
