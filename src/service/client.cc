#include "service/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace opt {

namespace {

Status UnexpectedReply(const WireMessage& message) {
  return Status::Corruption("unexpected reply type " +
                            std::to_string(static_cast<int>(message.type)));
}

/// Stamps the caller's ambient trace context onto an outgoing request,
/// so any request issued under a TraceSpan (router fan-out workers,
/// traced tools) links the remote side into the same tree.
template <typename Request>
void AttachTraceContext(Request* request) {
  const TraceContext context = CurrentTraceContext();
  request->trace_id = context.trace_id;
  request->parent_span_id = context.span_id;
}

}  // namespace

OptClient::~OptClient() { Close(); }

OptClient::OptClient(OptClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

OptClient& OptClient::operator=(OptClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Status OptClient::ConnectTcp(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

Status OptClient::ConnectUnix(const std::string& path) {
  Close();
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        "connect " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::OK();
}

Status OptClient::SetRecvTimeoutMillis(uint64_t millis) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(millis / 1000);
  tv.tv_usec = static_cast<suseconds_t>((millis % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(std::string("setsockopt(SO_RCVTIMEO): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void OptClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status OptClient::SendRequest(MessageType type, std::string_view payload) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  last_error_events_.clear();
  last_error_trace_id_ = 0;
  return WriteMessage(fd_, type, payload);
}

Status OptClient::ErrorFromReply(const WireMessage& message) {
  ErrorResult error;
  const Status decode = DecodeError(message.payload, &error);
  if (!decode.ok()) return decode;
  last_error_events_ = std::move(error.events);
  last_error_trace_id_ = error.trace_id;
  return error.ToStatus();
}

Status OptClient::ReadReply(WireMessage* message) {
  const Status status = ReadMessage(fd_, message);
  if (status.code() == StatusCode::kNotFound) {
    return Status::IOError("server closed the connection");
  }
  return status;
}

Result<CountResult> OptClient::Count(const std::string& graph,
                                     const ClientQueryOptions& options) {
  QueryRequest request;
  request.graph = graph;
  request.memory_pages = options.memory_pages;
  request.num_threads = options.num_threads;
  request.deadline_millis = options.deadline_millis;
  AttachTraceContext(&request);
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kCountRequest,
                                  EncodeQueryRequest(request)));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kCountResult) return UnexpectedReply(reply);
  CountResult result;
  OPT_RETURN_IF_ERROR(DecodeCountResult(reply.payload, &result));
  return result;
}

Result<ProfileResult> OptClient::Profile(const std::string& graph,
                                         const ClientQueryOptions& options) {
  QueryRequest request;
  request.graph = graph;
  request.memory_pages = options.memory_pages;
  request.num_threads = options.num_threads;
  request.deadline_millis = options.deadline_millis;
  AttachTraceContext(&request);
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kProfileRequest,
                                  EncodeQueryRequest(request)));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kProfileResult) {
    return UnexpectedReply(reply);
  }
  ProfileResult result;
  OPT_RETURN_IF_ERROR(DecodeProfileResult(reply.payload, &result));
  return result;
}

Result<ListEnd> OptClient::List(
    const std::string& graph,
    const std::function<void(const ListBatch&)>& on_batch,
    const ClientQueryOptions& options) {
  QueryRequest request;
  request.graph = graph;
  request.memory_pages = options.memory_pages;
  request.num_threads = options.num_threads;
  request.deadline_millis = options.deadline_millis;
  AttachTraceContext(&request);
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kListRequest,
                                  EncodeQueryRequest(request)));
  for (;;) {
    WireMessage reply;
    OPT_RETURN_IF_ERROR(ReadReply(&reply));
    switch (reply.type) {
      case MessageType::kListBatch: {
        ListBatch batch;
        OPT_RETURN_IF_ERROR(DecodeListBatch(reply.payload, &batch));
        if (on_batch) on_batch(batch);
        break;
      }
      case MessageType::kListEnd: {
        ListEnd end;
        OPT_RETURN_IF_ERROR(DecodeListEnd(reply.payload, &end));
        return end;
      }
      case MessageType::kError:
        return ErrorFromReply(reply);
      default:
        return UnexpectedReply(reply);
    }
  }
}

Result<std::string> OptClient::Stats() {
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kStatsRequest, {}));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kStatsResult) return UnexpectedReply(reply);
  PayloadReader reader(reply.payload);
  std::string text;
  OPT_RETURN_IF_ERROR(reader.GetString(&text));
  return text;
}

Result<StatsResult> OptClient::StatsFull() {
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kStatsRequest, {}));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kStatsResult) return UnexpectedReply(reply);
  StatsResult stats;
  OPT_RETURN_IF_ERROR(DecodeStatsResult(reply.payload, &stats));
  return stats;
}

Result<MutateResult> OptClient::AddEdges(
    const std::string& graph,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  MutateRequest request;
  request.graph = graph;
  request.edges = edges;
  AttachTraceContext(&request);
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kAddEdgesRequest,
                                  EncodeMutateRequest(request)));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kMutateResult) return UnexpectedReply(reply);
  MutateResult result;
  OPT_RETURN_IF_ERROR(DecodeMutateResult(reply.payload, &result));
  return result;
}

Result<MutateResult> OptClient::RemoveEdges(
    const std::string& graph,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  MutateRequest request;
  request.graph = graph;
  request.edges = edges;
  AttachTraceContext(&request);
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kRemoveEdgesRequest,
                                  EncodeMutateRequest(request)));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kMutateResult) return UnexpectedReply(reply);
  MutateResult result;
  OPT_RETURN_IF_ERROR(DecodeMutateResult(reply.payload, &result));
  return result;
}

Result<SubscribeCountResult> OptClient::SubscribeCount(
    const std::string& graph, uint64_t after_epoch,
    uint64_t timeout_millis) {
  SubscribeCountRequest request;
  request.graph = graph;
  request.after_epoch = after_epoch;
  request.timeout_millis = timeout_millis;
  AttachTraceContext(&request);
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kSubscribeCountRequest,
                                  EncodeSubscribeCountRequest(request)));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kSubscribeCountResult) {
    return UnexpectedReply(reply);
  }
  SubscribeCountResult result;
  OPT_RETURN_IF_ERROR(DecodeSubscribeCountResult(reply.payload, &result));
  return result;
}

Result<TracePullResult> OptClient::TracePull(bool drain) {
  TracePullRequest request;
  request.drain = drain ? 1 : 0;
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kTracePullRequest,
                                  EncodeTracePullRequest(request)));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kTracePullResult) {
    return UnexpectedReply(reply);
  }
  TracePullResult result;
  OPT_RETURN_IF_ERROR(DecodeTracePullResult(reply.payload, &result));
  return result;
}

Result<ShardStatsResult> OptClient::ShardStats() {
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kShardStatsRequest, {}));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kShardStatsResult) {
    return UnexpectedReply(reply);
  }
  ShardStatsResult stats;
  OPT_RETURN_IF_ERROR(DecodeShardStatsResult(reply.payload, &stats));
  return stats;
}

Status OptClient::LoadGraph(const std::string& name,
                            const std::string& base_path) {
  LoadGraphRequest request;
  request.name = name;
  request.base_path = base_path;
  OPT_RETURN_IF_ERROR(SendRequest(MessageType::kLoadGraphRequest,
                                  EncodeLoadGraphRequest(request)));
  WireMessage reply;
  OPT_RETURN_IF_ERROR(ReadReply(&reply));
  if (reply.type == MessageType::kError) return ErrorFromReply(reply);
  if (reply.type != MessageType::kLoadGraphResult) {
    return UnexpectedReply(reply);
  }
  return Status::OK();
}

}  // namespace opt
