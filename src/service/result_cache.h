// Completed-query result cache keyed by (graph, query kind, params,
// graph epoch). The epoch in the key makes entries from a reloaded
// graph unreachable even before InvalidateGraph() sweeps them out; the
// explicit sweep exists so reloads also reclaim the memory.
#ifndef OPT_SERVICE_RESULT_CACHE_H_
#define OPT_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace opt {

struct CachedCount {
  uint64_t triangles = 0;
  double seconds = 0;  // cost of the run that produced the entry
  uint64_t epoch = 0;  // graph epoch the entry was computed against
};

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidations = 0;
  };

  explicit ResultCache(size_t max_entries = 4096);

  std::optional<CachedCount> Lookup(const std::string& key);

  /// `graph` tags the entry for InvalidateGraph. Oldest entries are
  /// evicted past `max_entries`.
  void Insert(const std::string& key, const std::string& graph,
              const CachedCount& value);

  /// Drops every entry computed against `graph` (any epoch).
  void InvalidateGraph(const std::string& graph);

  Stats stats() const;
  size_t size() const;

 private:
  struct Entry {
    CachedCount value;
    std::string graph;
    std::list<std::string>::iterator order_pos;
  };

  const size_t max_entries_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> insertion_order_;  // front = oldest key
  Stats stats_;
};

}  // namespace opt

#endif  // OPT_SERVICE_RESULT_CACHE_H_
