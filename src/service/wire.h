// Length-prefixed binary protocol for opt_server / opt_client, over TCP
// or Unix-domain stream sockets.
//
// Frame layout (little-endian, via util/coding.h):
//   [u32 frame_length] [u8 message_type] [payload: frame_length-1 bytes]
//
// Requests: COUNT, LIST, STATS, LOADGRAPH, ADD_EDGES, REMOVE_EDGES,
// SUBSCRIBE_COUNT. Responses: one COUNT_RESULT / STATS_RESULT /
// LOADGRAPH_RESULT / MUTATE_RESULT / SUBSCRIBE_COUNT_RESULT / ERROR
// frame per request, except LIST, which streams zero or more LIST_BATCH
// frames (nested representation: u, v, k, w1..wk per record) terminated
// by LIST_END or ERROR. Errors carry the Status code + message across
// the wire.
#ifndef OPT_SERVICE_WIRE_H_
#define OPT_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/triangle.h"
#include "obs/flight_recorder.h"
#include "util/status.h"
#include "util/trace.h"

namespace opt {

enum class MessageType : uint8_t {
  // Requests.
  kCountRequest = 1,
  kListRequest = 2,
  kStatsRequest = 3,
  kLoadGraphRequest = 4,
  /// COUNT with the overlap profiler enabled; same payload shape as
  /// kCountRequest, answered with kProfileResult.
  kProfileRequest = 5,
  /// Streaming edge deltas: both share the MutateRequest payload shape
  /// and are answered with kMutateResult (or kError — the batch is all
  /// or nothing).
  kAddEdgesRequest = 6,
  kRemoveEdgesRequest = 7,
  /// Long-poll on the graph's epoch; answered with kSubscribeCountResult
  /// when the epoch advances past `after_epoch` or the timeout elapses.
  kSubscribeCountRequest = 8,
  /// Router-only: per-shard health/latency breakdown (empty payload).
  /// Plain opt_server answers kError(NotSupported).
  kShardStatsRequest = 9,
  /// Drains the process's bounded trace-span ring; answered with
  /// kTracePullResult. A router fans the pull out and concatenates its
  /// shards' sections after its own, so one pull at the front door
  /// collects the whole fleet.
  kTracePullRequest = 10,
  // Responses.
  kCountResult = 64,
  kListBatch = 65,
  kListEnd = 66,
  kStatsResult = 67,
  kLoadGraphResult = 68,
  kError = 69,
  kProfileResult = 70,
  kMutateResult = 71,
  kSubscribeCountResult = 72,
  kShardStatsResult = 73,
  kTracePullResult = 74,
};

struct WireMessage {
  MessageType type = MessageType::kError;
  std::string payload;
};

/// COUNT and LIST share one request shape.
struct QueryRequest {
  std::string graph;
  uint32_t memory_pages = 0;    // 0 = server default
  uint32_t num_threads = 0;     // 0 = server default
  uint64_t deadline_millis = 0; // 0 = none
  /// Distributed-tracing tail (appended on the wire like the router's
  /// partial_shards trick): the request tree's id and the caller's
  /// span. Old servers read the fixed fields and ignore the trailing
  /// bytes; old clients send none and both decode as zero (untraced).
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

struct CountResult {
  uint64_t triangles = 0;
  double seconds = 0;
  uint8_t source = 0;  // ResultSource
  uint64_t pool_hits = 0;
  uint64_t pages_read = 0;
  uint32_t iterations = 0;
  /// Sharded-router tail (appended on the wire; absent from plain
  /// opt_server frames and decoded as zero). Bit i set means shard i
  /// failed and its contribution is missing from `triangles` — 0 is a
  /// complete answer. `num_shards` sizes the mask (0 = unsharded).
  uint64_t partial_shards = 0;
  uint32_t num_shards = 0;
};

struct LoadGraphRequest {
  std::string name;
  std::string base_path;
};

/// ADD_EDGES / REMOVE_EDGES: one batch of undirected edges. Validation
/// (self-loops, duplicates, presence, id range) happens server-side so
/// every client gets the same typed InvalidArgument rejections.
struct MutateRequest {
  std::string graph;
  std::vector<std::pair<VertexId, VertexId>> edges;
  /// Trace tail — see QueryRequest.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

struct MutateResult {
  uint64_t epoch = 0;  // epoch the batch published under
  int64_t batch_triangle_delta = 0;
  int64_t total_triangle_delta = 0;  // residual overlay delta vs base
  uint64_t edges_applied = 0;
  double seconds = 0;
  uint8_t approx_valid = 0;  // sampling estimator enabled and untainted
  double approx_triangles = 0;
  /// Router tail: shards whose sub-batch did NOT commit (their edges are
  /// retryable verbatim — per-shard batches stay all-or-nothing).
  uint64_t partial_shards = 0;
  uint32_t num_shards = 0;
};

struct SubscribeCountRequest {
  std::string graph;
  /// Return immediately once the graph's epoch exceeds this (pass the
  /// last seen epoch; 0 returns the current state right away).
  uint64_t after_epoch = 0;
  /// Long-poll budget; the reply carries `timed_out` when it elapsed
  /// without an epoch advance.
  uint64_t timeout_millis = 0;
  /// Trace tail — see QueryRequest.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

struct SubscribeCountResult {
  uint64_t epoch = 0;
  uint8_t timed_out = 0;
  /// Exact total (base + delta) is only known once a full COUNT has run
  /// against this incarnation of the store; `delta_triangles` and the
  /// edge counters are always exact.
  uint8_t exact_known = 0;
  uint64_t triangles = 0;
  int64_t delta_triangles = 0;
  uint64_t edges_added = 0;
  uint64_t edges_removed = 0;
  uint8_t approx_valid = 0;
  double approx_triangles = 0;
  /// Router tail: shards whose snapshot could not be fetched (their
  /// contribution is missing from the merged totals).
  uint64_t partial_shards = 0;
  uint32_t num_shards = 0;
};

/// STATS reply. The legacy `text` field (newline-separated key=value
/// lines) comes first in the payload, so clients predating the
/// structured fields decode the string and ignore the trailing bytes;
/// new clients reading an old server's frame get empty vectors. The
/// structured fields carry the live metrics registry: per-query latency
/// histogram quantiles and counters (Δin/Δex page savings, pool fetch
/// outcomes, I/O totals).
struct StatsHistogram {
  std::string name;
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

struct StatsCounter {
  std::string name;
  uint64_t value = 0;
};

struct StatsResult {
  std::string text;
  std::vector<StatsHistogram> histograms;
  std::vector<StatsCounter> counters;
};

struct ErrorResult {
  uint32_t code = 0;  // StatusCode
  std::string message;
  /// Flight-recorder tail of the failed query — filled for degraded
  /// (Unavailable) queries so the response ships its own postmortem.
  /// Appended after `message` on the wire: old clients decode code +
  /// message and ignore the tail; old servers simply send none.
  std::vector<FlightEvent> events;
  /// Second tail: the failed request's trace id (0 = untraced), so the
  /// terminal error, its flight-recorder postmortem, the [trace=...]
  /// log lines, and the assembled trace tree all correlate.
  uint64_t trace_id = 0;

  Status ToStatus() const {
    return Status(static_cast<StatusCode>(code), message);
  }
};

/// PROFILE reply: the run's answer plus the sampled overlap accounting
/// and fitted cost model (OverlapReport flattened for the wire).
struct ProfileResult {
  uint64_t triangles = 0;
  double seconds = 0;
  uint32_t iterations = 0;
  // Sampler accounting.
  uint64_t period_micros = 0;
  uint64_t samples = 0;
  uint64_t micro_overlap_samples = 0;
  uint64_t macro_overlap_samples = 0;
  uint64_t cpu_active_samples = 0;
  uint64_t io_inflight_samples = 0;
  uint64_t stalled_samples = 0;
  uint64_t morph_events = 0;
  std::vector<uint64_t> role_samples;  // indexed by ThreadRole
  double micro_overlap = 0;  // fractions of samples
  double macro_overlap = 0;
  // Cost model (§3.3): Cost(ideal) + c(Δex − Δin) vs measured.
  double cost_c_seconds_per_page = 0;
  uint64_t delta_in_pages = 0;
  uint64_t delta_ex_pages = 0;
  double cost_ideal_seconds = 0;
  double cost_predicted_seconds = 0;
  double cost_measured_seconds = 0;
  double cost_residual_seconds = 0;
};

/// One LIST_BATCH frame: nested-representation records.
struct ListBatch {
  struct Record {
    VertexId u = 0;
    VertexId v = 0;
    std::vector<VertexId> ws;
  };
  std::vector<Record> records;
};

struct ListEnd {
  uint64_t triangles = 0;
  double seconds = 0;
  /// Router tail: see CountResult.
  uint64_t partial_shards = 0;
  uint32_t num_shards = 0;
};

/// SHARD_STATS reply: one entry per shard with the router-side view —
/// address, liveness, vertex range, epoch, request/failure/retry totals,
/// and latency quantiles measured at the router (micros).
struct ShardStatsEntry {
  uint32_t id = 0;
  std::string address;  // host:port
  uint8_t healthy = 0;
  uint64_t pid = 0;  // 0 when attached to an externally managed process
  VertexId range_lo = 0;
  VertexId range_hi = 0;  // exclusive
  uint64_t epoch = 0;     // restart-monotonic virtual epoch
  uint64_t restarts = 0;
  uint64_t requests = 0;
  uint64_t failures = 0;
  uint64_t retries = 0;
  uint64_t ghost_triangles = 0;
  double latency_p50_micros = 0;
  double latency_p95_micros = 0;
  double latency_p99_micros = 0;
};

struct ShardStatsResult {
  std::string graph;
  std::vector<ShardStatsEntry> shards;
};

/// TRACE_PULL request: `drain` (the default) empties the ring so spans
/// are reported exactly once across repeated pulls; 0 peeks.
struct TracePullRequest {
  uint8_t drain = 1;
};

/// TRACE_PULL reply: one ProcessTrace section per process. A plain
/// opt_server sends exactly one (itself, or zero when tracing is off);
/// a router sends its own followed by every shard's, relabelled
/// "shard<i>", ready for AssembleTrace().
struct TracePullResult {
  std::vector<ProcessTrace> processes;
};

// ---- payload primitives ----
void PutU32(std::string* dst, uint32_t value);
void PutU64(std::string* dst, uint64_t value);
void PutDouble(std::string* dst, double value);
void PutString(std::string* dst, std::string_view value);

/// Cursor over a received payload; every Get fails with Corruption on
/// truncation instead of reading past the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  Status GetU8(uint8_t* value);
  Status GetU32(uint32_t* value);
  Status GetU64(uint64_t* value);
  Status GetDouble(double* value);
  Status GetString(std::string* value);
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---- message encode/decode ----
std::string EncodeQueryRequest(const QueryRequest& request);
Status DecodeQueryRequest(std::string_view payload, QueryRequest* out);

std::string EncodeCountResult(const CountResult& result);
Status DecodeCountResult(std::string_view payload, CountResult* out);

std::string EncodeLoadGraphRequest(const LoadGraphRequest& request);
Status DecodeLoadGraphRequest(std::string_view payload,
                              LoadGraphRequest* out);

std::string EncodeMutateRequest(const MutateRequest& request);
Status DecodeMutateRequest(std::string_view payload, MutateRequest* out);

std::string EncodeMutateResult(const MutateResult& result);
Status DecodeMutateResult(std::string_view payload, MutateResult* out);

std::string EncodeSubscribeCountRequest(const SubscribeCountRequest& request);
Status DecodeSubscribeCountRequest(std::string_view payload,
                                   SubscribeCountRequest* out);

std::string EncodeSubscribeCountResult(const SubscribeCountResult& result);
Status DecodeSubscribeCountResult(std::string_view payload,
                                  SubscribeCountResult* out);

std::string EncodeError(const Status& status);
/// With a flight-recorder tail appended (degraded queries) and the
/// request's trace id (0 = untraced) after it.
std::string EncodeError(const Status& status,
                        const std::vector<FlightEvent>& events,
                        uint64_t trace_id = 0);
/// Tolerates payloads that end after `message` (pre-flight-recorder
/// servers leave `events` empty) or after `events` (pre-tracing servers
/// leave `trace_id` zero).
Status DecodeError(std::string_view payload, ErrorResult* out);

std::string EncodeProfileResult(const ProfileResult& result);
Status DecodeProfileResult(std::string_view payload, ProfileResult* out);

std::string EncodeListBatch(const ListBatch& batch);
Status DecodeListBatch(std::string_view payload, ListBatch* out);

std::string EncodeListEnd(const ListEnd& end);
Status DecodeListEnd(std::string_view payload, ListEnd* out);

std::string EncodeStatsResult(const StatsResult& stats);
/// Tolerates payloads that end after `text` (pre-registry servers).
Status DecodeStatsResult(std::string_view payload, StatsResult* out);

std::string EncodeShardStatsResult(const ShardStatsResult& stats);
Status DecodeShardStatsResult(std::string_view payload,
                              ShardStatsResult* out);

std::string EncodeTracePullRequest(const TracePullRequest& request);
Status DecodeTracePullRequest(std::string_view payload,
                              TracePullRequest* out);

std::string EncodeTracePullResult(const TracePullResult& result);
Status DecodeTracePullResult(std::string_view payload, TracePullResult* out);

// ---- framed socket I/O ----
/// Writes [len][type][payload] with a retry loop (EINTR, short writes).
Status WriteMessage(int fd, MessageType type, std::string_view payload);

/// Reads one frame. NotFound signals clean EOF at a frame boundary
/// (peer closed); IOError/Corruption anything else. `max_payload`
/// bounds a hostile or corrupt length prefix.
Status ReadMessage(int fd, WireMessage* out,
                   size_t max_payload = 64u << 20);

}  // namespace opt

#endif  // OPT_SERVICE_WIRE_H_
