#include "service/query_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "util/logging.h"
#include "util/trace.h"

namespace opt {

namespace {

std::shared_future<QueryResult> ImmediateResult(QueryResult result) {
  std::promise<QueryResult> promise;
  promise.set_value(std::move(result));
  return promise.get_future().share();
}

const char* KindName(QueryKind kind) {
  return kind == QueryKind::kList ? "LIST" : "COUNT";
}

/// `[trace=<hex>] ` prefix for Warn-level log lines tied to a traced
/// request; empty when the request was untraced so existing log
/// consumers see unchanged output.
std::string TraceTag(uint64_t trace_id) {
  if (trace_id == 0) return std::string();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[trace=%016llx] ",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf);
}

}  // namespace

QueryScheduler::QueryScheduler(GraphRegistry* registry,
                               const SchedulerOptions& options)
    : registry_(registry),
      options_(options),
      latency_hist_(Metrics().GetHistogram("query.latency_us")),
      queue_wait_hist_(Metrics().GetHistogram("query.queue_wait_us")),
      exec_hist_(Metrics().GetHistogram("query.exec_us")),
      slow_query_counter_(Metrics().GetCounter("scheduler.slow_queries")),
      degraded_counter_(Metrics().GetCounter("query.degraded")),
      delta_apply_hist_(Metrics().GetHistogram("delta.apply_us")),
      delta_batches_counter_(Metrics().GetCounter("delta.batches")),
      delta_edges_added_counter_(Metrics().GetCounter("delta.edges_added")),
      delta_edges_removed_counter_(
          Metrics().GetCounter("delta.edges_removed")),
      delta_triangles_added_counter_(
          Metrics().GetCounter("delta.triangles_added")),
      delta_triangles_removed_counter_(
          Metrics().GetCounter("delta.triangles_removed")),
      delta_rejected_counter_(Metrics().GetCounter("delta.rejected")),
      delta_degraded_counter_(Metrics().GetCounter("delta.degraded")) {
  const uint32_t workers = std::max(options_.workers, 1u);
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

QueryScheduler::~QueryScheduler() {
  std::deque<std::shared_ptr<Task>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    orphaned.swap(queue_);
    inflight_.clear();
    // Running queries finish on their own; cancelling them keeps
    // shutdown prompt.
    for (auto& task : running_) {
      task->cancel.store(true, std::memory_order_relaxed);
    }
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  QueryResult aborted;
  aborted.status = Status::Aborted("scheduler shutting down");
  for (auto& task : orphaned) {
    for (auto& waiter : task->waiters) waiter->set_value(aborted);
  }
  for (auto& w : workers_) w.join();
  if (watchdog_.joinable()) watchdog_.join();
}

std::string QueryScheduler::CacheKey(const QuerySpec& spec, uint64_t epoch,
                                     const SchedulerOptions& defaults) {
  const uint32_t pages = spec.memory_pages != 0
                             ? spec.memory_pages
                             : defaults.default_memory_pages;
  const uint32_t threads =
      spec.num_threads != 0 ? spec.num_threads : defaults.default_threads;
  // Thread count does not change the answer, only the run; it stays out
  // of the key so differently-parallel duplicates still share work.
  (void)threads;
  return spec.graph + '\0' + std::to_string(epoch) + '\0' +
         std::to_string(static_cast<int>(spec.kind)) + '\0' +
         std::to_string(pages);
}

std::shared_future<QueryResult> QueryScheduler::Submit(
    const QuerySpec& spec) {
  const auto submit_start = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
  }
  if (spec.kind == QueryKind::kList && spec.list_sink == nullptr) {
    QueryResult result;
    result.status =
        Status::InvalidArgument("LIST query submitted without a sink");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failed;
    return ImmediateResult(std::move(result));
  }

  auto handle = registry_->Acquire(spec.graph);
  if (!handle.ok()) {
    QueryResult result;
    result.status = handle.status();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failed;
    return ImmediateResult(std::move(result));
  }

  // Profiled queries measure a fresh run: sharing an in-flight run or a
  // cached answer would return no samples.
  const bool coalescable = spec.kind == QueryKind::kCount && !spec.profile;
  const std::string key = CacheKey(spec, handle->epoch, options_);

  if (coalescable && options_.enable_result_cache) {
    if (auto cached = cache_.Lookup(key)) {
      QueryResult result;
      result.triangles = cached->triangles;
      result.source = ResultSource::kCache;
      result.epoch = cached->epoch;
      latency_hist_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - submit_start)
              .count()));
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cache_hits;
      ++stats_.completed;
      return ImmediateResult(std::move(result));
    }
  }

  auto promise = std::make_shared<std::promise<QueryResult>>();
  auto future = promise->get_future().share();
  const auto now = Clock::now();
  const bool has_deadline = spec.deadline_millis != 0;
  const auto deadline =
      now + std::chrono::milliseconds(spec.deadline_millis);

  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) {
    promise->set_value(
        {Status::Aborted("scheduler shutting down"), 0, 0});
    return future;
  }
  if (coalescable) {
    auto it = inflight_.find(key);
    if (it != inflight_.end() &&
        !it->second->cancel.load(std::memory_order_relaxed)) {
      Task* task = it->second.get();
      task->waiters.push_back(std::move(promise));
      // The shared run must satisfy the most patient waiter.
      if (!has_deadline) {
        task->has_deadline = false;
      } else if (task->has_deadline) {
        task->deadline = std::max(task->deadline, deadline);
      }
      ++stats_.coalesced;
      return future;
    }
  }
  if (queue_.size() >= options_.max_queue) {
    ++stats_.rejected;
    promise->set_value({Status::ResourceExhausted(
                            "admission queue full (" +
                            std::to_string(queue_.size()) + " waiting)"),
                        0, 0});
    return future;
  }
  auto task = std::make_shared<Task>();
  task->spec = spec;
  task->trace = CurrentTraceContext();
  task->coalesce_key = coalescable ? key : std::string();
  task->deadline = deadline;
  task->has_deadline = has_deadline;
  task->submitted_at = now;
  task->waiters.push_back(std::move(promise));
  queue_.push_back(task);
  if (coalescable) inflight_[key] = task;
  ++stats_.admitted;
  work_cv_.notify_one();
  return future;
}

QueryResult QueryScheduler::Run(const QuerySpec& spec) {
  return Submit(spec).get();
}

Status QueryScheduler::LoadGraph(const std::string& name,
                                 const std::string& base_path) {
  OPT_RETURN_IF_ERROR(registry_->LoadGraph(name, base_path));
  cache_.InvalidateGraph(name);
  return Status::OK();
}

MutationResult QueryScheduler::ApplyDelta(const std::string& graph,
                                          DeltaKind kind,
                                          std::span<const Edge> edges) {
  TraceSpan span("service", "delta.apply",
                 CurrentTraceRecorder() != nullptr
                     ? "\"graph\":\"" + JsonEscape(graph) + "\",\"kind\":\"" +
                           (kind == DeltaKind::kAdd ? "ADD_EDGES"
                                                    : "REMOVE_EDGES") +
                           "\",\"edges\":" + std::to_string(edges.size())
                     : std::string());
  const auto start = Clock::now();
  auto outcome = registry_->ApplyEdgeDelta(graph, kind, edges);
  const uint64_t apply_us = static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
             .count()));
  delta_apply_hist_->Record(apply_us);

  MutationResult result;
  result.seconds = static_cast<double>(apply_us) * 1e-6;
  if (!outcome.ok()) {
    result.status = outcome.status();
    result.degraded = result.status.IsUnavailable();
    if (result.degraded) {
      delta_degraded_counter_->Increment();
      OPT_LOG(Warn) << TraceTag(span.trace_id())
                    << "degraded mutation: graph=" << graph
                    << " status=" << result.status.ToString()
                    << " (batch NOT applied; retry verbatim)";
    } else if (result.status.IsInvalidArgument()) {
      delta_rejected_counter_->Increment();
    }
    return result;
  }
  delta_batches_counter_->Increment();
  if (kind == DeltaKind::kAdd) {
    delta_edges_added_counter_->Increment(outcome->edges_applied);
  } else {
    delta_edges_removed_counter_->Increment(outcome->edges_applied);
  }
  delta_triangles_added_counter_->Increment(outcome->triangles_added);
  delta_triangles_removed_counter_->Increment(outcome->triangles_removed);
  // Epoch-keyed cache entries for older epochs are unreachable already;
  // dropping them eagerly just keeps the cache from holding dead weight.
  cache_.InvalidateGraph(graph);

  result.status = Status::OK();
  result.epoch = outcome->epoch;
  result.batch_triangle_delta = outcome->batch_triangle_delta;
  result.total_triangle_delta = outcome->total_triangle_delta;
  result.edges_applied = outcome->edges_applied;
  result.approx_valid = outcome->approx_valid;
  result.approx_triangles = outcome->approx_triangles;
  return result;
}

SchedulerStats QueryScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void QueryScheduler::Finish(const std::shared_ptr<Task>& task,
                            const QueryResult& result) {
  const auto finished_at = Clock::now();
  const auto micros_between = [](Clock::time_point from,
                                 Clock::time_point to) {
    return static_cast<uint64_t>(std::max<int64_t>(
        0, std::chrono::duration_cast<std::chrono::microseconds>(to - from)
               .count()));
  };
  const uint64_t latency_us =
      micros_between(task->submitted_at, finished_at);
  const uint64_t queue_wait_us =
      micros_between(task->submitted_at, task->exec_start);
  const uint64_t exec_us = micros_between(task->exec_start, finished_at);
  latency_hist_->Record(latency_us);
  queue_wait_hist_->Record(queue_wait_us);
  exec_hist_->Record(exec_us);

  const bool slow = options_.slow_query_millis != 0 &&
                    latency_us > options_.slow_query_millis * 1000;
  if (slow) {
    slow_query_counter_->Increment();
    OPT_LOG(Warn) << TraceTag(task->trace.trace_id)
                  << "slow query: graph=" << task->spec.graph
                  << " kind=" << KindName(task->spec.kind)
                  << " queue_wait_ms=" << queue_wait_us / 1e3
                  << " exec_ms=" << exec_us / 1e3
                  << " status=" << result.status.ToString();
  }

  std::vector<std::shared_ptr<std::promise<QueryResult>>> waiters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!task->coalesce_key.empty()) {
      auto it = inflight_.find(task->coalesce_key);
      if (it != inflight_.end() && it->second == task) inflight_.erase(it);
    }
    running_.erase(std::remove(running_.begin(), running_.end(), task),
                   running_.end());
    waiters.swap(task->waiters);
    // Per query, not per task: every coalesced waiter got an answer.
    if (result.status.ok()) {
      stats_.completed += waiters.size();
    } else {
      stats_.failed += waiters.size();
      if (result.degraded) stats_.degraded += waiters.size();
      if (result.status.code() == StatusCode::kAborted &&
          task->cancel.load(std::memory_order_relaxed)) {
        ++stats_.deadline_expired;
      }
    }
    if (slow) ++stats_.slow_queries;
  }
  QueryResult coalesced_result = result;
  coalesced_result.queue_seconds = static_cast<double>(queue_wait_us) * 1e-6;
  bool first = true;
  for (auto& waiter : waiters) {
    if (!first) coalesced_result.source = ResultSource::kCoalesced;
    waiter->set_value(coalesced_result);
    first = false;
  }
}

QueryResult QueryScheduler::Execute(Task* task) {
  // Worker threads have no ambient trace context of their own; rehydrate
  // the submitter's so the execute span parents under the request span
  // even across the queue hop.
  TraceContextScope remote(task->trace);
  TraceSpan query_span("service", "query.execute",
                       CurrentTraceRecorder() != nullptr
                           ? "\"graph\":\"" + JsonEscape(task->spec.graph) +
                                 "\",\"kind\":\"" +
                                 KindName(task->spec.kind) + "\""
                           : std::string());
  QueryResult result;
  auto handle = registry_->Acquire(task->spec.graph);
  if (!handle.ok()) {
    result.status = handle.status();
    return result;
  }
  GraphStore* store = handle->store.get();
  result.epoch = handle->epoch;
  const bool dirty_overlay =
      handle->overlay != nullptr && !handle->overlay->empty();
  if (dirty_overlay && task->spec.kind == QueryKind::kList) {
    // The batch engine streams the on-disk store only; listing through
    // an overlay would silently miss/over-report delta edges. Reload
    // (or remove the pending deltas) to list again.
    result.status = Status::NotSupported(
        "LIST on graph '" + task->spec.graph + "' with " +
        std::to_string(handle->overlay->edges_added() +
                       handle->overlay->edges_removed()) +
        " pending delta edges; COUNT remains exact");
    return result;
  }

  const uint32_t pages = task->spec.memory_pages != 0
                             ? task->spec.memory_pages
                             : options_.default_memory_pages;
  OptOptions opt;
  opt.m_in = std::max(pages / 2, store->MaxRecordPages());
  opt.m_ex = std::max(1u, pages - pages / 2);
  opt.num_threads = task->spec.num_threads != 0
                        ? task->spec.num_threads
                        : options_.default_threads;
  opt.io_queue_depth = options_.io_queue_depth;
  opt.shared_pool = registry_->pool();
  opt.pool_owner = handle->owner;
  opt.cancel = &task->cancel;
  // Every query gets a flight recorder (events are two relaxed stores);
  // its tail is only materialized when the query comes back degraded.
  FlightRecorder recorder(256);
  recorder.set_trace_id(query_span.trace_id());
  opt.flight = &recorder;
  opt.profile = task->spec.profile;
  opt.profile_period_micros = options_.profile_period_micros;

  EdgeIteratorModel model;
  OptRunner runner(store, &model, opt);
  CountingSink counter;
  OptRunStats run_stats;
  Status status;
  if (task->spec.kind == QueryKind::kList) {
    TeeSink tee({&counter, task->spec.list_sink});
    status = runner.Run(&tee, &run_stats);
  } else {
    status = runner.Run(&counter, &run_stats);
  }
  result.status = status;
  // An Unavailable run is degraded, not dead: the partial triangle
  // count computed before the fault still rides along as a lower bound.
  result.degraded = status.IsUnavailable();
  if (result.degraded) {
    degraded_counter_->Increment();
    // The degraded response ships its own postmortem: the event tail
    // rides the wire and the log gets a copy.
    result.flight_events = recorder.Tail(64);
    OPT_LOG(Warn) << TraceTag(query_span.trace_id())
                  << "degraded query: graph=" << task->spec.graph
                  << " status=" << status.ToString()
                  << " flight recorder tail ("
                  << result.flight_events.size() << " of "
                  << recorder.total_recorded() << " events):\n"
                  << FlightRecorder::Render(result.flight_events,
                                            query_span.trace_id());
  }
  result.profiled = run_stats.profiled;
  if (run_stats.profiled) result.overlap = run_stats.overlap;
  result.triangles = counter.count();
  result.seconds = run_stats.elapsed_seconds;
  if (status.ok() && task->spec.kind == QueryKind::kCount) {
    // The engine ran the immutable base store, so counter.count() is the
    // base triangle count: record it (O(1) subscribe totals), then fold
    // in the overlay delta of the acquired epoch for the answer.
    registry_->SetBaseTriangles(task->spec.graph, store, counter.count());
    if (dirty_overlay) {
      const int64_t total = static_cast<int64_t>(counter.count()) +
                            handle->overlay->triangle_delta();
      result.triangles = static_cast<uint64_t>(std::max<int64_t>(0, total));
    }
  }
  result.iterations = run_stats.iterations;
  result.pool_hits =
      run_stats.internal_cache_hits + run_stats.external_cache_hits;
  result.pages_read =
      run_stats.internal_pages_read + run_stats.external_pages_read;

  if (status.ok() && task->spec.kind == QueryKind::kCount &&
      options_.enable_result_cache) {
    CachedCount cached;
    cached.triangles = result.triangles;
    cached.seconds = result.seconds;
    cached.epoch = handle->epoch;
    cache_.Insert(CacheKey(task->spec, handle->epoch, options_),
                  task->spec.graph, cached);
  }
  return result;
}

void QueryScheduler::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      task->exec_start = Clock::now();
      if (task->has_deadline && Clock::now() > task->deadline) {
        // Expired while waiting for admission.
        task->cancel.store(true, std::memory_order_relaxed);
      }
      running_.push_back(task);
      if (!task->cancel.load(std::memory_order_relaxed)) {
        ++stats_.executed;
      }
    }
    QueryResult result;
    if (task->cancel.load(std::memory_order_relaxed)) {
      result.status =
          Status::Aborted("deadline exceeded before execution");
    } else {
      result = Execute(task.get());
    }
    Finish(task, result);
  }
}

void QueryScheduler::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    const auto now = Clock::now();
    for (auto& task : running_) {
      if (task->has_deadline && now > task->deadline) {
        task->cancel.store(true, std::memory_order_relaxed);
      }
    }
    for (auto& task : queue_) {
      if (task->has_deadline && now > task->deadline) {
        task->cancel.store(true, std::memory_order_relaxed);
      }
    }
    watchdog_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

}  // namespace opt
