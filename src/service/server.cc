#include "service/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/perf_counters.h"
#include "service/graph_registry.h"
#include "storage/buffer_pool.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace opt {

namespace {

/// Streams LIST output over the wire in batches. Emits are serialized
/// with a mutex (the engine emits from several threads); a failed write
/// latches the error and turns the rest of the stream into a no-op so
/// the engine can finish without blocking on a dead peer.
class WireListSink : public TriangleSink {
 public:
  explicit WireListSink(int fd, size_t batch_records = 512)
      : fd_(fd), batch_records_(batch_records) {}

  void Emit(VertexId u, VertexId v,
            std::span<const VertexId> ws) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!write_status_.ok()) return;
    ListBatch::Record record;
    record.u = u;
    record.v = v;
    record.ws.assign(ws.begin(), ws.end());
    batch_.records.push_back(std::move(record));
    if (batch_.records.size() >= batch_records_) FlushLocked();
  }

  Status Finish() override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (write_status_.ok() && !batch_.records.empty()) FlushLocked();
    return write_status_;
  }

  Status write_status() {
    std::lock_guard<std::mutex> lock(mutex_);
    return write_status_;
  }

 private:
  void FlushLocked() {
    write_status_ =
        WriteMessage(fd_, MessageType::kListBatch, EncodeListBatch(batch_));
    batch_.records.clear();
  }

  const int fd_;
  const size_t batch_records_;
  std::mutex mutex_;
  ListBatch batch_;
  Status write_status_;
};

Status SendError(int fd, const Status& status) {
  return WriteMessage(fd, MessageType::kError, EncodeError(status));
}

/// Degraded queries ship their flight-recorder tail with the error,
/// plus the request's trace id so the client can line the events up
/// with the distributed trace.
Status SendError(int fd, const Status& status,
                 const std::vector<FlightEvent>& events,
                 uint64_t trace_id) {
  return WriteMessage(fd, MessageType::kError,
                      EncodeError(status, events, trace_id));
}

QuerySpec SpecFromRequest(const QueryRequest& request, QueryKind kind) {
  QuerySpec spec;
  spec.graph = request.graph;
  spec.kind = kind;
  spec.memory_pages = request.memory_pages;
  spec.num_threads = request.num_threads;
  spec.deadline_millis = request.deadline_millis;
  return spec;
}

CountResult CountResultFrom(const QueryResult& result) {
  CountResult wire;
  wire.triangles = result.triangles;
  wire.seconds = result.seconds;
  wire.source = static_cast<uint8_t>(result.source);
  wire.pool_hits = result.pool_hits;
  wire.pages_read = result.pages_read;
  wire.iterations = result.iterations;
  return wire;
}

ProfileResult ProfileResultFrom(const QueryResult& result) {
  ProfileResult wire;
  wire.triangles = result.triangles;
  wire.seconds = result.seconds;
  wire.iterations = result.iterations;
  const OverlapReport& overlap = result.overlap;
  wire.period_micros = overlap.period_micros;
  wire.samples = overlap.samples;
  wire.micro_overlap_samples = overlap.micro_overlap_samples;
  wire.macro_overlap_samples = overlap.macro_overlap_samples;
  wire.cpu_active_samples = overlap.cpu_active_samples;
  wire.io_inflight_samples = overlap.io_inflight_samples;
  wire.stalled_samples = overlap.stalled_samples;
  wire.morph_events = overlap.morph_events;
  wire.role_samples.assign(overlap.role_samples.begin(),
                           overlap.role_samples.end());
  wire.micro_overlap = overlap.MicroOverlapFraction();
  wire.macro_overlap = overlap.MacroOverlapFraction();
  wire.cost_c_seconds_per_page = overlap.cost.c_seconds_per_page;
  wire.delta_in_pages = overlap.cost.delta_in_pages;
  wire.delta_ex_pages = overlap.cost.delta_ex_pages;
  wire.cost_ideal_seconds = overlap.cost.ideal_seconds;
  wire.cost_predicted_seconds = overlap.cost.predicted_seconds;
  wire.cost_measured_seconds = overlap.cost.measured_seconds;
  wire.cost_residual_seconds = overlap.cost.residual_seconds;
  return wire;
}

}  // namespace

OptServer::OptServer(QueryScheduler* scheduler, bool allow_load_graph,
                     bool allow_mutations)
    : scheduler_(scheduler),
      allow_load_graph_(allow_load_graph),
      allow_mutations_(allow_mutations) {}

OptServer::~OptServer() { Stop(); }

Status OptServer::ListenTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  listen_fd_ = fd;
  bound_port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status OptServer::ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        Status::IOError(std::string("bind ") + path + ": " +
                        std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  listen_fd_ = fd;
  unix_path_ = path;
  return Status::OK();
}

Status OptServer::Start() {
  if (listen_fd_ < 0) {
    return Status::InvalidArgument("Start() before a successful Listen*()");
  }
  if (accept_thread_.joinable()) {
    return Status::InvalidArgument("server already started");
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  prime_thread_ = std::thread([this] { PrimeLoop(); });
  return Status::OK();
}

void OptServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    if (prime_thread_.joinable()) prime_thread_.join();
    return;
  }
  const int listener = listen_fd_.exchange(-1);
  if (listener >= 0) {
    // shutdown() unblocks accept(); close() alone does not on Linux.
    ::shutdown(listener, SHUT_RDWR);
    ::close(listener);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
    ::close(connection->fd);
  }
  {
    // Lock around the notify so a primer between its stopping_ check
    // and its wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(prime_mutex_);
  }
  prime_cv_.notify_all();
  if (prime_thread_.joinable()) prime_thread_.join();
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void OptServer::AcceptLoop() {
  for (;;) {
    const int listener = listen_fd_.load(std::memory_order_acquire);
    if (listener < 0) return;  // Stop() retired the listener
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop(), or fatal
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    connection->thread = std::thread([this, fd] { HandleConnection(fd); });
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

void OptServer::HandleConnection(int fd) {
  for (;;) {
    WireMessage message;
    Status status = ReadMessage(fd, &message);
    if (!status.ok()) return;  // EOF or broken pipe: drop the connection
    switch (message.type) {
      case MessageType::kCountRequest:
        status = HandleCount(fd, message);
        break;
      case MessageType::kListRequest:
        status = HandleList(fd, message);
        break;
      case MessageType::kProfileRequest:
        status = HandleProfile(fd, message);
        break;
      case MessageType::kStatsRequest:
        status = HandleStats(fd);
        break;
      case MessageType::kLoadGraphRequest:
        status = HandleLoadGraph(fd, message);
        break;
      case MessageType::kAddEdgesRequest:
        status = HandleMutate(fd, message, DeltaKind::kAdd);
        break;
      case MessageType::kRemoveEdgesRequest:
        status = HandleMutate(fd, message, DeltaKind::kRemove);
        break;
      case MessageType::kSubscribeCountRequest:
        status = HandleSubscribe(fd, message);
        break;
      case MessageType::kTracePullRequest:
        status = HandleTracePull(fd, message);
        break;
      case MessageType::kShardStatsRequest:
        status = SendError(
            fd, Status::NotSupported(
                    "SHARD_STATS is answered by opt_router, not opt_server"));
        break;
      default:
        status = SendError(
            fd, Status::InvalidArgument(
                    "unexpected message type " +
                    std::to_string(static_cast<int>(message.type))));
        break;
    }
    if (!status.ok()) return;
  }
}

Status OptServer::HandleCount(int fd, const WireMessage& message) {
  QueryRequest request;
  Status status = DecodeQueryRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  TraceContextScope remote({request.trace_id, request.parent_span_id});
  TraceSpan query_span("service", "query.count",
                       CurrentTraceRecorder() != nullptr
                           ? "\"graph\":\"" + JsonEscape(request.graph) + "\""
                           : std::string());
  const QueryResult result =
      scheduler_->Run(SpecFromRequest(request, QueryKind::kCount));
  if (!result.status.ok()) {
    return SendError(fd, result.status, result.flight_events,
                     query_span.trace_id());
  }
  return WriteMessage(fd, MessageType::kCountResult,
                      EncodeCountResult(CountResultFrom(result)));
}

Status OptServer::HandleProfile(int fd, const WireMessage& message) {
  QueryRequest request;
  Status status = DecodeQueryRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  TraceContextScope remote({request.trace_id, request.parent_span_id});
  TraceSpan query_span("service", "query.profile",
                       CurrentTraceRecorder() != nullptr
                           ? "\"graph\":\"" + JsonEscape(request.graph) + "\""
                           : std::string());
  QuerySpec spec = SpecFromRequest(request, QueryKind::kCount);
  spec.profile = true;
  const QueryResult result = scheduler_->Run(spec);
  if (!result.status.ok()) {
    return SendError(fd, result.status, result.flight_events,
                     query_span.trace_id());
  }
  const ProfileResult profile = ProfileResultFrom(result);
  AppendProfileLine(profile, request.graph);
  return WriteMessage(fd, MessageType::kProfileResult,
                      EncodeProfileResult(profile));
}

Status OptServer::HandleList(int fd, const WireMessage& message) {
  QueryRequest request;
  Status status = DecodeQueryRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  TraceContextScope remote({request.trace_id, request.parent_span_id});
  TraceSpan query_span("service", "query.list",
                       CurrentTraceRecorder() != nullptr
                           ? "\"graph\":\"" + JsonEscape(request.graph) + "\""
                           : std::string());
  WireListSink sink(fd);
  QuerySpec spec = SpecFromRequest(request, QueryKind::kList);
  spec.list_sink = &sink;
  const QueryResult result = scheduler_->Run(spec);
  OPT_RETURN_IF_ERROR(sink.Finish());
  if (!result.status.ok()) {
    return SendError(fd, result.status, result.flight_events,
                     query_span.trace_id());
  }
  ListEnd end;
  end.triangles = result.triangles;
  end.seconds = result.seconds;
  return WriteMessage(fd, MessageType::kListEnd, EncodeListEnd(end));
}

std::string OptServer::RenderStats() const {
  std::ostringstream out;
  const SchedulerStats stats = scheduler_->stats();
  out << "scheduler.submitted=" << stats.submitted << '\n'
      << "scheduler.admitted=" << stats.admitted << '\n'
      << "scheduler.rejected=" << stats.rejected << '\n'
      << "scheduler.executed=" << stats.executed << '\n'
      << "scheduler.completed=" << stats.completed << '\n'
      << "scheduler.failed=" << stats.failed << '\n'
      << "scheduler.coalesced=" << stats.coalesced << '\n'
      << "scheduler.cache_hits=" << stats.cache_hits << '\n'
      << "scheduler.deadline_expired=" << stats.deadline_expired << '\n'
      << "scheduler.slow_queries=" << stats.slow_queries << '\n'
      << "scheduler.degraded=" << stats.degraded << '\n';
  const ResultCache::Stats cache = scheduler_->cache_stats();
  out << "cache.hits=" << cache.hits << '\n'
      << "cache.misses=" << cache.misses << '\n'
      << "cache.insertions=" << cache.insertions << '\n'
      << "cache.invalidations=" << cache.invalidations << '\n';
  GraphRegistry* registry = scheduler_->registry();
  if (const BufferPool* pool = registry->pool()) {
    const PoolStatsSnapshot snapshot = pool->stats().Snapshot();
    out << "pool.frames=" << pool->num_frames() << '\n'
        << "pool.lookups=" << snapshot.lookups << '\n'
        << "pool.hits=" << snapshot.hits << '\n'
        << "pool.evictions=" << snapshot.evictions << '\n'
        << "pool.allocations=" << snapshot.allocations << '\n';
  }
  // The active counter backend (DESIGN.md §13) plus every registry
  // gauge: gauges don't travel in the wire counters section, so the
  // text block is where clients read opt.hub.* and perf.* levels.
  out << PerfBackendStatsText();
  for (const auto& [name, value] : Metrics().Gauges()) {
    out << name << "=" << value << '\n';
  }
  for (const GraphRegistry::GraphInfo& info : registry->List()) {
    out << "graph." << info.name << ".vertices=" << info.num_vertices
        << '\n'
        << "graph." << info.name << ".directed_edges="
        << info.num_directed_edges << '\n'
        << "graph." << info.name << ".pages=" << info.num_pages << '\n'
        << "graph." << info.name << ".epoch=" << info.epoch << '\n'
        << "graph." << info.name << ".delta_edges_added="
        << info.delta_edges_added << '\n'
        << "graph." << info.name << ".delta_edges_removed="
        << info.delta_edges_removed << '\n'
        << "graph." << info.name << ".delta_triangles="
        << info.delta_triangles << '\n';
  }
  return out.str();
}

StatsResult OptServer::BuildStats() const {
  StatsResult stats;
  stats.text = RenderStats();
  MetricsRegistry& registry = Metrics();
  for (const MetricsRegistry::HistogramEntry& entry :
       registry.Histograms()) {
    StatsHistogram histogram;
    histogram.name = entry.name;
    histogram.count = entry.snapshot.count;
    histogram.min = entry.snapshot.min;
    histogram.max = entry.snapshot.max;
    histogram.mean = entry.snapshot.Mean();
    histogram.p50 = entry.snapshot.P50();
    histogram.p95 = entry.snapshot.P95();
    histogram.p99 = entry.snapshot.P99();
    stats.histograms.push_back(std::move(histogram));
  }
  for (const auto& [name, value] : registry.Counters()) {
    stats.counters.push_back({name, value});
  }
  return stats;
}

Status OptServer::HandleStats(int fd) {
  return WriteMessage(fd, MessageType::kStatsResult,
                      EncodeStatsResult(BuildStats()));
}

void OptServer::SetProfileOutput(const std::string& path) {
  std::lock_guard<std::mutex> lock(profile_out_mutex_);
  profile_out_path_ = path;
}

void OptServer::AppendProfileLine(const ProfileResult& profile,
                                  const std::string& graph) {
  std::lock_guard<std::mutex> lock(profile_out_mutex_);
  if (profile_out_path_.empty()) return;
  std::ofstream out(profile_out_path_, std::ios::app);
  if (!out) return;
  out << "{\"graph\":\"" << JsonEscape(graph) << "\""
      << ",\"triangles\":" << profile.triangles
      << ",\"seconds\":" << profile.seconds
      << ",\"iterations\":" << profile.iterations
      << ",\"period_micros\":" << profile.period_micros
      << ",\"samples\":" << profile.samples
      << ",\"micro_overlap\":" << profile.micro_overlap
      << ",\"macro_overlap\":" << profile.macro_overlap
      << ",\"stalled_samples\":" << profile.stalled_samples
      << ",\"morph_events\":" << profile.morph_events
      << ",\"cost_c_seconds_per_page\":" << profile.cost_c_seconds_per_page
      << ",\"delta_in_pages\":" << profile.delta_in_pages
      << ",\"delta_ex_pages\":" << profile.delta_ex_pages
      << ",\"cost_ideal_seconds\":" << profile.cost_ideal_seconds
      << ",\"cost_predicted_seconds\":" << profile.cost_predicted_seconds
      << ",\"cost_measured_seconds\":" << profile.cost_measured_seconds
      << ",\"cost_residual_seconds\":" << profile.cost_residual_seconds
      << "}\n";
}

Status OptServer::HandleMutate(int fd, const WireMessage& message,
                               DeltaKind kind) {
  if (!allow_mutations_) {
    return SendError(fd, Status::NotSupported(
                             "streaming mutations disabled on this server"));
  }
  MutateRequest request;
  Status status = DecodeMutateRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  TraceContextScope remote({request.trace_id, request.parent_span_id});
  TraceSpan span("service",
                 kind == DeltaKind::kAdd ? "delta.add" : "delta.remove",
                 CurrentTraceRecorder() != nullptr
                     ? "\"graph\":\"" + JsonEscape(request.graph) + "\""
                     : std::string());
  const MutationResult result =
      scheduler_->ApplyDelta(request.graph, kind, request.edges);
  if (!result.status.ok()) return SendError(fd, result.status);
  MutateResult wire;
  wire.epoch = result.epoch;
  wire.batch_triangle_delta = result.batch_triangle_delta;
  wire.total_triangle_delta = result.total_triangle_delta;
  wire.edges_applied = result.edges_applied;
  wire.seconds = result.seconds;
  wire.approx_valid = result.approx_valid ? 1 : 0;
  wire.approx_triangles = result.approx_triangles;
  return WriteMessage(fd, MessageType::kMutateResult,
                      EncodeMutateResult(wire));
}

Status OptServer::HandleSubscribe(int fd, const WireMessage& message) {
  SubscribeCountRequest request;
  Status status = DecodeSubscribeCountRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  TraceContextScope remote({request.trace_id, request.parent_span_id});
  TraceSpan span("service", "subscribe.count",
                 CurrentTraceRecorder() != nullptr
                     ? "\"graph\":\"" + JsonEscape(request.graph) + "\""
                     : std::string());
  GraphRegistry* registry = scheduler_->registry();
  auto state = registry->DeltaState(request.graph);
  if (!state.ok()) return SendError(fd, state.status());
  if (!state->base_known) {
    // Learn the base count in the background: a synchronous COUNT here
    // would charge its full latency to every subscriber (and eat the
    // poll budget) on graphs where counts are slow or keep failing.
    // The reply just carries exact_known=0 until a count has recorded
    // the base via SetBaseTriangles; the delta fields stay exact.
    SchedulePrime(request.graph);
  }
  auto snap = registry->WaitForEpoch(
      request.graph, request.after_epoch,
      std::chrono::milliseconds(request.timeout_millis));
  if (!snap.ok()) return SendError(fd, snap.status());
  SubscribeCountResult wire;
  wire.epoch = snap->epoch;
  wire.timed_out = snap->timed_out ? 1 : 0;
  wire.exact_known = snap->base_known ? 1 : 0;
  if (snap->base_known) {
    const int64_t total = static_cast<int64_t>(snap->base_triangles) +
                          snap->triangle_delta;
    wire.triangles = static_cast<uint64_t>(std::max<int64_t>(0, total));
  }
  wire.delta_triangles = snap->triangle_delta;
  wire.edges_added = snap->edges_added;
  wire.edges_removed = snap->edges_removed;
  wire.approx_valid = snap->approx_valid ? 1 : 0;
  wire.approx_triangles = snap->approx_triangles;
  return WriteMessage(fd, MessageType::kSubscribeCountResult,
                      EncodeSubscribeCountResult(wire));
}

void OptServer::SchedulePrime(const std::string& graph) {
  std::lock_guard<std::mutex> lock(prime_mutex_);
  if (stopping_.load(std::memory_order_relaxed)) return;
  if (!prime_pending_.insert(graph).second) return;  // already in flight
  prime_queue_.push_back(graph);
  prime_cv_.notify_one();
}

void OptServer::PrimeLoop() {
  std::unique_lock<std::mutex> lock(prime_mutex_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (prime_queue_.empty()) {
      prime_cv_.wait(lock);
      continue;
    }
    const std::string graph = std::move(prime_queue_.front());
    prime_queue_.pop_front();
    lock.unlock();
    // Coalescable with concurrent COUNTs; a successful run records the
    // base via SetBaseTriangles. A failed run leaves it unknown — a
    // later subscribe schedules a fresh attempt (the pending-set entry
    // is only cleared once this run finishes, so at most one count per
    // graph is ever in flight on this thread's behalf).
    QuerySpec spec;
    spec.graph = graph;
    (void)scheduler_->Run(spec);
    lock.lock();
    prime_pending_.erase(graph);
  }
}

Status OptServer::HandleTracePull(int fd, const WireMessage& message) {
  TracePullRequest request;
  Status status = DecodeTracePullRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  TracePullResult result;
  if (TraceRecorder* recorder = CurrentTraceRecorder()) {
    ProcessTrace section;
    section.pid = static_cast<uint64_t>(::getpid());
    section.label = "opt_server";
    section.unix_origin_micros = recorder->unix_origin_micros();
    section.events =
        request.drain != 0 ? recorder->Drain() : recorder->Events();
    section.dropped_spans = recorder->dropped();
    result.processes.push_back(std::move(section));
  }
  // Tracing off: an empty section list tells the puller "nothing here"
  // rather than erroring, so fleet pulls degrade per process.
  return WriteMessage(fd, MessageType::kTracePullResult,
                      EncodeTracePullResult(result));
}

Status OptServer::HandleLoadGraph(int fd, const WireMessage& message) {
  if (!allow_load_graph_) {
    return SendError(
        fd, Status::NotSupported("LOADGRAPH disabled on this server"));
  }
  LoadGraphRequest request;
  Status status = DecodeLoadGraphRequest(message.payload, &request);
  if (!status.ok()) return SendError(fd, status);
  status = scheduler_->LoadGraph(request.name, request.base_path);
  if (!status.ok()) return SendError(fd, status);
  return WriteMessage(fd, MessageType::kLoadGraphResult, std::string());
}

}  // namespace opt
