// Holme–Kim "growing scale-free network with tunable clustering"
// generator (Phys. Rev. E 2002) — the paper uses it for Figure 7c to
// sweep the clustering coefficient at a fixed degree. Each new vertex
// attaches preferentially; with probability `triad_probability` each
// subsequent attachment is a triad-formation step (connect to a random
// neighbor of the previous target), which closes triangles.
#ifndef OPT_GEN_HOLME_KIM_H_
#define OPT_GEN_HOLME_KIM_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace opt {

struct HolmeKimOptions {
  VertexId num_vertices = 1 << 14;
  /// Edges added per new vertex (m in the paper); average degree ≈ 2m.
  uint32_t edges_per_vertex = 5;
  /// Probability that an attachment is a triad-formation step; higher
  /// values raise the clustering coefficient.
  double triad_probability = 0.5;
  uint64_t seed = 1;
};

CSRGraph GenerateHolmeKim(const HolmeKimOptions& options);

/// Calibration helper: triad probability that approximately achieves the
/// requested average clustering coefficient for the given m (empirical
/// linear fit; clamped to [0, 1]).
double TriadProbabilityForClustering(double target_clustering,
                                     uint32_t edges_per_vertex);

}  // namespace opt

#endif  // OPT_GEN_HOLME_KIM_H_
