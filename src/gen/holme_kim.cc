#include "gen/holme_kim.h"

#include <algorithm>
#include <vector>

#include "graph/builder.h"
#include "util/random.h"

namespace opt {

CSRGraph GenerateHolmeKim(const HolmeKimOptions& options) {
  const VertexId n = options.num_vertices;
  const uint32_t m = std::max(1u, options.edges_per_vertex);
  Random64 rng(options.seed);

  // `targets` doubles as the preferential-attachment urn: every endpoint
  // of every edge is appended, so sampling uniformly from it samples
  // proportionally to degree.
  std::vector<VertexId> urn;
  std::vector<Edge> edges;
  std::vector<std::vector<VertexId>> adj(n);

  const VertexId seed_size = std::min<VertexId>(n, m + 1);
  // Seed clique keeps early preferential attachment well-defined.
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      edges.emplace_back(u, v);
      adj[u].push_back(v);
      adj[v].push_back(u);
      urn.push_back(u);
      urn.push_back(v);
    }
  }

  auto connected = [&](VertexId u, VertexId v) {
    const auto& list = adj[u].size() <= adj[v].size() ? adj[u] : adj[v];
    const VertexId other = adj[u].size() <= adj[v].size() ? v : u;
    return std::find(list.begin(), list.end(), other) != list.end();
  };

  for (VertexId v = seed_size; v < n; ++v) {
    VertexId last_target = kInvalidVertex;
    uint32_t added = 0;
    uint32_t attempts = 0;
    while (added < m && attempts < 32 * m) {
      ++attempts;
      VertexId target;
      if (last_target != kInvalidVertex && !adj[last_target].empty() &&
          rng.Bernoulli(options.triad_probability)) {
        // Triad formation: attach to a random neighbor of the previous
        // preferential-attachment target, closing a triangle.
        target = adj[last_target][rng.Uniform(adj[last_target].size())];
      } else {
        target = urn[rng.Uniform(urn.size())];
      }
      if (target == v || connected(v, target)) continue;
      edges.emplace_back(v, target);
      adj[v].push_back(target);
      adj[target].push_back(v);
      urn.push_back(v);
      urn.push_back(target);
      last_target = target;
      ++added;
    }
  }
  return GraphBuilder::FromEdges(std::move(edges));
}

double TriadProbabilityForClustering(double target_clustering,
                                     uint32_t edges_per_vertex) {
  // Empirical fit against this implementation at |V| ~ 10^4 and m in
  // [3, 10]: average clustering grows roughly linearly in the triad
  // probability with slope ~0.31 and a small baseline from
  // preferential attachment alone.
  const double baseline = 0.05 / static_cast<double>(edges_per_vertex);
  const double slope = 0.31;
  const double p = (target_clustering - baseline) / slope;
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace opt
