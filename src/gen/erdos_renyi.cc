#include "gen/erdos_renyi.h"

#include <unordered_set>
#include <vector>

#include "graph/builder.h"
#include "util/random.h"

namespace opt {

CSRGraph GenerateErdosRenyi(VertexId num_vertices, uint64_t num_edges,
                            uint64_t seed) {
  if (num_vertices < 2) return GraphBuilder::FromEdges({});
  const uint64_t max_edges =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  if (num_edges > max_edges) num_edges = max_edges;

  Random64 rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    auto u = static_cast<VertexId>(rng.Uniform(num_vertices));
    auto v = static_cast<VertexId>(rng.Uniform(num_vertices));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) edges.emplace_back(u, v);
  }
  return GraphBuilder::FromEdges(std::move(edges));
}

}  // namespace opt
