// R-MAT recursive-matrix generator (Chakrabarti et al., SDM'04) — the
// paper's synthetic workload for Figures 7a/7b. Produces power-law-ish
// degree distributions; with a = b = c = d = 0.25 it degenerates to
// Erdős–Rényi.
#ifndef OPT_GEN_RMAT_H_
#define OPT_GEN_RMAT_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace opt {

struct RmatOptions {
  /// log2 of the number of vertices.
  uint32_t scale = 14;
  /// Average undirected degree target: |E| = edge_factor * |V| edges are
  /// sampled (duplicates and self-loops are removed afterwards, so the
  /// realized simple-graph density is slightly lower).
  uint32_t edge_factor = 16;
  /// Quadrant probabilities; defaults are GTgraph's defaults used in the
  /// paper (a=0.45, b=0.15, c=0.15, d=0.25).
  double a = 0.45;
  double b = 0.15;
  double c = 0.15;
  double d = 0.25;
  /// Per-level probability noise, as in the original R-MAT description.
  double noise = 0.1;
  uint64_t seed = 1;
};

/// Generates a simple undirected R-MAT graph.
CSRGraph GenerateRmat(const RmatOptions& options);

}  // namespace opt

#endif  // OPT_GEN_RMAT_H_
