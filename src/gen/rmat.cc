#include "gen/rmat.h"

#include <vector>

#include "graph/builder.h"
#include "util/random.h"

namespace opt {

CSRGraph GenerateRmat(const RmatOptions& options) {
  Random64 rng(options.seed);
  const uint64_t n = 1ULL << options.scale;
  const uint64_t target_edges =
      static_cast<uint64_t>(options.edge_factor) * n;

  std::vector<Edge> edges;
  edges.reserve(target_edges);
  for (uint64_t e = 0; e < target_edges; ++e) {
    uint64_t u = 0, v = 0;
    double a = options.a, b = options.b, c = options.c, d = options.d;
    for (uint32_t level = 0; level < options.scale; ++level) {
      const double r = rng.NextDouble();
      if (r < a) {
        // top-left: no bits set
      } else if (r < a + b) {
        v |= 1ULL << level;
      } else if (r < a + b + c) {
        u |= 1ULL << level;
      } else {
        u |= 1ULL << level;
        v |= 1ULL << level;
      }
      // Jitter the quadrant probabilities per level and renormalize,
      // as prescribed by the R-MAT paper to avoid staircase artifacts.
      if (options.noise > 0) {
        auto jitter = [&](double p) {
          return p * (1.0 - options.noise / 2 +
                      options.noise * rng.NextDouble());
        };
        a = jitter(a);
        b = jitter(b);
        c = jitter(c);
        d = jitter(d);
        const double sum = a + b + c + d;
        a /= sum;
        b /= sum;
        c /= sum;
        d /= sum;
      }
    }
    if (u == v) continue;
    edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return GraphBuilder::FromEdges(std::move(edges));
}

}  // namespace opt
