// Erdős–Rényi G(n, m) generator — randomized inputs for property tests
// and the uniform-degree extreme of the sensitivity analysis.
#ifndef OPT_GEN_ERDOS_RENYI_H_
#define OPT_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace opt {

/// Samples `num_edges` distinct undirected edges uniformly at random over
/// `num_vertices` vertices (self-loops excluded).
CSRGraph GenerateErdosRenyi(VertexId num_vertices, uint64_t num_edges,
                            uint64_t seed);

}  // namespace opt

#endif  // OPT_GEN_ERDOS_RENYI_H_
