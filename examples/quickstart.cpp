// Quickstart: build a graph, store it on disk in OPT's slotted-page
// format, and list its triangles with the overlapped, parallel OPT
// runner.
//
//   ./quickstart [--edges FILE] [--threads N] [--buffer_pages M]
//
// Without --edges it uses the paper's Figure 1 example graph (vertices
// a..h as 0..7), whose five triangles are {abc, cdf, cfg, cgh, def}.
#include <cstdio>

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "graph/builder.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/cli.h"

using namespace opt;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) {
    std::fprintf(stderr, "%s\n", cl.status().ToString().c_str());
    return 2;
  }

  // 1. Get a graph: from an edge-list file, or the paper's example.
  CSRGraph graph;
  if (cl->Has("edges")) {
    auto loaded = GraphBuilder::FromEdgeListFile(cl->GetString("edges"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded.value());
  } else {
    GraphBuilder builder;
    // Figure 1 of the paper: a=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7.
    for (auto [u, v] : {std::pair<VertexId, VertexId>{0, 1}, {0, 2}, {1, 2},
                        {2, 3}, {2, 5}, {2, 6}, {2, 7}, {3, 4}, {3, 5},
                        {4, 5}, {5, 6}, {6, 7}}) {
      builder.AddEdge(u, v);
    }
    graph = std::move(builder).Build();
  }
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Materialize it as an on-disk slotted-page store.
  Env* env = Env::Default();
  const std::string base = "/tmp/opt_quickstart_graph";
  GraphStoreOptions store_options;
  store_options.page_size = 4096;
  if (Status s = GraphStore::Create(graph, env, base, store_options);
      !s.ok()) {
    std::fprintf(stderr, "store create failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto store = GraphStore::Open(env, base);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("store: %u pages of %u bytes\n", (*store)->num_pages(),
              (*store)->page_size());

  // 3. Run OPT with a limited memory budget (default: ~1/4 of the
  //    graph, split evenly between the internal and external areas).
  OptOptions options;
  const auto buffer = static_cast<uint32_t>(cl->GetInt(
      "buffer_pages", std::max(4u, (*store)->num_pages() / 4)));
  options.m_in = std::max(buffer / 2, (*store)->MaxRecordPages());
  options.m_ex = std::max(1u, buffer / 2);
  options.num_threads = static_cast<uint32_t>(cl->GetInt("threads", 2));

  EdgeIteratorModel model;
  OptRunner runner(store->get(), &model, options);
  VectorSink triangles;
  CountingSink counter;
  TeeSink sink({&triangles, &counter});
  OptRunStats stats;
  if (Status s = runner.Run(&sink, &stats); !s.ok()) {
    std::fprintf(stderr, "triangulation failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  std::printf("triangles: %llu (%u iterations, %llu pages read, %llu "
              "page reads saved by buffering)\n",
              static_cast<unsigned long long>(counter.count()),
              stats.iterations,
              static_cast<unsigned long long>(stats.internal_pages_read +
                                              stats.external_pages_read),
              static_cast<unsigned long long>(stats.internal_cache_hits +
                                              stats.external_cache_hits));
  // Print the first few triangles.
  auto sorted = triangles.Sorted();
  const size_t show = std::min<size_t>(sorted.size(), 10);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  (%u, %u, %u)\n", sorted[i].u, sorted[i].v, sorted[i].w);
  }
  if (sorted.size() > show) {
    std::printf("  ... and %zu more\n", sorted.size() - show);
  }
  return 0;
}
