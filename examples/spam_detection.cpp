// Data-mining example (paper §1, after Becchetti et al.): use local
// triangle counts to separate "spam-farm" pages from organic pages in a
// web-like graph. Spam farms are densely interlinked cliques, so their
// members sit in far more triangles per unit degree than organic pages.
//
// The example synthesizes a web graph, injects a clique spam farm,
// triangulates it out-of-core with OPT, ranks vertices by the local
// clustering score, and reports detection precision.
#include <algorithm>
#include <cstdio>
#include <set>

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "gen/rmat.h"
#include "graph/builder.h"
#include "graph/reorder.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/cli.h"
#include "util/random.h"

using namespace opt;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) return 2;
  const uint32_t scale = static_cast<uint32_t>(cl->GetInt("scale", 12));
  const uint32_t farm_size =
      static_cast<uint32_t>(cl->GetInt("farm_size", 40));

  // Organic web graph (R-MAT with web-like skew) ...
  RmatOptions gen;
  gen.scale = scale;
  gen.edge_factor = 8;
  gen.a = 0.57;
  gen.b = 0.19;
  gen.c = 0.19;
  gen.d = 0.05;
  gen.seed = 7;
  CSRGraph organic = GenerateRmat(gen);

  // ... plus an injected spam farm: a clique of `farm_size` fresh
  // vertices with a few random out-links to look legitimate.
  const VertexId n = organic.num_vertices();
  std::vector<Edge> edges;
  edges.reserve(organic.num_edges() + farm_size * farm_size / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : organic.Successors(u)) edges.emplace_back(u, v);
  }
  std::set<VertexId> spam;
  Random64 rng(99);
  for (uint32_t i = 0; i < farm_size; ++i) {
    const VertexId s = n + i;
    spam.insert(s);
    for (uint32_t j = i + 1; j < farm_size; ++j) edges.emplace_back(s, n + j);
    edges.emplace_back(s, static_cast<VertexId>(rng.Uniform(n)));
  }
  CSRGraph graph_raw = GraphBuilder::FromEdges(std::move(edges));
  ReorderResult ordered = DegreeOrder(graph_raw);
  CSRGraph& graph = ordered.graph;

  // Out-of-core triangulation with per-vertex counts.
  Env* env = Env::Default();
  const std::string base = "/tmp/opt_spam_graph";
  if (Status s = GraphStore::Create(graph, env, base, {}); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto store = GraphStore::Open(env, base);
  if (!store.ok()) return 1;
  OptOptions options;
  const uint32_t buffer = std::max(4u, (*store)->num_pages() * 15 / 100);
  options.m_in = std::max(buffer / 2, (*store)->MaxRecordPages());
  options.m_ex = std::max(1u, buffer / 2);
  PerVertexCountSink sink(graph.num_vertices());
  EdgeIteratorModel model;
  OptRunner runner(store->get(), &model, options);
  if (Status s = runner.Run(&sink, nullptr); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Score = triangle rate (triangles per unit degree), restricted to
  // vertices with enough degree to matter — Becchetti et al.'s
  // observation is that spam-farm members have anomalously many
  // triangles for their degree.
  const auto counts = sink.Counts();
  std::vector<std::pair<double, VertexId>> scored;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const double d = graph.degree(v);
    if (d < 5) continue;  // leaves trivially have clustering 1
    scored.emplace_back(static_cast<double>(counts[v]) / d, v);
  }
  std::sort(scored.rbegin(), scored.rend());

  // Precision@farm_size: how many of the top-scored vertices are spam?
  uint32_t hits = 0;
  for (uint32_t i = 0; i < farm_size && i < scored.size(); ++i) {
    if (spam.count(ordered.new_to_old[scored[i].second]) > 0) ++hits;
  }
  std::printf("graph: %u vertices (%u spam), %llu edges, %llu triangles\n",
              graph.num_vertices(), farm_size,
              static_cast<unsigned long long>(graph.num_edges()),
              static_cast<unsigned long long>(sink.total()));
  std::printf("precision@%u of the triangle-density ranking: %.2f\n",
              farm_size, static_cast<double>(hits) / farm_size);
  std::printf("top suspects (original id, score, is_spam):\n");
  for (uint32_t i = 0; i < 8 && i < scored.size(); ++i) {
    const VertexId original = ordered.new_to_old[scored[i].second];
    std::printf("  %8u  %.3f  %s\n", original, scored[i].first,
                spam.count(original) > 0 ? "SPAM" : "organic");
  }
  return 0;
}
