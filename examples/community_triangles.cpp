// Community-detection example (paper §1, after Prat-Pérez et al.: "a
// good community has many triangles"). Lists triangles out-of-core with
// OPT, computes per-edge triangle support from the listing, drops
// support-0 edges (pure bridges), and reports the tightly knit
// components that remain.
//
// The input is a planted-partition graph: dense communities plus random
// inter-community noise edges. Triangle-support filtering recovers the
// planted structure.
#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <vector>

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "graph/builder.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/cli.h"
#include "util/random.h"

using namespace opt;

namespace {

/// Thread-safe sink accumulating triangle support per edge.
class EdgeSupportSink : public TriangleSink {
 public:
  void Emit(VertexId u, VertexId v, std::span<const VertexId> ws) override {
    std::lock_guard<std::mutex> lock(mutex_);
    support_[{u, v}] += ws.size();
    for (VertexId w : ws) {
      support_[{u, w}] += 1;
      support_[{v, w}] += 1;
    }
  }
  const std::map<std::pair<VertexId, VertexId>, uint64_t>& support() const {
    return support_;
  }

 private:
  std::mutex mutex_;
  std::map<std::pair<VertexId, VertexId>, uint64_t> support_;
};

struct UnionFind {
  std::vector<VertexId> parent;
  explicit UnionFind(VertexId n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  VertexId Find(VertexId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Union(VertexId a, VertexId b) { parent[Find(a)] = Find(b); }
};

}  // namespace

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) return 2;
  const uint32_t communities =
      static_cast<uint32_t>(cl->GetInt("communities", 12));
  const uint32_t members = static_cast<uint32_t>(cl->GetInt("members", 30));

  // Planted partition: dense communities + random bridges.
  Random64 rng(5);
  std::vector<Edge> edges;
  const VertexId n = communities * members;
  for (uint32_t c = 0; c < communities; ++c) {
    const VertexId base = c * members;
    for (uint32_t i = 0; i < members; ++i) {
      for (uint32_t j = i + 1; j < members; ++j) {
        if (rng.Bernoulli(0.4)) edges.emplace_back(base + i, base + j);
      }
    }
  }
  const auto bridges = static_cast<uint32_t>(n);
  for (uint32_t b = 0; b < bridges; ++b) {
    edges.emplace_back(static_cast<VertexId>(rng.Uniform(n)),
                       static_cast<VertexId>(rng.Uniform(n)));
  }
  CSRGraph graph = GraphBuilder::FromEdges(std::move(edges));

  // Out-of-core triangle listing with OPT.
  Env* env = Env::Default();
  const std::string base_path = "/tmp/opt_community_graph";
  GraphStoreOptions store_options;
  store_options.page_size = 1024;
  if (Status s = GraphStore::Create(graph, env, base_path, store_options);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto store = GraphStore::Open(env, base_path);
  if (!store.ok()) return 1;
  OptOptions options;
  const uint32_t buffer = std::max(4u, (*store)->num_pages() / 5);
  options.m_in = std::max(buffer / 2, (*store)->MaxRecordPages());
  options.m_ex = std::max(1u, buffer / 2);
  EdgeSupportSink sink;
  EdgeIteratorModel model;
  OptRunner runner(store->get(), &model, options);
  if (Status s = runner.Run(&sink, nullptr); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Keep only edges with triangle support >= 2; their connected
  // components are the triangle-dense communities.
  UnionFind uf(graph.num_vertices());
  uint64_t kept = 0;
  for (const auto& [edge, support] : sink.support()) {
    if (support >= 2) {
      uf.Union(edge.first, edge.second);
      ++kept;
    }
  }
  std::map<VertexId, uint32_t> sizes;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    sizes[uf.Find(v)]++;
  }
  uint32_t recovered = 0;
  for (const auto& [root, size] : sizes) {
    if (size >= members / 2) ++recovered;
  }
  std::printf("planted communities:    %u (x%u members)\n", communities,
              members);
  std::printf("edges / kept by support: %llu / %llu\n",
              static_cast<unsigned long long>(graph.num_edges()),
              static_cast<unsigned long long>(kept));
  std::printf("recovered communities:  %u\n", recovered);
  std::printf("(components of size >= %u after dropping edges in < 2 "
              "triangles)\n",
              members / 2);
  // Random bridges occasionally merge two planted communities; recovery
  // within one of the planted count demonstrates the technique.
  return recovered + 2 >= communities ? 0 : 1;
}
