// Network-analysis example (paper §1): compute the clustering
// coefficient and transitivity of a graph that does not fit in the
// memory budget, using OPT's per-vertex triangle counts.
//
//   ./clustering_coefficient [--scale N] [--edge_factor K] [--threads T]
#include <algorithm>
#include <cstdio>

#include "core/iterator_model.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "gen/rmat.h"
#include "graph/reorder.h"
#include "graph/stats.h"
#include "storage/env.h"
#include "storage/graph_store.h"
#include "util/cli.h"

using namespace opt;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) return 2;

  // A skewed social-network-like graph.
  RmatOptions gen;
  gen.scale = static_cast<uint32_t>(cl->GetInt("scale", 13));
  gen.edge_factor = static_cast<uint32_t>(cl->GetInt("edge_factor", 12));
  gen.seed = 42;
  CSRGraph raw = GenerateRmat(gen);
  // The degree-ordering heuristic (§2.2) before storing; remember the
  // mapping so statistics can be reported in original ids.
  ReorderResult ordered = DegreeOrder(raw);
  CSRGraph& graph = ordered.graph;

  Env* env = Env::Default();
  const std::string base = "/tmp/opt_clustering_graph";
  GraphStoreOptions store_options;
  if (Status s = GraphStore::Create(graph, env, base, store_options);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto store = GraphStore::Open(env, base);
  if (!store.ok()) return 1;

  // Triangulate with a memory budget of ~15% of the graph.
  OptOptions options;
  const uint32_t buffer = std::max(4u, (*store)->num_pages() * 15 / 100);
  options.m_in = std::max(buffer / 2, (*store)->MaxRecordPages());
  options.m_ex = std::max(1u, buffer / 2);
  options.num_threads = static_cast<uint32_t>(cl->GetInt("threads", 2));

  PerVertexCountSink sink(graph.num_vertices());
  EdgeIteratorModel model;
  OptRunner runner(store->get(), &model, options);
  if (Status s = runner.Run(&sink, nullptr); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const auto counts = sink.Counts();
  const double avg_cc = AverageClusteringCoefficient(graph, counts);
  const double transitivity = Transitivity(graph, sink.total());
  std::printf("vertices:               %u\n", graph.num_vertices());
  std::printf("edges:                  %llu\n",
              static_cast<unsigned long long>(graph.num_edges()));
  std::printf("triangles:              %llu\n",
              static_cast<unsigned long long>(sink.total()));
  std::printf("avg clustering coeff:   %.4f\n", avg_cc);
  std::printf("transitivity:           %.4f\n", transitivity);

  // The most triangle-dense vertices (hubs of tightly knit regions).
  std::vector<VertexId> by_triangles(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) by_triangles[v] = v;
  std::partial_sort(by_triangles.begin(),
                    by_triangles.begin() +
                        std::min<size_t>(5, by_triangles.size()),
                    by_triangles.end(), [&](VertexId a, VertexId b) {
                      return counts[a] > counts[b];
                    });
  std::printf("top triangle-dense vertices (original ids):\n");
  for (size_t i = 0; i < std::min<size_t>(5, by_triangles.size()); ++i) {
    const VertexId v = by_triangles[i];
    std::printf("  vertex %u: %llu triangles, degree %u\n",
                ordered.new_to_old[v],
                static_cast<unsigned long long>(counts[v]),
                graph.degree(v));
  }
  return 0;
}
