// End-to-end out-of-core pipeline: a raw edge-list file is converted to
// a degree-ordered slotted-page store with O(|V|) memory (external
// sort), triangulated with OPT under a tight buffer, streamed to a
// nested-representation listing, and finally read back and verified.
// This is the full production path a user would run on a graph larger
// than memory.
//
//   ./out_of_core_pipeline [--scale N] [--work_dir /tmp]
#include <cstdio>

#include "core/iterator_model.h"
#include "core/listing_reader.h"
#include "core/opt_runner.h"
#include "core/triangle_sink.h"
#include "gen/rmat.h"
#include "storage/env.h"
#include "storage/store_builder.h"
#include "util/cli.h"

using namespace opt;

int main(int argc, char** argv) {
  auto cl = CommandLine::Parse(argc, argv);
  if (!cl.ok()) return 2;
  Env* env = Env::Default();
  const std::string work_dir = cl->GetString("work_dir", "/tmp");

  // Stage 0 — a raw edge list "from a crawler" (synthesized here).
  RmatOptions gen;
  gen.scale = static_cast<uint32_t>(cl->GetInt("scale", 13));
  gen.edge_factor = 10;
  gen.seed = 31;
  CSRGraph crawled = GenerateRmat(gen);
  const std::string edge_path = work_dir + "/pipeline_edges.txt";
  {
    std::FILE* f = std::fopen(edge_path.c_str(), "wb");
    if (f == nullptr) return 1;
    for (VertexId u = 0; u < crawled.num_vertices(); ++u) {
      for (VertexId v : crawled.Successors(u)) {
        std::fprintf(f, "%u %u\n", u, v);
      }
    }
    std::fclose(f);
  }
  std::printf("[0] edge list: %s (%llu edges)\n", edge_path.c_str(),
              static_cast<unsigned long long>(crawled.num_edges()));

  // Stage 1 — out-of-core store build (external sort, tiny budget to
  // demonstrate spilling; memory stays O(|V|)).
  StoreBuildOptions build_options;
  build_options.page_size = 4096;
  build_options.degree_order = true;
  build_options.memory_budget_bytes = 1 << 16;
  build_options.temp_dir = work_dir;
  const std::string base = work_dir + "/pipeline_store";
  auto build = BuildStoreFromEdgeList(env, edge_path, base, build_options);
  if (!build.ok()) {
    std::fprintf(stderr, "%s\n", build.status().ToString().c_str());
    return 1;
  }
  std::printf("[1] store built: %u vertices, %llu edges, %u sort runs "
              "spilled\n",
              build->num_vertices,
              static_cast<unsigned long long>(build->kept_edges),
              build->sort_runs);

  // Stage 2 — OPT triangulation with a 15% buffer, streaming the
  // listing to disk.
  auto store = GraphStore::Open(env, base);
  if (!store.ok()) return 1;
  OptOptions options;
  const uint32_t buffer = std::max(4u, (*store)->num_pages() * 15 / 100);
  options.m_in = std::max(buffer / 2, (*store)->MaxRecordPages());
  options.m_ex = std::max(1u, buffer / 2);
  options.num_threads = static_cast<uint32_t>(cl->GetInt("threads", 2));
  const std::string listing_path = work_dir + "/pipeline_triangles.bin";
  CountingSink counter;
  OptRunStats stats;
  {
    ListingSink listing(env, listing_path);
    TeeSink sink({&counter, &listing});
    EdgeIteratorModel model;
    OptRunner runner(store->get(), &model, options);
    if (Status s = runner.Run(&sink, &stats); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("[2] OPT listed %llu triangles in %u iterations "
              "(%llu page reads, %llu saved by buffering)\n",
              static_cast<unsigned long long>(counter.count()),
              stats.iterations,
              static_cast<unsigned long long>(stats.internal_pages_read +
                                              stats.external_pages_read),
              static_cast<unsigned long long>(stats.internal_cache_hits +
                                              stats.external_cache_hits));

  // Stage 3 — consume the listing downstream.
  auto replay = CountListingTriangles(env, listing_path);
  if (!replay.ok()) {
    std::fprintf(stderr, "%s\n", replay.status().ToString().c_str());
    return 1;
  }
  std::printf("[3] listing re-read: %llu triangles — %s\n",
              static_cast<unsigned long long>(*replay),
              *replay == counter.count() ? "MATCHES" : "MISMATCH");
  (void)env->DeleteFile(edge_path);
  (void)env->DeleteFile(listing_path);
  return *replay == counter.count() ? 0 : 1;
}
