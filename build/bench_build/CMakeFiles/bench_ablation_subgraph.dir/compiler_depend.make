# Empty compiler generated dependencies file for bench_ablation_subgraph.
# This may be replaced when dependencies are built.
