file(REMOVE_RECURSE
  "../bench/bench_ablation_subgraph"
  "../bench/bench_ablation_subgraph.pdb"
  "CMakeFiles/bench_ablation_subgraph.dir/bench_ablation_subgraph.cc.o"
  "CMakeFiles/bench_ablation_subgraph.dir/bench_ablation_subgraph.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
