# Empty dependencies file for bench_table7_distributed.
# This may be replaced when dependencies are built.
