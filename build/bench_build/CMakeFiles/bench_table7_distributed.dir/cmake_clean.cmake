file(REMOVE_RECURSE
  "../bench/bench_table7_distributed"
  "../bench/bench_table7_distributed.pdb"
  "CMakeFiles/bench_table7_distributed.dir/bench_table7_distributed.cc.o"
  "CMakeFiles/bench_table7_distributed.dir/bench_table7_distributed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
