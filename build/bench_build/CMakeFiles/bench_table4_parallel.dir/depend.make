# Empty dependencies file for bench_table4_parallel.
# This may be replaced when dependencies are built.
