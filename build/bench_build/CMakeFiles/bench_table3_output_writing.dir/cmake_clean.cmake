file(REMOVE_RECURSE
  "../bench/bench_table3_output_writing"
  "../bench/bench_table3_output_writing.pdb"
  "CMakeFiles/bench_table3_output_writing.dir/bench_table3_output_writing.cc.o"
  "CMakeFiles/bench_table3_output_writing.dir/bench_table3_output_writing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_output_writing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
