# Empty dependencies file for bench_table3_output_writing.
# This may be replaced when dependencies are built.
