# Empty dependencies file for bench_fig5_buffer_size.
# This may be replaced when dependencies are built.
