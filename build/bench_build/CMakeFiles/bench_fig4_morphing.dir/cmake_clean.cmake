file(REMOVE_RECURSE
  "../bench/bench_fig4_morphing"
  "../bench/bench_fig4_morphing.pdb"
  "CMakeFiles/bench_fig4_morphing.dir/bench_fig4_morphing.cc.o"
  "CMakeFiles/bench_fig4_morphing.dir/bench_fig4_morphing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_morphing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
