file(REMOVE_RECURSE
  "../bench/bench_fig7c_clustering"
  "../bench/bench_fig7c_clustering.pdb"
  "CMakeFiles/bench_fig7c_clustering.dir/bench_fig7c_clustering.cc.o"
  "CMakeFiles/bench_fig7c_clustering.dir/bench_fig7c_clustering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
