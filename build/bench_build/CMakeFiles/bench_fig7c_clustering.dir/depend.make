# Empty dependencies file for bench_fig7c_clustering.
# This may be replaced when dependencies are built.
