file(REMOVE_RECURSE
  "../bench/bench_fig3a_relative_overhead"
  "../bench/bench_fig3a_relative_overhead.pdb"
  "CMakeFiles/bench_fig3a_relative_overhead.dir/bench_fig3a_relative_overhead.cc.o"
  "CMakeFiles/bench_fig3a_relative_overhead.dir/bench_fig3a_relative_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_relative_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
