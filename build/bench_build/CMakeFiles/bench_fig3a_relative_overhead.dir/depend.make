# Empty dependencies file for bench_fig3a_relative_overhead.
# This may be replaced when dependencies are built.
