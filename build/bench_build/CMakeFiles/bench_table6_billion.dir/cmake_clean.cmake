file(REMOVE_RECURSE
  "../bench/bench_table6_billion"
  "../bench/bench_table6_billion.pdb"
  "CMakeFiles/bench_table6_billion.dir/bench_table6_billion.cc.o"
  "CMakeFiles/bench_table6_billion.dir/bench_table6_billion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_billion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
