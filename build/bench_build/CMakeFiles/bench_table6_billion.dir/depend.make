# Empty dependencies file for bench_table6_billion.
# This may be replaced when dependencies are built.
