# Empty compiler generated dependencies file for bench_fig6_table5_speedup.
# This may be replaced when dependencies are built.
