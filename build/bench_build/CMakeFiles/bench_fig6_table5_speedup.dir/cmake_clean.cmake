file(REMOVE_RECURSE
  "../bench/bench_fig6_table5_speedup"
  "../bench/bench_fig6_table5_speedup.pdb"
  "CMakeFiles/bench_fig6_table5_speedup.dir/bench_fig6_table5_speedup.cc.o"
  "CMakeFiles/bench_fig6_table5_speedup.dir/bench_fig6_table5_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_table5_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
