# Empty dependencies file for bench_fig3b_inmemory.
# This may be replaced when dependencies are built.
