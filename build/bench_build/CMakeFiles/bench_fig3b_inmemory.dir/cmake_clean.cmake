file(REMOVE_RECURSE
  "../bench/bench_fig3b_inmemory"
  "../bench/bench_fig3b_inmemory.pdb"
  "CMakeFiles/bench_fig3b_inmemory.dir/bench_fig3b_inmemory.cc.o"
  "CMakeFiles/bench_fig3b_inmemory.dir/bench_fig3b_inmemory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_inmemory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
