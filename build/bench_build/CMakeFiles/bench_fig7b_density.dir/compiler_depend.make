# Empty compiler generated dependencies file for bench_fig7b_density.
# This may be replaced when dependencies are built.
