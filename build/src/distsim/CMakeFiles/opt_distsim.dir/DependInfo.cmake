
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distsim/distributed.cc" "src/distsim/CMakeFiles/opt_distsim.dir/distributed.cc.o" "gcc" "src/distsim/CMakeFiles/opt_distsim.dir/distributed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/opt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
