# Empty dependencies file for opt_distsim.
# This may be replaced when dependencies are built.
