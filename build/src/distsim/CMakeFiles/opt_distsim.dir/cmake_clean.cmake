file(REMOVE_RECURSE
  "CMakeFiles/opt_distsim.dir/distributed.cc.o"
  "CMakeFiles/opt_distsim.dir/distributed.cc.o.d"
  "libopt_distsim.a"
  "libopt_distsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_distsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
