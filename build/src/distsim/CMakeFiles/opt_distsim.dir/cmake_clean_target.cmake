file(REMOVE_RECURSE
  "libopt_distsim.a"
)
