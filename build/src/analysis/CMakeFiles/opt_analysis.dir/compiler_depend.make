# Empty compiler generated dependencies file for opt_analysis.
# This may be replaced when dependencies are built.
