
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clique4.cc" "src/analysis/CMakeFiles/opt_analysis.dir/clique4.cc.o" "gcc" "src/analysis/CMakeFiles/opt_analysis.dir/clique4.cc.o.d"
  "/root/repo/src/analysis/ktruss.cc" "src/analysis/CMakeFiles/opt_analysis.dir/ktruss.cc.o" "gcc" "src/analysis/CMakeFiles/opt_analysis.dir/ktruss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/opt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
