file(REMOVE_RECURSE
  "libopt_analysis.a"
)
