file(REMOVE_RECURSE
  "CMakeFiles/opt_analysis.dir/clique4.cc.o"
  "CMakeFiles/opt_analysis.dir/clique4.cc.o.d"
  "CMakeFiles/opt_analysis.dir/ktruss.cc.o"
  "CMakeFiles/opt_analysis.dir/ktruss.cc.o.d"
  "libopt_analysis.a"
  "libopt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
