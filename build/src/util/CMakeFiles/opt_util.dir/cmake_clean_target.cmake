file(REMOVE_RECURSE
  "libopt_util.a"
)
