file(REMOVE_RECURSE
  "CMakeFiles/opt_util.dir/cli.cc.o"
  "CMakeFiles/opt_util.dir/cli.cc.o.d"
  "CMakeFiles/opt_util.dir/crc32.cc.o"
  "CMakeFiles/opt_util.dir/crc32.cc.o.d"
  "CMakeFiles/opt_util.dir/histogram.cc.o"
  "CMakeFiles/opt_util.dir/histogram.cc.o.d"
  "CMakeFiles/opt_util.dir/logging.cc.o"
  "CMakeFiles/opt_util.dir/logging.cc.o.d"
  "CMakeFiles/opt_util.dir/status.cc.o"
  "CMakeFiles/opt_util.dir/status.cc.o.d"
  "CMakeFiles/opt_util.dir/table_printer.cc.o"
  "CMakeFiles/opt_util.dir/table_printer.cc.o.d"
  "CMakeFiles/opt_util.dir/thread_pool.cc.o"
  "CMakeFiles/opt_util.dir/thread_pool.cc.o.d"
  "libopt_util.a"
  "libopt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
