# Empty dependencies file for opt_util.
# This may be replaced when dependencies are built.
