file(REMOVE_RECURSE
  "CMakeFiles/opt_gen.dir/erdos_renyi.cc.o"
  "CMakeFiles/opt_gen.dir/erdos_renyi.cc.o.d"
  "CMakeFiles/opt_gen.dir/holme_kim.cc.o"
  "CMakeFiles/opt_gen.dir/holme_kim.cc.o.d"
  "CMakeFiles/opt_gen.dir/rmat.cc.o"
  "CMakeFiles/opt_gen.dir/rmat.cc.o.d"
  "libopt_gen.a"
  "libopt_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
