file(REMOVE_RECURSE
  "libopt_gen.a"
)
