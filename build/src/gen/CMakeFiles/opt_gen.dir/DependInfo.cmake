
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/erdos_renyi.cc" "src/gen/CMakeFiles/opt_gen.dir/erdos_renyi.cc.o" "gcc" "src/gen/CMakeFiles/opt_gen.dir/erdos_renyi.cc.o.d"
  "/root/repo/src/gen/holme_kim.cc" "src/gen/CMakeFiles/opt_gen.dir/holme_kim.cc.o" "gcc" "src/gen/CMakeFiles/opt_gen.dir/holme_kim.cc.o.d"
  "/root/repo/src/gen/rmat.cc" "src/gen/CMakeFiles/opt_gen.dir/rmat.cc.o" "gcc" "src/gen/CMakeFiles/opt_gen.dir/rmat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/opt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
