# Empty dependencies file for opt_gen.
# This may be replaced when dependencies are built.
