file(REMOVE_RECURSE
  "libopt_baselines.a"
)
