
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/approx.cc" "src/baselines/CMakeFiles/opt_baselines.dir/approx.cc.o" "gcc" "src/baselines/CMakeFiles/opt_baselines.dir/approx.cc.o.d"
  "/root/repo/src/baselines/ayz.cc" "src/baselines/CMakeFiles/opt_baselines.dir/ayz.cc.o" "gcc" "src/baselines/CMakeFiles/opt_baselines.dir/ayz.cc.o.d"
  "/root/repo/src/baselines/cc.cc" "src/baselines/CMakeFiles/opt_baselines.dir/cc.cc.o" "gcc" "src/baselines/CMakeFiles/opt_baselines.dir/cc.cc.o.d"
  "/root/repo/src/baselines/graphchi_tri.cc" "src/baselines/CMakeFiles/opt_baselines.dir/graphchi_tri.cc.o" "gcc" "src/baselines/CMakeFiles/opt_baselines.dir/graphchi_tri.cc.o.d"
  "/root/repo/src/baselines/inmemory.cc" "src/baselines/CMakeFiles/opt_baselines.dir/inmemory.cc.o" "gcc" "src/baselines/CMakeFiles/opt_baselines.dir/inmemory.cc.o.d"
  "/root/repo/src/baselines/mgt.cc" "src/baselines/CMakeFiles/opt_baselines.dir/mgt.cc.o" "gcc" "src/baselines/CMakeFiles/opt_baselines.dir/mgt.cc.o.d"
  "/root/repo/src/baselines/shrink_loop.cc" "src/baselines/CMakeFiles/opt_baselines.dir/shrink_loop.cc.o" "gcc" "src/baselines/CMakeFiles/opt_baselines.dir/shrink_loop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/opt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/opt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/opt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
