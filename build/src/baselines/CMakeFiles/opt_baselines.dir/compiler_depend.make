# Empty compiler generated dependencies file for opt_baselines.
# This may be replaced when dependencies are built.
