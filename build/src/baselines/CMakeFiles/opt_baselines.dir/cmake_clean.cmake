file(REMOVE_RECURSE
  "CMakeFiles/opt_baselines.dir/approx.cc.o"
  "CMakeFiles/opt_baselines.dir/approx.cc.o.d"
  "CMakeFiles/opt_baselines.dir/ayz.cc.o"
  "CMakeFiles/opt_baselines.dir/ayz.cc.o.d"
  "CMakeFiles/opt_baselines.dir/cc.cc.o"
  "CMakeFiles/opt_baselines.dir/cc.cc.o.d"
  "CMakeFiles/opt_baselines.dir/graphchi_tri.cc.o"
  "CMakeFiles/opt_baselines.dir/graphchi_tri.cc.o.d"
  "CMakeFiles/opt_baselines.dir/inmemory.cc.o"
  "CMakeFiles/opt_baselines.dir/inmemory.cc.o.d"
  "CMakeFiles/opt_baselines.dir/mgt.cc.o"
  "CMakeFiles/opt_baselines.dir/mgt.cc.o.d"
  "CMakeFiles/opt_baselines.dir/shrink_loop.cc.o"
  "CMakeFiles/opt_baselines.dir/shrink_loop.cc.o.d"
  "libopt_baselines.a"
  "libopt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
