file(REMOVE_RECURSE
  "CMakeFiles/opt_harness.dir/datasets.cc.o"
  "CMakeFiles/opt_harness.dir/datasets.cc.o.d"
  "CMakeFiles/opt_harness.dir/methods.cc.o"
  "CMakeFiles/opt_harness.dir/methods.cc.o.d"
  "libopt_harness.a"
  "libopt_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
