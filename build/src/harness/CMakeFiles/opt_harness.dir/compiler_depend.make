# Empty compiler generated dependencies file for opt_harness.
# This may be replaced when dependencies are built.
