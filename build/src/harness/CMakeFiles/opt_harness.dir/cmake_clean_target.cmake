file(REMOVE_RECURSE
  "libopt_harness.a"
)
