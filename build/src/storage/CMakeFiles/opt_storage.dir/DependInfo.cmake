
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/async_io.cc" "src/storage/CMakeFiles/opt_storage.dir/async_io.cc.o" "gcc" "src/storage/CMakeFiles/opt_storage.dir/async_io.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/opt_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/opt_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/storage/CMakeFiles/opt_storage.dir/env.cc.o" "gcc" "src/storage/CMakeFiles/opt_storage.dir/env.cc.o.d"
  "/root/repo/src/storage/graph_store.cc" "src/storage/CMakeFiles/opt_storage.dir/graph_store.cc.o" "gcc" "src/storage/CMakeFiles/opt_storage.dir/graph_store.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/opt_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/opt_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/storage/CMakeFiles/opt_storage.dir/page_file.cc.o" "gcc" "src/storage/CMakeFiles/opt_storage.dir/page_file.cc.o.d"
  "/root/repo/src/storage/record_scanner.cc" "src/storage/CMakeFiles/opt_storage.dir/record_scanner.cc.o" "gcc" "src/storage/CMakeFiles/opt_storage.dir/record_scanner.cc.o.d"
  "/root/repo/src/storage/store_builder.cc" "src/storage/CMakeFiles/opt_storage.dir/store_builder.cc.o" "gcc" "src/storage/CMakeFiles/opt_storage.dir/store_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/opt_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
