# Empty dependencies file for opt_storage.
# This may be replaced when dependencies are built.
