file(REMOVE_RECURSE
  "libopt_storage.a"
)
