file(REMOVE_RECURSE
  "CMakeFiles/opt_storage.dir/async_io.cc.o"
  "CMakeFiles/opt_storage.dir/async_io.cc.o.d"
  "CMakeFiles/opt_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/opt_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/opt_storage.dir/env.cc.o"
  "CMakeFiles/opt_storage.dir/env.cc.o.d"
  "CMakeFiles/opt_storage.dir/graph_store.cc.o"
  "CMakeFiles/opt_storage.dir/graph_store.cc.o.d"
  "CMakeFiles/opt_storage.dir/page.cc.o"
  "CMakeFiles/opt_storage.dir/page.cc.o.d"
  "CMakeFiles/opt_storage.dir/page_file.cc.o"
  "CMakeFiles/opt_storage.dir/page_file.cc.o.d"
  "CMakeFiles/opt_storage.dir/record_scanner.cc.o"
  "CMakeFiles/opt_storage.dir/record_scanner.cc.o.d"
  "CMakeFiles/opt_storage.dir/store_builder.cc.o"
  "CMakeFiles/opt_storage.dir/store_builder.cc.o.d"
  "libopt_storage.a"
  "libopt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
