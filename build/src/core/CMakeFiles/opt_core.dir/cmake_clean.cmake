file(REMOVE_RECURSE
  "CMakeFiles/opt_core.dir/ideal.cc.o"
  "CMakeFiles/opt_core.dir/ideal.cc.o.d"
  "CMakeFiles/opt_core.dir/iterator_model.cc.o"
  "CMakeFiles/opt_core.dir/iterator_model.cc.o.d"
  "CMakeFiles/opt_core.dir/listing_reader.cc.o"
  "CMakeFiles/opt_core.dir/listing_reader.cc.o.d"
  "CMakeFiles/opt_core.dir/opt_runner.cc.o"
  "CMakeFiles/opt_core.dir/opt_runner.cc.o.d"
  "CMakeFiles/opt_core.dir/page_range_view.cc.o"
  "CMakeFiles/opt_core.dir/page_range_view.cc.o.d"
  "CMakeFiles/opt_core.dir/triangle_sink.cc.o"
  "CMakeFiles/opt_core.dir/triangle_sink.cc.o.d"
  "libopt_core.a"
  "libopt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
