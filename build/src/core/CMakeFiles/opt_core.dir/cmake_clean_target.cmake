file(REMOVE_RECURSE
  "libopt_core.a"
)
