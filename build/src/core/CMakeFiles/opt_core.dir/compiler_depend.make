# Empty compiler generated dependencies file for opt_core.
# This may be replaced when dependencies are built.
