
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ideal.cc" "src/core/CMakeFiles/opt_core.dir/ideal.cc.o" "gcc" "src/core/CMakeFiles/opt_core.dir/ideal.cc.o.d"
  "/root/repo/src/core/iterator_model.cc" "src/core/CMakeFiles/opt_core.dir/iterator_model.cc.o" "gcc" "src/core/CMakeFiles/opt_core.dir/iterator_model.cc.o.d"
  "/root/repo/src/core/listing_reader.cc" "src/core/CMakeFiles/opt_core.dir/listing_reader.cc.o" "gcc" "src/core/CMakeFiles/opt_core.dir/listing_reader.cc.o.d"
  "/root/repo/src/core/opt_runner.cc" "src/core/CMakeFiles/opt_core.dir/opt_runner.cc.o" "gcc" "src/core/CMakeFiles/opt_core.dir/opt_runner.cc.o.d"
  "/root/repo/src/core/page_range_view.cc" "src/core/CMakeFiles/opt_core.dir/page_range_view.cc.o" "gcc" "src/core/CMakeFiles/opt_core.dir/page_range_view.cc.o.d"
  "/root/repo/src/core/triangle_sink.cc" "src/core/CMakeFiles/opt_core.dir/triangle_sink.cc.o" "gcc" "src/core/CMakeFiles/opt_core.dir/triangle_sink.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/opt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/opt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
