# Empty dependencies file for opt_graph.
# This may be replaced when dependencies are built.
