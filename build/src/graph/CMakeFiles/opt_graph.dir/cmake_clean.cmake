file(REMOVE_RECURSE
  "CMakeFiles/opt_graph.dir/builder.cc.o"
  "CMakeFiles/opt_graph.dir/builder.cc.o.d"
  "CMakeFiles/opt_graph.dir/csr_graph.cc.o"
  "CMakeFiles/opt_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/opt_graph.dir/intersect.cc.o"
  "CMakeFiles/opt_graph.dir/intersect.cc.o.d"
  "CMakeFiles/opt_graph.dir/reorder.cc.o"
  "CMakeFiles/opt_graph.dir/reorder.cc.o.d"
  "CMakeFiles/opt_graph.dir/stats.cc.o"
  "CMakeFiles/opt_graph.dir/stats.cc.o.d"
  "libopt_graph.a"
  "libopt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
