file(REMOVE_RECURSE
  "libopt_graph.a"
)
