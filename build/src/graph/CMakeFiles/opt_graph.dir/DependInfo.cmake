
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/opt_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/opt_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/csr_graph.cc" "src/graph/CMakeFiles/opt_graph.dir/csr_graph.cc.o" "gcc" "src/graph/CMakeFiles/opt_graph.dir/csr_graph.cc.o.d"
  "/root/repo/src/graph/intersect.cc" "src/graph/CMakeFiles/opt_graph.dir/intersect.cc.o" "gcc" "src/graph/CMakeFiles/opt_graph.dir/intersect.cc.o.d"
  "/root/repo/src/graph/reorder.cc" "src/graph/CMakeFiles/opt_graph.dir/reorder.cc.o" "gcc" "src/graph/CMakeFiles/opt_graph.dir/reorder.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/opt_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/opt_graph.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/opt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
