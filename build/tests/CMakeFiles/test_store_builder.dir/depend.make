# Empty dependencies file for test_store_builder.
# This may be replaced when dependencies are built.
