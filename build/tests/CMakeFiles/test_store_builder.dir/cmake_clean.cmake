file(REMOVE_RECURSE
  "CMakeFiles/test_store_builder.dir/test_store_builder.cc.o"
  "CMakeFiles/test_store_builder.dir/test_store_builder.cc.o.d"
  "test_store_builder"
  "test_store_builder.pdb"
  "test_store_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
