
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/test_differential.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/test_differential.dir/test_differential.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/opt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/distsim/CMakeFiles/opt_distsim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/opt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/opt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/opt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/opt_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/opt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/opt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/opt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
