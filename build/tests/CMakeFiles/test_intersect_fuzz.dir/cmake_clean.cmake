file(REMOVE_RECURSE
  "CMakeFiles/test_intersect_fuzz.dir/test_intersect_fuzz.cc.o"
  "CMakeFiles/test_intersect_fuzz.dir/test_intersect_fuzz.cc.o.d"
  "test_intersect_fuzz"
  "test_intersect_fuzz.pdb"
  "test_intersect_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intersect_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
