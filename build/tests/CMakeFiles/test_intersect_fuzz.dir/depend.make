# Empty dependencies file for test_intersect_fuzz.
# This may be replaced when dependencies are built.
