# Empty dependencies file for test_iterator_models.
# This may be replaced when dependencies are built.
