file(REMOVE_RECURSE
  "CMakeFiles/test_iterator_models.dir/test_iterator_models.cc.o"
  "CMakeFiles/test_iterator_models.dir/test_iterator_models.cc.o.d"
  "test_iterator_models"
  "test_iterator_models.pdb"
  "test_iterator_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iterator_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
