file(REMOVE_RECURSE
  "CMakeFiles/test_distsim.dir/test_distsim.cc.o"
  "CMakeFiles/test_distsim.dir/test_distsim.cc.o.d"
  "test_distsim"
  "test_distsim.pdb"
  "test_distsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
