# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_distsim[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_approx[1]_include.cmake")
include("/root/repo/build/tests/test_io_extras[1]_include.cmake")
include("/root/repo/build/tests/test_store_builder[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_iterator_models[1]_include.cmake")
include("/root/repo/build/tests/test_intersect_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
