file(REMOVE_RECURSE
  "CMakeFiles/community_triangles.dir/community_triangles.cpp.o"
  "CMakeFiles/community_triangles.dir/community_triangles.cpp.o.d"
  "community_triangles"
  "community_triangles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
