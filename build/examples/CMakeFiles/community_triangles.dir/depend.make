# Empty dependencies file for community_triangles.
# This may be replaced when dependencies are built.
