file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_pipeline.dir/out_of_core_pipeline.cpp.o"
  "CMakeFiles/out_of_core_pipeline.dir/out_of_core_pipeline.cpp.o.d"
  "out_of_core_pipeline"
  "out_of_core_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
