# Empty dependencies file for out_of_core_pipeline.
# This may be replaced when dependencies are built.
