# Empty compiler generated dependencies file for spam_detection.
# This may be replaced when dependencies are built.
