file(REMOVE_RECURSE
  "CMakeFiles/triangle_count.dir/triangle_count.cc.o"
  "CMakeFiles/triangle_count.dir/triangle_count.cc.o.d"
  "triangle_count"
  "triangle_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
