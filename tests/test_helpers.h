// Shared helpers for the test suite.
#ifndef OPT_TESTS_TEST_HELPERS_H_
#define OPT_TESTS_TEST_HELPERS_H_

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "graph/csr_graph.h"
#include "storage/env.h"
#include "storage/graph_store.h"

namespace opt {
namespace testutil {

/// A per-process scratch directory under the gtest temp dir. ctest -j
/// runs every test case in its own process, so paths derived only from
/// a tag or a static counter collide across concurrently running cases;
/// anything materialized on disk must live under a pid-unique root.
inline const std::string& ProcessTempDir() {
  static const std::string dir = [] {
    std::string d =
        testing::TempDir() + "/opt_p" + std::to_string(::getpid());
    ::mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

/// Creates a GraphStore for `g` under a unique temp base path and opens
/// it. Aborts the test on failure.
inline std::unique_ptr<GraphStore> MakeStore(const CSRGraph& g, Env* env,
                                             const std::string& tag,
                                             uint32_t page_size = 256) {
  static int counter = 0;
  const std::string base =
      ProcessTempDir() + "/store_" + tag + "_" + std::to_string(counter++);
  GraphStoreOptions options;
  options.page_size = page_size;
  Status s = GraphStore::Create(g, env, base, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  auto store = GraphStore::Open(env, base);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store.value());
}

/// Reference triangle list via the in-memory edge iterator.
inline std::vector<Triangle> OracleTriangles(const CSRGraph& g) {
  VectorSink sink;
  EdgeIteratorInMemory(g, &sink);
  return sink.Sorted();
}

inline uint64_t OracleCount(const CSRGraph& g) {
  CountingSink sink;
  EdgeIteratorInMemory(g, &sink);
  return sink.count();
}

}  // namespace testutil
}  // namespace opt

#endif  // OPT_TESTS_TEST_HELPERS_H_
