// Shared helpers for the test suite.
#ifndef OPT_TESTS_TEST_HELPERS_H_
#define OPT_TESTS_TEST_HELPERS_H_

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <memory>
#include <string>

#include "baselines/inmemory.h"
#include "core/triangle_sink.h"
#include "graph/csr_graph.h"
#include "storage/env.h"
#include "storage/graph_store.h"

namespace opt {
namespace testutil {

/// A per-process scratch directory under the gtest temp dir. ctest -j
/// runs every test case in its own process, so paths derived only from
/// a tag or a static counter collide across concurrently running cases;
/// anything materialized on disk must live under a pid-unique root.
inline const std::string& ProcessTempDir() {
  static const std::string dir = [] {
    std::string d =
        testing::TempDir() + "/opt_p" + std::to_string(::getpid());
    ::mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

/// Creates a GraphStore for `g` under a unique temp base path and opens
/// it. Aborts the test on failure.
inline std::unique_ptr<GraphStore> MakeStore(const CSRGraph& g, Env* env,
                                             const std::string& tag,
                                             uint32_t page_size = 256) {
  static int counter = 0;
  const std::string base =
      ProcessTempDir() + "/store_" + tag + "_" + std::to_string(counter++);
  GraphStoreOptions options;
  options.page_size = page_size;
  Status s = GraphStore::Create(g, env, base, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
  auto store = GraphStore::Open(env, base);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store.value());
}

/// Minimal JSON syntax checker (objects, arrays, strings, numbers,
/// true/false/null) — enough to prove trace files parse. Shared by the
/// observability and shard suites, which both assert Perfetto output.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Reference triangle list via the in-memory edge iterator.
inline std::vector<Triangle> OracleTriangles(const CSRGraph& g) {
  VectorSink sink;
  EdgeIteratorInMemory(g, &sink);
  return sink.Sorted();
}

inline uint64_t OracleCount(const CSRGraph& g) {
  CountingSink sink;
  EdgeIteratorInMemory(g, &sink);
  return sink.count();
}

}  // namespace testutil
}  // namespace opt

#endif  // OPT_TESTS_TEST_HELPERS_H_
